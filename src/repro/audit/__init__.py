"""Conservation audit: opt-in invariant monitoring for AQUA simulations.

AQUA's speedup argument rests on byte accounting — who holds which HBM
lease, which channel carried how many bytes, where each offloaded
tensor's payload actually is.  This package verifies those books while
a simulation runs, instead of trusting them:

>>> from repro.audit import ConservationAuditor
>>> from repro.sim import Environment
>>> from repro.hardware import Server
>>> env = Environment()
>>> server = Server(env, n_gpus=2)
>>> auditor = ConservationAuditor(env).attach_server(server)
>>> _ = auditor.watch(interval=1.0)   # checkpoint every simulated second
>>> # ... run the simulation ...
>>> auditor.check().__len__()         # final checkpoint; 0 violations
0
>>> auditor.report().ok
True

Enable it on any experiment rig with ``build_consumer_rig(...,
audit=True)``, on the resilience experiment with
``resilience_experiment(audit=True)``, or from the shell with
``aqua-repro audit`` / ``aqua-repro resilience --audit``.
"""

from repro.audit.monitor import (
    LAWS,
    AuditError,
    AuditReport,
    AuditViolation,
    ConservationAuditor,
)

__all__ = [
    "LAWS",
    "AuditError",
    "AuditReport",
    "AuditViolation",
    "ConservationAuditor",
]
