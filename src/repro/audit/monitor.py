"""The conservation auditor: invariant checks over live simulation state.

:class:`ConservationAuditor` attaches to the objects whose books must
agree — servers (channels + transfer stats + memory pools), AQUA
coordinators (leases + allocations) and the per-GPU AQUA-LIB instances
the coordinator registers — and verifies the conservation laws at
configurable checkpoints:

**byte-conservation**
    Every channel's ``bytes_moved``/``transfer_count`` equals the sum of
    full payloads routed over it (each hop of a multi-hop route carries
    the whole payload), and ``TransferStats`` reconciles with the
    per-route ledger.  The auditor keeps an independent *shadow ledger*
    fed by :attr:`TransferStats.listeners
    <repro.hardware.dma.TransferStats.listeners>`, so a forged or
    mis-attributed counter cannot hide.

**pool-conservation**
    Per-GPU HBM and host-DRAM reservations sum to at most capacity;
    the ``aqua-offer`` tag on each producer equals its lease's
    ``offered - used``; every live tensor holds exactly its size at its
    device's pool; no reservation is orphaned (a ``tag#id`` entry with
    neither a live tensor nor a coordinator allocation behind it).

**placement**
    Every live :class:`~repro.aqua.tensor.AquaTensor`'s
    ``location``/``_device`` agrees with the coordinator's
    ``allocations`` map — including under fault injection, where books
    are reconciled lazily but must never disagree with each other.

**determinism**
    Every observed transfer and every checkpoint folds into a SHA-256
    event digest; two identical seeded runs produce byte-identical
    digests, so runs can be diffed.  (This law is checked *across* runs
    — see ``aqua-repro audit``.)

Checkpoints run either after every simulation event (via
:meth:`Environment.add_monitor <repro.sim.core.Environment.add_monitor>`)
or on a fixed simulated-time interval.  All checks are read-only.

The auditor must be attached to every coordinator whose tensors land on
the attached servers; otherwise their reservations look orphaned.  The
experiment harness (:func:`repro.experiments.harness.build_consumer_rig`
with ``audit=True``) wires this correctly.
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.aqua.coordinator import DRAM
from repro.aqua.lib import AQUA_OFFER_TAG
from repro.aqua.tensor import Location

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aqua.coordinator import Coordinator
    from repro.aqua.lib import AquaLib
    from repro.hardware.interconnect import Channel
    from repro.hardware.server import Server
    from repro.sim import Environment

#: The conservation laws the auditor enforces, in check order.
LAWS = ("byte-conservation", "pool-conservation", "placement", "determinism")

#: Reservation tags minted by AQUA tensors look like ``<base>#<id>``
#: (see :class:`~repro.aqua.tensor.AquaTensor`); nothing else in the
#: repository uses ``#`` in a tag, which is what makes orphan scanning
#: unambiguous.
_TENSOR_TAG = re.compile(r"^(?P<base>.+)#(?P<id>\d+)$")


@dataclass
class AuditViolation:
    """One broken invariant, pinned to a law, a subject and a time."""

    law: str
    subject: str
    message: str
    time: float
    checkpoint: str = ""

    def __str__(self) -> str:
        return f"[{self.law}] t={self.time:.3f} {self.subject}: {self.message}"


class AuditError(AssertionError):
    """Raised in strict mode when a checkpoint finds violations."""

    def __init__(self, violations: Sequence[AuditViolation]) -> None:
        self.violations = list(violations)
        lines = "\n".join(f"  {v}" for v in self.violations)
        super().__init__(f"{len(self.violations)} invariant violation(s):\n{lines}")


@dataclass
class AuditReport:
    """Outcome of an audited run: checkpoint count, violations, digest."""

    checks: int
    transfers_observed: int
    violations: list[AuditViolation] = field(default_factory=list)
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-safe summary (for CLI output and experiment results)."""
        return {
            "ok": self.ok,
            "checks": self.checks,
            "transfers_observed": self.transfers_observed,
            "violations": [str(v) for v in self.violations],
            "digest": self.digest,
        }


class ConservationAuditor:
    """Opt-in invariant monitor for AQUA simulations.

    Parameters
    ----------
    env:
        The simulation environment (supplies checkpoint time).
    strict:
        Raise :class:`AuditError` at the first checkpoint that finds a
        violation instead of collecting them.
    rel_tol, abs_tol:
        Float comparison slack for byte counters (transfer sizes are
        floats; accumulation order differs between ledger and shadow).
    """

    def __init__(
        self,
        env: "Environment",
        strict: bool = False,
        rel_tol: float = 1e-9,
        abs_tol: float = 1e-3,
    ) -> None:
        self.env = env
        self.strict = strict
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        self.violations: list[AuditViolation] = []
        self.checks = 0
        self.transfers_observed = 0
        self._servers: list["Server"] = []
        self._coordinators: list["Coordinator"] = []
        self._extra_libs: list["AquaLib"] = []
        #: Shadow ledger, keyed by channel name (channel names are
        #: globally unique; cluster fabrics share channel objects
        #: between server interconnects).
        self._channels: dict[str, "Channel"] = {}
        self._base_bytes: dict[str, float] = {}
        self._base_count: dict[str, int] = {}
        self._shadow_bytes: dict[str, float] = {}
        self._shadow_count: dict[str, int] = {}
        #: Per-TransferStats baselines and shadows, keyed by object id.
        self._stats: dict[int, dict] = {}
        self._sha = hashlib.sha256()
        self._watch_interval: Optional[float] = None
        self._watching_events = False

    # ==================================================================
    # Attachment
    # ==================================================================
    def attach_server(self, server: "Server") -> "ConservationAuditor":
        """Observe a server's channels, pools and transfer statistics."""
        if server in self._servers:
            return self
        self._servers.append(server)
        for name, channel in server.interconnect.channels.items():
            if name not in self._channels:
                self._channels[name] = channel
                self._base_bytes[name] = channel.bytes_moved
                self._base_count[name] = channel.transfer_count
        stats = server.transfer_stats
        if id(stats) not in self._stats:
            self._stats[id(stats)] = {
                "stats": stats,
                "base_count": stats.count,
                "base_bytes": stats.bytes_total,
                "shadow_count": 0,
                "shadow_bytes": 0.0,
            }
            # The listener signature carries no collector identity, so
            # bind the stats key into the callback at registration time.
            key = id(stats)

            def observe(route_name, channels, nbytes, duration, _key=key):
                self._on_transfer(_key, route_name, channels, nbytes, duration)

            stats.listeners.append(observe)
        return self

    def attach_coordinator(self, coordinator: "Coordinator") -> "ConservationAuditor":
        """Audit a coordinator's leases/allocations against its libs' books."""
        if coordinator not in self._coordinators:
            self._coordinators.append(coordinator)
        return self

    def attach_lib(self, lib: "AquaLib") -> "ConservationAuditor":
        """Explicitly register an AQUA-LIB instance (normally discovered
        through ``coordinator.libs``)."""
        if lib not in self._extra_libs:
            self._extra_libs.append(lib)
        return self

    # ==================================================================
    # Checkpoint scheduling
    # ==================================================================
    def watch(self, interval: Optional[float] = 1.0) -> "ConservationAuditor":
        """Start checkpointing: every ``interval`` simulated seconds, or
        after *every* simulation event when ``interval`` is ``None``."""
        if interval is None:
            if not self._watching_events:
                self.env.add_monitor(self._on_event)
                self._watching_events = True
        else:
            self._watch_interval = float(interval)
            self.env.process(self._watcher(self._watch_interval))
        return self

    def unwatch(self) -> None:
        """Stop the per-event monitor (periodic watchers die with the run)."""
        if self._watching_events:
            self.env.remove_monitor(self._on_event)
            self._watching_events = False

    def _on_event(self, now: float) -> None:
        self.check(checkpoint="event")

    def _watcher(self, interval: float):
        while True:
            yield self.env.timeout(interval)
            self.check(checkpoint=f"t={self.env.now:.3f}")

    # ==================================================================
    # Observation
    # ==================================================================
    def _on_transfer(
        self,
        stats_key: int,
        route_name: str,
        channels: Sequence["Channel"],
        nbytes: float,
        duration: float,
    ) -> None:
        self.transfers_observed += 1
        entry = self._stats.get(stats_key)
        if entry is not None:
            entry["shadow_count"] += 1
            entry["shadow_bytes"] += nbytes
        for channel in channels:
            name = channel.name
            if name not in self._channels:
                # A channel wired after attach (cluster fabric): adopt it
                # with a zero baseline relative to this first sighting.
                self._channels[name] = channel
                self._base_bytes[name] = channel.bytes_moved - nbytes
                self._base_count[name] = channel.transfer_count - 1
            self._shadow_bytes[name] = self._shadow_bytes.get(name, 0.0) + nbytes
            self._shadow_count[name] = self._shadow_count.get(name, 0) + 1
        self._fold(
            f"T|{self.env.now!r}|{route_name}|{nbytes!r}|{duration!r}|"
            + ",".join(ch.name for ch in channels)
        )

    def _fold(self, record: str) -> None:
        self._sha.update(record.encode())
        self._sha.update(b"\n")

    @property
    def digest(self) -> str:
        """Hex SHA-256 over every observed transfer and checkpoint.

        Identical seeded runs produce identical digests; any divergence
        in event timing, routing or byte counts changes it.
        """
        return self._sha.hexdigest()

    # ==================================================================
    # The checkpoint
    # ==================================================================
    def check(self, checkpoint: str = "manual") -> list[AuditViolation]:
        """Run every law now; returns (and records) new violations."""
        before = len(self.violations)
        self.checks += 1
        self._check_byte_conservation(checkpoint)
        self._check_pools_and_placement(checkpoint)
        new = self.violations[before:]
        self._fold(
            f"C|{checkpoint}|{self.env.now!r}|checks={self.checks}"
            f"|violations={len(self.violations)}"
        )
        if new and self.strict:
            raise AuditError(new)
        return new

    def raise_if_violations(self) -> None:
        if self.violations:
            raise AuditError(self.violations)

    def report(self) -> AuditReport:
        return AuditReport(
            checks=self.checks,
            transfers_observed=self.transfers_observed,
            violations=list(self.violations),
            digest=self.digest,
        )

    # ------------------------------------------------------------------
    def _flag(self, law: str, subject: str, message: str, checkpoint: str) -> None:
        self.violations.append(
            AuditViolation(
                law=law,
                subject=subject,
                message=message,
                time=self.env.now,
                checkpoint=checkpoint,
            )
        )

    def _close(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=self.rel_tol, abs_tol=self.abs_tol)

    # ------------------------------------------------------------------
    # Law 1: byte conservation
    # ------------------------------------------------------------------
    def _check_byte_conservation(self, checkpoint: str) -> None:
        for name, channel in self._channels.items():
            expected_bytes = self._base_bytes[name] + self._shadow_bytes.get(name, 0.0)
            expected_count = self._base_count[name] + self._shadow_count.get(name, 0)
            if not self._close(channel.bytes_moved, expected_bytes):
                self._flag(
                    "byte-conservation",
                    name,
                    f"bytes_moved={channel.bytes_moved:.0f} but routed "
                    f"payloads sum to {expected_bytes:.0f}",
                    checkpoint,
                )
            if channel.transfer_count != expected_count:
                self._flag(
                    "byte-conservation",
                    name,
                    f"transfer_count={channel.transfer_count} but "
                    f"{expected_count} transfers were routed over it",
                    checkpoint,
                )
        for entry in self._stats.values():
            stats = entry["stats"]
            expected_bytes = entry["base_bytes"] + entry["shadow_bytes"]
            expected_count = entry["base_count"] + entry["shadow_count"]
            if stats.count != expected_count:
                self._flag(
                    "byte-conservation",
                    "TransferStats",
                    f"count={stats.count}, observed {expected_count}",
                    checkpoint,
                )
            if not self._close(stats.bytes_total, expected_bytes):
                self._flag(
                    "byte-conservation",
                    "TransferStats",
                    f"bytes_total={stats.bytes_total:.0f}, observed payloads "
                    f"sum to {expected_bytes:.0f}",
                    checkpoint,
                )
            per_route_sum = sum(stats.per_route.values())
            if not self._close(per_route_sum, stats.bytes_total):
                self._flag(
                    "byte-conservation",
                    "TransferStats",
                    f"per_route ledger sums to {per_route_sum:.0f}, "
                    f"bytes_total={stats.bytes_total:.0f}",
                    checkpoint,
                )

    # ------------------------------------------------------------------
    # Laws 2 + 3: pool conservation and placement consistency
    # ------------------------------------------------------------------
    def _libs(self) -> dict[str, "AquaLib"]:
        libs: dict[str, "AquaLib"] = {}
        for coordinator in self._coordinators:
            libs.update(coordinator.libs)
        for lib in self._extra_libs:
            libs[lib.name] = lib
        return libs

    def _check_pools_and_placement(self, checkpoint: str) -> None:
        for server in self._servers:
            for gpu in server.gpus:
                self._check_pool_bounds(gpu.hbm, gpu.name, checkpoint)
            self._check_pool_bounds(server.dram.pool, server.dram.name, checkpoint)

        libs = self._libs()
        live: dict[int, tuple] = {}  # tensor_id -> (tensor, lib)
        for lib in libs.values():
            for tensor in lib.tensors.values():
                live[tensor.id] = (tensor, lib)

        allocations: dict[int, object] = {}
        for coordinator in self._coordinators:
            snap = coordinator.audit_snapshot()
            allocations.update(snap["allocations"])
            self._check_leases(coordinator, snap, libs, checkpoint)
            self._check_allocations(snap, libs, live, checkpoint)

        for tensor_id, (tensor, lib) in live.items():
            self._check_tensor(tensor, lib, allocations, checkpoint)

        if self._coordinators:
            self._check_orphans(live, allocations, checkpoint)

    def _check_pool_bounds(self, pool, name: str, checkpoint: str) -> None:
        snapshot = pool.snapshot()
        for tag, nbytes in snapshot.items():
            if nbytes < 0:
                self._flag(
                    "pool-conservation",
                    name,
                    f"negative reservation {nbytes} under {tag!r}",
                    checkpoint,
                )
        used = sum(snapshot.values())
        if used > pool.capacity:
            self._flag(
                "pool-conservation",
                name,
                f"reservations sum to {used} > capacity {pool.capacity}",
                checkpoint,
            )

    def _check_leases(self, coordinator, snap: dict, libs: dict, checkpoint: str) -> None:
        for producer, lease in snap["leases"].items():
            parked = sum(
                a.nbytes
                for a in snap["allocations"].values()
                if a.location == producer
            )
            if lease.used != parked:
                self._flag(
                    "pool-conservation",
                    producer,
                    f"lease.used={lease.used} but allocations park {parked} "
                    "bytes there",
                    checkpoint,
                )
            if not 0 <= lease.used <= lease.offered:
                self._flag(
                    "pool-conservation",
                    producer,
                    f"lease.used={lease.used} outside [0, offered="
                    f"{lease.offered}]",
                    checkpoint,
                )
            lib = libs.get(producer)
            if lib is not None and lease.offered != lib.donated_bytes:
                self._flag(
                    "pool-conservation",
                    producer,
                    f"lease.offered={lease.offered} but the library donated "
                    f"{lib.donated_bytes}",
                    checkpoint,
                )
            device = coordinator.devices.get(producer)
            if device is not None:
                held = device.hbm.held(AQUA_OFFER_TAG)
                if held != lease.offered - lease.used:
                    self._flag(
                        "pool-conservation",
                        producer,
                        f"'{AQUA_OFFER_TAG}' holds {held} bytes; lease says "
                        f"offered-used = {lease.offered - lease.used}",
                        checkpoint,
                    )
        # A donation with no lease behind it is stranded memory.
        for name, lib in libs.items():
            if lib.donated_bytes > 0 and name not in snap["leases"]:
                self._flag(
                    "pool-conservation",
                    name,
                    f"library donated {lib.donated_bytes} bytes but the "
                    "coordinator holds no lease",
                    checkpoint,
                )

    def _check_allocations(
        self, snap: dict, libs: dict, live: dict, checkpoint: str
    ) -> None:
        for tensor_id, alloc in snap["allocations"].items():
            if alloc.consumer in libs and tensor_id not in live:
                self._flag(
                    "placement",
                    f"tensor#{tensor_id}",
                    f"coordinator allocation at {alloc.location} has no live "
                    f"tensor in {alloc.consumer}'s library",
                    checkpoint,
                )

    def _check_tensor(
        self, tensor, lib, allocations: dict, checkpoint: str
    ) -> None:
        alloc = allocations.get(tensor.id)
        if alloc is None:
            if self._coordinators:
                self._flag(
                    "placement",
                    tensor.tag,
                    "live tensor has no coordinator allocation",
                    checkpoint,
                )
            return
        if alloc.nbytes != tensor.nbytes:
            self._flag(
                "placement",
                tensor.tag,
                f"tensor is {tensor.nbytes} bytes, allocation says "
                f"{alloc.nbytes}",
                checkpoint,
            )
        if tensor.location is Location.DRAM:
            book_location = DRAM
            pool = lib.server.dram.pool
            pool_name = lib.server.dram.name
            device_ok = tensor._device is lib.server.dram
        elif tensor.location is Location.PRODUCER:
            book_location = getattr(tensor._device, "name", None)
            pool = tensor._device.hbm
            pool_name = book_location
            device_ok = True
        else:  # FREED tensors must not linger in lib.tensors
            self._flag(
                "placement", tensor.tag, "freed tensor still registered", checkpoint
            )
            return
        if alloc.location != book_location:
            self._flag(
                "placement",
                tensor.tag,
                f"tensor books say {book_location!r}, coordinator says "
                f"{alloc.location!r}",
                checkpoint,
            )
            return
        if not device_ok:
            self._flag(
                "placement",
                tensor.tag,
                "DRAM tensor's device pointer is not the host DRAM",
                checkpoint,
            )
        held = pool.held(tensor.tag)
        if held != tensor.nbytes:
            self._flag(
                "pool-conservation",
                tensor.tag,
                f"{pool_name} holds {held} bytes under this tag, tensor is "
                f"{tensor.nbytes}",
                checkpoint,
            )

    def _check_orphans(self, live: dict, allocations: dict, checkpoint: str) -> None:
        live_tags = {tensor.tag for tensor, _ in live.values()}
        pools = []
        for server in self._servers:
            pools.extend((gpu.name, gpu.hbm) for gpu in server.gpus)
            pools.append((server.dram.name, server.dram.pool))
        for pool_name, pool in pools:
            for tag in pool.snapshot():
                match = _TENSOR_TAG.match(tag)
                if match is None:
                    continue
                tensor_id = int(match.group("id"))
                if tag in live_tags or tensor_id in allocations:
                    continue
                self._flag(
                    "pool-conservation",
                    pool_name,
                    f"orphaned reservation {tag!r}: no live tensor and no "
                    "coordinator allocation",
                    checkpoint,
                )
