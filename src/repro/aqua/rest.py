"""A minimal in-process REST transport.

The paper's coordinator "exposes a set of REST endpoints" (§3) that the
per-GPU AQUA-LIB instances call over the southbound interface.  In this
reproduction the HTTP stack is replaced by an in-process router with
the same request/response shape (method + path + JSON-like payload),
so endpoint semantics, status codes and payload schemas are preserved
and testable without sockets.

Because no bytes actually travel, it is easy for handlers to leak
payloads that would *not* survive a real HTTP hop — int dict keys, set
values, device objects.  :class:`RestRouter` therefore has a
``strict_json`` mode that round-trips every request payload and every
response body through :func:`json.dumps`/:func:`json.loads`, exactly as
a socket would.  The test suite runs the coordinator in this mode so
schema regressions (e.g. ``{int: str}`` migration maps) fail loudly
instead of silently working in-process only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

Handler = Callable[[dict], "Response"]


@dataclass
class Response:
    """An HTTP-like response: status code and JSON-like body."""

    status: int
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def json(cls, body: dict[str, Any] | None = None, status: int = 200) -> "Response":
        return cls(status=status, body=body or {})

    @classmethod
    def error(cls, message: str, status: int = 400) -> "Response":
        return cls(status=status, body={"error": message})


class RestRouter:
    """Dispatches ``(method, path)`` requests to registered handlers.

    Parameters
    ----------
    strict_json:
        When ``True``, request payloads and response bodies are
        round-tripped through ``json.dumps``/``json.loads`` so only
        wire-safe payloads pass — int keys become strings, tuples become
        lists, and non-serializable values turn the request into a 400.
    """

    def __init__(self, strict_json: bool = False) -> None:
        self._handlers: dict[tuple[str, str], Handler] = {}
        self.strict_json = strict_json

    def route(self, method: str, path: str) -> Callable[[Handler], Handler]:
        """Decorator registering ``handler`` for ``method path``."""

        def register(handler: Handler) -> Handler:
            key = (method.upper(), path)
            if key in self._handlers:
                raise ValueError(f"duplicate route {method} {path}")
            self._handlers[key] = handler
            return handler

        return register

    def request(self, method: str, path: str, payload: dict | None = None) -> Response:
        """Invoke the handler for ``method path`` with ``payload``.

        Unknown routes return 404; handler exceptions become 500s, as a
        real HTTP server would report them.
        """
        handler = self._handlers.get((method.upper(), path))
        if handler is None:
            return Response.error(f"no route {method.upper()} {path}", status=404)
        payload = payload or {}
        if self.strict_json:
            try:
                payload = json.loads(json.dumps(payload))
            except (TypeError, ValueError) as exc:
                return Response.error(f"payload is not JSON-safe: {exc}", status=400)
        try:
            response = handler(payload)
        except Exception as exc:  # noqa: BLE001 - mapped to a 500 like a server
            return Response.error(f"{type(exc).__name__}: {exc}", status=500)
        if self.strict_json:
            try:
                response = Response(
                    status=response.status,
                    body=json.loads(json.dumps(response.body)),
                )
            except (TypeError, ValueError) as exc:
                return Response.error(
                    f"response body is not JSON-safe: {exc}", status=500
                )
        return response

    @property
    def routes(self) -> list[tuple[str, str]]:
        return sorted(self._handlers)
