"""A minimal in-process REST transport.

The paper's coordinator "exposes a set of REST endpoints" (§3) that the
per-GPU AQUA-LIB instances call over the southbound interface.  In this
reproduction the HTTP stack is replaced by an in-process router with
the same request/response shape (method + path + JSON-like payload),
so endpoint semantics, status codes and payload schemas are preserved
and testable without sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

Handler = Callable[[dict], "Response"]


@dataclass
class Response:
    """An HTTP-like response: status code and JSON-like body."""

    status: int
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def json(cls, body: dict[str, Any] | None = None, status: int = 200) -> "Response":
        return cls(status=status, body=body or {})

    @classmethod
    def error(cls, message: str, status: int = 400) -> "Response":
        return cls(status=status, body={"error": message})


class RestRouter:
    """Dispatches ``(method, path)`` requests to registered handlers."""

    def __init__(self) -> None:
        self._handlers: dict[tuple[str, str], Handler] = {}

    def route(self, method: str, path: str) -> Callable[[Handler], Handler]:
        """Decorator registering ``handler`` for ``method path``."""

        def register(handler: Handler) -> Handler:
            key = (method.upper(), path)
            if key in self._handlers:
                raise ValueError(f"duplicate route {method} {path}")
            self._handlers[key] = handler
            return handler

        return register

    def request(self, method: str, path: str, payload: dict | None = None) -> Response:
        """Invoke the handler for ``method path`` with ``payload``.

        Unknown routes return 404; handler exceptions become 500s, as a
        real HTTP server would report them.
        """
        handler = self._handlers.get((method.upper(), path))
        if handler is None:
            return Response.error(f"no route {method.upper()} {path}", status=404)
        try:
            return handler(payload or {})
        except Exception as exc:  # noqa: BLE001 - mapped to a 500 like a server
            return Response.error(f"{type(exc).__name__}: {exc}", status=500)

    @property
    def routes(self) -> list[tuple[str, str]]:
        return sorted(self._handlers)
