"""AQUA-LIB: the per-GPU memory-management library (§3, §B).

One :class:`AquaLib` instance runs on every GPU of a multi-GPU server.
It exposes:

* a **northbound interface** to the serving engine —
  :meth:`to_responsive_tensor` / :meth:`respond` on consumers, and
  :meth:`inform_stats` / :meth:`complete_offer` on producers;
* a **southbound interface** to the central coordinator — REST calls
  that register memory offers, allocation requests and reclaims.

The library is deliberately engine-agnostic: engines report load via
``inform_stats(...)`` and call ``respond()`` at inference-iteration
boundaries; AQUA-LIB does everything else (placement, migration,
accounting), which is what makes the integration with vLLM and FlexGen
require no surgical changes (§B.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Hashable, Optional

from repro.aqua.coordinator import DRAM, Coordinator
from repro.aqua.informers import Action, EngineStats
from repro.aqua.tensor import AquaTensor, Location, TensorLostError
from repro.faults.retry import RetryPolicy
from repro.hardware.dma import GpuFailedError, TransferStalled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.gpu import GPU
    from repro.hardware.server import Server
    from repro.trace import Tracer

#: Pool reservation tag for memory a producer has donated to AQUA.
AQUA_OFFER_TAG = "aqua-offer"


class AquaLib:
    """Per-GPU AQUA library instance.

    Parameters
    ----------
    gpu:
        The GPU this instance manages.
    server:
        The multi-GPU server (provides the interconnect and host DRAM).
    coordinator:
        The central coordinator shared by all instances.
    informer:
        Donate/reclaim policy for producer GPUs (``None`` for pure
        consumers).
    gather_enabled:
        Whether scattered tensors are coalesced into one large copy via
        AQUA's gather/scatter kernels (§5).  Disable to reproduce the
        naive-offload ablation.
    retry_policy:
        Backoff used when a transfer hits a stalled DMA engine
        (default: :class:`~repro.faults.RetryPolicy` defaults).
    tracer:
        Optional tracer; retries land as ``"aqua-retry"`` instants on
        this GPU's track, making fault handling visible in the trace.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub.  When set,
        allocations/migrations/fetch/flush traffic land in the metrics
        registry, and data-plane moves carrying a request trace ID
        (``ctx``) get spans and flow steps on the ``aqua:<gpu>`` track.
    """

    def __init__(
        self,
        gpu: "GPU",
        server: "Server",
        coordinator: Coordinator,
        informer=None,
        gather_enabled: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional["Tracer"] = None,
        telemetry=None,
    ) -> None:
        self.gpu = gpu
        self.server = server
        self.env = server.env
        self.coordinator = coordinator
        self.informer = informer
        self.gather_enabled = gather_enabled
        self.retry_policy = retry_policy or RetryPolicy()
        self.telemetry = telemetry
        if tracer is None and telemetry is not None:
            tracer = telemetry.tracer
        self.tracer = tracer
        self.name = gpu.name
        self.donated_bytes = 0
        self.reclaim_pending = False
        self.tensors: dict[int, AquaTensor] = {}
        #: Cumulative time this consumer spent blocked in respond().
        self.respond_blocked_time = 0.0
        #: Transfer retries performed after DMA stalls (fault handling).
        self.retries = 0
        #: Tensors whose bytes were lost to a GPU failure.
        self.lost_tensors = 0
        coordinator.devices[self.name] = gpu
        coordinator.libs[self.name] = self

    # ==================================================================
    # Southbound helpers
    # ==================================================================
    def _post(self, path: str, payload: dict) -> dict:
        resp = self.coordinator.request("POST", path, payload)
        if not resp.ok:
            raise RuntimeError(f"coordinator POST {path} failed: {resp.body}")
        return resp.body

    def _get(self, path: str, payload: dict) -> dict:
        resp = self.coordinator.request("GET", path, payload)
        if not resp.ok:
            raise RuntimeError(f"coordinator GET {path} failed: {resp.body}")
        return resp.body

    # ==================================================================
    # Consumer northbound interface
    # ==================================================================
    def to_responsive_tensor(
        self,
        nbytes: int,
        pieces: int = 1,
        tag: str = "aqua",
        ctx: Optional[int] = None,
    ) -> AquaTensor:
        """Allocate an offloaded tensor (the paper's
        ``to_responsive_tensor(torch_tensor)``).

        The coordinator picks the location: the paired producer GPU when
        its lease has room, host DRAM otherwise — the model never learns
        which (§3).

        ``ctx`` is the owning request's trace ID: data-plane moves of
        this tensor (fetch/flush/migrate) propagate it down to the DMA
        layer so the request's causal trace spans every hop.
        """
        tensor = AquaTensor(self, nbytes, pieces=pieces, tag=tag)
        tensor.ctx = ctx
        location = self.allocate_aqua_tensor(tensor)
        if self.telemetry is not None:
            self.telemetry.tensor_allocations.labels(location=location).inc()
        return tensor

    def respond(self) -> Generator:
        """Perform pending tensor migrations at an iteration boundary.

        The paper's ``aqua.respond()``: the serving engine invokes this
        between inference iterations, which is the only point where
        offloaded tensors may safely change location.  Migrations to
        DRAM (reclaims) and opportunistic upgrades onto the producer
        both happen here; the engine blocks for the duration.
        """
        started = self.env.now
        for tensor_id, target in self.get_tensors_to_move().items():
            tensor = self.tensors.get(tensor_id)
            if tensor is None or tensor.freed or tensor.lost:
                continue
            yield from self._migrate(tensor, target)
        self.respond_blocked_time += self.env.now - started

    def free_tensor(self, tensor: AquaTensor) -> None:
        """Release an AQUA tensor (engine-facing alias of ``tensor.free()``)."""
        tensor.free()

    # ------------------------------------------------------------------
    # The consumer control-loop interface, exactly as named in §B.1.
    # respond() composes these three calls; they are also exposed
    # directly so alternative policies can drive migrations themselves.
    # ------------------------------------------------------------------
    def allocate_aqua_tensor(self, tensor: AquaTensor) -> str:
        """Decide the location of a newly created tensor (§B.1).

        Returns the location name (a producer GPU or ``"dram"``) and
        performs the placement accounting.  Prefer
        :meth:`to_responsive_tensor`, which builds the tensor and calls
        this for you.
        """
        body = self._post(
            "/allocate",
            {"consumer": self.name, "tensor_id": tensor.id, "nbytes": tensor.nbytes},
        )
        self._account_placement(tensor, body["location"])
        self.tensors[tensor.id] = tensor
        return body["location"]

    def get_tensors_to_move(self) -> dict[int, str]:
        """Pending migrations at this iteration boundary (§B.1).

        Maps tensor id to target location; forced reclaims first, then
        opportunistic upgrades onto the paired producer.  The wire
        payload carries *string* tensor-id keys (JSON objects cannot key
        on ints); this client converts them back to ints.
        """
        migrations = self._get("/respond", {"consumer": self.name})["migrations"]
        return {int(tensor_id): target for tensor_id, target in migrations.items()}

    def done_moving_tensors(self, moves: dict[int, str]) -> None:
        """Confirm completed migrations to the coordinator (§B.1).

        :meth:`respond` performs the byte movement itself; callers
        driving their own data plane use this to publish the outcome.
        """
        for tensor_id, location in moves.items():
            self._post("/moved", {"tensor_id": tensor_id, "location": location})

    @property
    def offloaded_fast_bytes(self) -> int:
        """Bytes of this consumer's tensors on the NVLink fast path."""
        return sum(t.nbytes for t in self.tensors.values() if t.on_fast_path)

    @property
    def offloaded_dram_bytes(self) -> int:
        return sum(
            t.nbytes
            for t in self.tensors.values()
            if not t.freed and not t.on_fast_path
        )

    # ==================================================================
    # Producer northbound interface
    # ==================================================================
    def inform_stats(self, stats: EngineStats) -> int:
        """Report engine load; returns the memory delta for the engine.

        Mirrors the paper's ``inform_stats(...)`` contract: the return
        value is *positive* when the engine may take memory back (grow
        its inference-context region), *negative* when the engine should
        release that many bytes and donate them (followed by
        :meth:`complete_offer`), and zero otherwise.
        """
        if self.reclaim_pending:
            body = self._get("/reclaim_status", {"producer": self.name})
            if body["done"]:
                return self._finish_reclaim()
            return 0
        if self.informer is None:
            return 0
        decision = self.informer.decide(stats, self.donated_bytes)
        if decision.action is Action.OFFER:
            return -decision.nbytes
        if decision.action is Action.RECLAIM and self.donated_bytes > 0:
            body = self._post("/reclaim_request", {"producer": self.name})
            if body["done"]:
                return self._finish_reclaim()
            self.reclaim_pending = True
            return 0
        return 0

    def complete_offer(self, nbytes: int) -> int:
        """The engine released ``nbytes`` of HBM; lease them to AQUA.

        Returns the bytes actually leased: ``nbytes`` on success, ``0``
        when the coordinator refuses the offer (a reclaim in flight, or
        this GPU quarantined as failed) — the engine should then take
        the memory back rather than strand it.
        """
        if nbytes <= 0:
            raise ValueError(f"offer must be positive, got {nbytes}")
        resp = self.coordinator.request(
            "POST", "/lease", {"producer": self.name, "nbytes": nbytes}
        )
        if not resp.ok:
            return 0
        self.gpu.hbm.reserve(AQUA_OFFER_TAG, nbytes)
        self.donated_bytes += nbytes
        return nbytes

    def _finish_reclaim(self) -> int:
        """All consumer tensors evacuated: take the donation back."""
        reclaimed = self.donated_bytes
        if reclaimed > 0:
            self.gpu.hbm.release(AQUA_OFFER_TAG)
        self.donated_bytes = 0
        self.reclaim_pending = False
        return reclaimed

    # ==================================================================
    # Placement accounting and data-plane moves
    # ==================================================================
    def _device_of(self, location: str) -> Hashable:
        if location == DRAM:
            return self.server.dram
        return self.coordinator.devices[location]

    def _account_placement(self, tensor: AquaTensor, location: str) -> None:
        """Point a tensor at its (new) location and fix pool accounting."""
        if location == DRAM:
            self.server.dram.pool.reserve(tensor.tag, tensor.nbytes)
            tensor.location = Location.DRAM
            tensor._device = self.server.dram
        else:
            producer_gpu = self.coordinator.devices[location]
            # The bytes come out of the producer's standing donation.
            producer_gpu.hbm.release(AQUA_OFFER_TAG, tensor.nbytes)
            producer_gpu.hbm.reserve(tensor.tag, tensor.nbytes)
            tensor.location = Location.PRODUCER
            tensor._device = producer_gpu

    def _release_placement(self, tensor: AquaTensor) -> None:
        if tensor.location is Location.DRAM:
            self.server.dram.pool.release(tensor.tag)
        elif tensor.location is Location.PRODUCER:
            producer_gpu = tensor._device
            producer_gpu.hbm.release(tensor.tag)
            producer_gpu.hbm.reserve(AQUA_OFFER_TAG, tensor.nbytes)

    def _free_tensor(self, tensor: AquaTensor) -> None:
        self._release_placement(tensor)
        self._post("/free", {"tensor_id": tensor.id})
        self.tensors.pop(tensor.id, None)

    def _migrate(self, tensor: AquaTensor, target: str) -> Generator:
        """Move a tensor's bytes to ``target`` and update all books."""
        current = DRAM if tensor.location is Location.DRAM else tensor._device.name
        if current == target:
            return
        # Reserve the destination with the coordinator first; a 409 means
        # the lease vanished between /respond and now — stay put.
        resp = self.coordinator.request(
            "POST", "/moved", {"tensor_id": tensor.id, "location": target}
        )
        if not resp.ok:
            return
        src_device = tensor._device
        self._release_placement(tensor)
        self._account_placement(tensor, target)
        try:
            # Offloaded payloads are stored gathered, so migration moves
            # one contiguous buffer.
            moved = yield from self._resilient_copy(
                src_device, tensor._device, tensor.nbytes, ctx=tensor.ctx
            )
        except TransferStalled:
            # Retries exhausted with the route still stalled: the bytes
            # never left the source.  Roll the optimistic accounting back
            # so every ledger points at where the payload actually is,
            # and un-post the move — the coordinator re-queues it for a
            # later boundary.  The engine keeps running; no exception
            # escapes an iteration boundary for a transient fault.
            self._release_placement(tensor)
            self._account_placement(tensor, current)
            self._post(
                "/move_failed", {"tensor_id": tensor.id, "location": current}
            )
            return
        if not moved:
            # The source GPU failed with the bytes on it.  The books
            # already point at the new location; mark the payload lost
            # so the owner recomputes on its next access.
            tensor.lost = True
            self.lost_tensors += 1
            if self.telemetry is not None:
                self.telemetry.lost_tensors.labels(gpu=self.name).inc()
        elif self.telemetry is not None:
            self.telemetry.tensor_migrations.labels(target=target).inc()

    def _resilient_copy(
        self,
        src: Hashable,
        dst: Hashable,
        nbytes: float,
        pieces: int = 1,
        ctx: Optional[int] = None,
    ) -> Generator:
        """One fault-tolerant transfer; returns whether the bytes moved.

        Stalled DMA engines (:class:`~repro.hardware.dma.TransferStalled`)
        are retried with the instance's capped-exponential-backoff
        :class:`~repro.faults.RetryPolicy`, re-raising only once the
        policy's attempts are exhausted.  A failed endpoint GPU
        (:class:`~repro.hardware.dma.GpuFailedError`) is not retryable:
        the copy returns ``False`` and the caller decides what the loss
        means (usually :class:`~repro.aqua.tensor.TensorLostError`).
        """
        delays = self.retry_policy.delays()
        attempt = 1
        while True:
            try:
                yield from self.server.transfer(src, dst, nbytes, pieces=pieces, ctx=ctx)
                return True
            except GpuFailedError:
                return False
            except TransferStalled:
                delay = next(delays, None)
                if delay is None:
                    raise
                self.retries += 1
                if self.telemetry is not None:
                    self.telemetry.transfer_retries.labels(gpu=self.name).inc()
                if self.tracer is not None:
                    self.tracer.add_instant(
                        "aqua-retry",
                        self.name,
                        time=self.env.now,
                        attempt=attempt,
                        backoff_s=delay,
                    )
                yield self.env.timeout(delay)
                attempt += 1

    def _move_payload(
        self,
        tensor: AquaTensor,
        src: Hashable,
        dst: Hashable,
        nbytes: Optional[int] = None,
        pieces: Optional[int] = None,
    ) -> Generator:
        """Data-plane copy used by ``AquaTensor.fetch``/``flush``.

        Raises
        ------
        TensorLostError
            When the offloaded endpoint has failed: the tensor's bytes
            are unrecoverable and the owner must recompute.
        """
        payload = tensor.nbytes if nbytes is None else min(nbytes, tensor.nbytes)
        if payload <= 0:
            return
        started = self.env.now
        scatter = tensor.pieces if pieces is None else pieces
        effective_pieces = 1 if self.gather_enabled else scatter
        if self.gather_enabled and scatter > 1:
            # Gather/scatter staging: one read + one write of the payload
            # through the consumer GPU's HBM (the custom CUDA kernels of §5).
            staging = 2 * payload / self.gpu.spec.effective_hbm_bandwidth
            yield self.env.timeout(staging)
        moved = yield from self._resilient_copy(
            src, dst, payload, pieces=effective_pieces, ctx=tensor.ctx
        )
        if not moved:
            tensor.lost = True
            self.lost_tensors += 1
            if self.telemetry is not None:
                self.telemetry.lost_tensors.labels(gpu=self.name).inc()
            raise TensorLostError(tensor)
        if self.telemetry is not None:
            op = "flush" if src is self.gpu else "fetch"
            self.telemetry.offload_bytes.labels(gpu=self.name, op=op).inc(payload)
            if tensor.ctx is not None:
                track = f"aqua:{self.name}"
                self.telemetry.tracer.add_span(
                    op, track, started, self.env.now,
                    request=tensor.ctx, nbytes=payload, tensor=tensor.tag,
                )
                self.telemetry.flow(tensor.ctx, track, time=started)

    def __repr__(self) -> str:
        return (
            f"<AquaLib {self.name} donated={self.donated_bytes / 2**30:.1f}GiB "
            f"tensors={len(self.tensors)}>"
        )
