"""Informers: per-engine donate/reclaim policies (§B.1).

The northbound ``inform_stats(...)`` call feeds engine-level metrics to
AQUA-LIB; an *informer* turns those metrics into a decision — donate
spare memory, reclaim donated memory, or do nothing.  The paper ships
two informers:

* ``llm-informer`` — an LLM is a producer when its request rate is low:
  it retains ~5 GB for live inference context and donates the rest;
  when the wait queue builds up it reclaims everything.
* ``batch-informer`` — image/audio engines run at a fixed peak-throughput
  batch size, so after each batch they donate whatever HBM is free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.hardware.specs import GiB


class Action(str, Enum):
    """What the informer wants AQUA-LIB to do."""

    OFFER = "offer"
    RECLAIM = "reclaim"
    HOLD = "hold"


@dataclass(frozen=True)
class Decision:
    action: Action
    nbytes: int = 0

    @classmethod
    def hold(cls) -> "Decision":
        return cls(Action.HOLD)

    @classmethod
    def offer(cls, nbytes: int) -> "Decision":
        return cls(Action.OFFER, nbytes)

    @classmethod
    def reclaim(cls) -> "Decision":
        return cls(Action.RECLAIM)


@dataclass
class EngineStats:
    """Engine-level metrics passed through ``inform_stats(...)``.

    Attributes
    ----------
    now:
        Simulation time of the report.
    pending_requests:
        Requests waiting in the engine's admission queue.
    running_requests:
        Requests currently being inferred.
    kv_used_bytes, kv_capacity_bytes:
        Occupancy of the engine's reserved inference-context region.
    offerable_bytes:
        Bytes the engine could release right now (free context region
        plus any other spare HBM), before the informer's retention.
    arrived_total:
        Cumulative requests ever submitted to the engine — the informer
        differentiates this over its window to estimate the request
        rate, exactly as the paper's ``llm-informer`` does (§B.1).
    """

    now: float
    pending_requests: int = 0
    running_requests: int = 0
    kv_used_bytes: int = 0
    kv_capacity_bytes: int = 0
    offerable_bytes: int = 0
    arrived_total: int = 0

    @property
    def kv_utilization(self) -> float:
        if self.kv_capacity_bytes <= 0:
            return 0.0
        return self.kv_used_bytes / self.kv_capacity_bytes


class LlmInformer:
    """Donate when traffic is low; reclaim when the queue builds (§B.1).

    The paper's ``llm-informer`` estimates the request rate over a time
    window from the queue metric the engine reports: below a threshold
    the LLM retains ~5 GB for live context and donates the rest; above
    it (or when the wait queue builds up), it reclaims.

    Parameters
    ----------
    retain_bytes:
        Context memory kept out of any donation so the engine stays
        responsive (the paper retains 5 GB).
    rate_low, rate_high:
        Request-rate thresholds (req/s) for donating / reclaiming.
    queue_high:
        Pending-request count that also signals overload.
    low_utilization:
        KV-region utilization below which the engine counts as idle.
    min_offer_bytes:
        Donations smaller than this are not worth the coordination.
    window:
        Number of recent reports kept for queue smoothing (a single
        momentary spike does not trigger reclaim).
    rate_window:
        Seconds of arrival history used for the rate estimate; a short
        window mistakes Poisson clumping for a burst.
    """

    def __init__(
        self,
        retain_bytes: int = 5 * GiB,
        rate_low: float = 3.0,
        rate_high: float = 4.0,
        queue_high: int = 4,
        low_utilization: float = 0.5,
        min_offer_bytes: int = 1 * GiB,
        window: int = 3,
        rate_window: float = 10.0,
    ) -> None:
        if retain_bytes < 0 or min_offer_bytes <= 0:
            raise ValueError("retain_bytes must be >= 0 and min_offer_bytes > 0")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if rate_high < rate_low:
            raise ValueError("rate_high must be >= rate_low")
        if rate_window <= 0:
            raise ValueError(f"rate_window must be positive, got {rate_window}")
        self.retain_bytes = retain_bytes
        self.rate_low = rate_low
        self.rate_high = rate_high
        self.queue_high = queue_high
        self.low_utilization = low_utilization
        self.min_offer_bytes = min_offer_bytes
        self.rate_window = rate_window
        self._recent_pending: deque[int] = deque(maxlen=window)
        self._recent_arrivals: deque[tuple[float, int]] = deque()

    def _request_rate(self, now: float, arrived_total: int) -> float:
        self._recent_arrivals.append((now, arrived_total))
        while (
            len(self._recent_arrivals) > 2
            and now - self._recent_arrivals[0][0] > self.rate_window
        ):
            self._recent_arrivals.popleft()
        (t0, a0), (t1, a1) = self._recent_arrivals[0], self._recent_arrivals[-1]
        # A floor on the span keeps a couple of clumped arrivals right
        # after startup from reading as a huge rate.
        span = max(t1 - t0, 1.0)
        return (a1 - a0) / span

    def decide(self, stats: EngineStats, donated_bytes: int) -> Decision:
        """Pick an action given fresh stats and the current donation."""
        self._recent_pending.append(stats.pending_requests)
        smoothed = sum(self._recent_pending) / len(self._recent_pending)
        rate = self._request_rate(stats.now, stats.arrived_total)
        if donated_bytes > 0 and (smoothed >= self.queue_high or rate > self.rate_high):
            return Decision.reclaim()
        if (
            rate < self.rate_low
            and smoothed < self.queue_high
            and stats.kv_utilization <= self.low_utilization
        ):
            spare = stats.offerable_bytes - self.retain_bytes
            if spare >= self.min_offer_bytes:
                return Decision.offer(spare)
        return Decision.hold()


class BatchInformer:
    """Fixed-batch producers donate all free memory beyond a margin.

    Image and audio engines serve at their peak-throughput batch size
    (Figure 2), so their free memory is stable; the informer donates it
    once and only tops up if more frees up.  Integrating this into the
    diffusers/audio engines took "less than 10 lines of code" in the
    paper — the decision logic is correspondingly simple.
    """

    def __init__(self, margin_bytes: int = 2 * GiB, min_offer_bytes: int = 1 * GiB) -> None:
        if margin_bytes < 0 or min_offer_bytes <= 0:
            raise ValueError("margin_bytes must be >= 0 and min_offer_bytes > 0")
        self.margin_bytes = margin_bytes
        self.min_offer_bytes = min_offer_bytes

    def decide(self, stats: EngineStats, donated_bytes: int) -> Decision:
        spare = stats.offerable_bytes - self.margin_bytes
        if spare >= self.min_offer_bytes:
            return Decision.offer(spare)
        return Decision.hold()
