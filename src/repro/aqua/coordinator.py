"""The AQUA central coordinator (§3, §B).

The coordinator is a thread-safe datastore behind REST endpoints.  It
tracks which GPUs are memory *producers* (holding active leases of
spare HBM), which *consumers* they are paired with (decided by
AQUA-PLACER before models start), where every offloaded AQUA TENSOR
lives, and in-flight reclaim requests.

Endpoints (all payloads are JSON-like dicts; GPUs are identified by
their names):

=======================  ====================================================
``POST /pair``           Pair a consumer GPU with its producer (from the placer).
``POST /lease``          Producer offers ``nbytes`` of spare HBM.
``POST /reclaim_request``Producer asks for its memory back.
``GET  /reclaim_status`` Producer polls whether consumers have evacuated.
``POST /allocate``       Consumer asks where a new tensor should live.
``POST /free``           Consumer frees a tensor.
``POST /moved``          Consumer confirms a tensor migration finished.
``POST /move_failed``    Consumer rolls back a migration whose copy never ran.
``GET  /respond``        Consumer fetches the migrations it must perform.
``POST /gpu_failed``     Health daemon reports a failed GPU (contents lost).
``POST /gpu_recovered``  Health daemon reports the GPU is back (empty).
``POST /link_degraded``  Consumer's NVLink path is no faster than PCIe.
``POST /link_restored``  Consumer's NVLink path is healthy again.
``GET  /health``         Current failed GPUs and degraded consumers.
``GET  /offers``         Debug view of live leases.
``GET  /stats``          Snapshot of the whole datastore.
=======================  ====================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.aqua.rest import Response, RestRouter

#: Sentinel location meaning "host DRAM fallback".
DRAM = "dram"


@dataclass
class Lease:
    """A producer's standing offer of spare HBM."""

    producer: str
    offered: int
    used: int = 0
    #: While False, no new allocations may land on this producer.
    accepting: bool = True

    @property
    def free(self) -> int:
        return self.offered - self.used


@dataclass
class Allocation:
    """Where one offloaded tensor lives."""

    tensor_id: int
    consumer: str
    location: str  # producer GPU name, or DRAM
    nbytes: int


@dataclass
class ReclaimRequest:
    """An in-flight request by a producer to get its memory back."""

    producer: str
    pending_tensors: set[int] = field(default_factory=set)

    @property
    def done(self) -> bool:
        return not self.pending_tensors


class Coordinator:
    """Central bookkeeping for AQUA leases, pairings and tensors.

    Parameters
    ----------
    strict_json:
        Run the REST router in wire-faithful mode: every payload and
        body is round-tripped through JSON (see
        :class:`~repro.aqua.rest.RestRouter`).  Dict keys arrive as
        strings, exactly as over a socket.
    """

    def __init__(self, strict_json: bool = False) -> None:
        self._lock = threading.RLock()
        self.router = RestRouter(strict_json=strict_json)
        #: Data-plane registry: GPU name -> device object.  Populated by
        #: AquaLib instances when they register; stands in for the
        #: cluster addressing a real deployment gets from NCCL ranks.
        self.devices: dict = {}
        #: Control-plane registry: GPU name -> AquaLib instance.  Also
        #: populated at AquaLib construction; the conservation audit
        #: (:mod:`repro.audit`) discovers the per-GPU books through it.
        self.libs: dict = {}
        self.leases: dict[str, Lease] = {}
        self.pairings: dict[str, str] = {}  # consumer -> producer
        self.allocations: dict[int, Allocation] = {}
        self.reclaims: dict[str, ReclaimRequest] = {}
        #: Migrations owed per consumer: tensor_id -> target location.
        self._migrations: dict[str, dict[int, str]] = {}
        #: GPUs currently reported failed by the health daemon
        #: (:class:`~repro.faults.FaultInjector`).  No allocations or
        #: leases land on these until recovery.
        self.failed_gpus: set[str] = set()
        #: Consumers whose NVLink fast path is currently degraded below
        #: the PCIe fallback; their tensors stay in (or move to) DRAM.
        self.degraded_consumers: set[str] = set()
        #: Optional :class:`~repro.telemetry.Telemetry` hub (installed by
        #: the experiment harness).  Counts REST traffic per endpoint and
        #: queued migrations per reason.
        self.telemetry = None
        self._install_routes()

    # ------------------------------------------------------------------
    # REST facade
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload: Optional[dict] = None) -> Response:
        """Entry point used by AQUA-LIB's southbound interface."""
        if self.telemetry is not None:
            self.telemetry.coordinator_requests.labels(
                method=method, path=path
            ).inc()
        return self.router.request(method, path, payload)

    def _count_migration(self, reason: str, n: int = 1) -> None:
        if self.telemetry is not None and n > 0:
            self.telemetry.migrations_queued.labels(reason=reason).inc(n)

    def _install_routes(self) -> None:
        route = self.router.route

        @route("POST", "/pair")
        def pair(payload: dict) -> Response:
            return self.pair(payload["consumer"], payload["producer"])

        @route("POST", "/lease")
        def lease(payload: dict) -> Response:
            return self.lease(payload["producer"], int(payload["nbytes"]))

        @route("POST", "/reclaim_request")
        def reclaim_request(payload: dict) -> Response:
            return self.reclaim_request(payload["producer"])

        @route("GET", "/reclaim_status")
        def reclaim_status(payload: dict) -> Response:
            return self.reclaim_status(payload["producer"])

        @route("POST", "/allocate")
        def allocate(payload: dict) -> Response:
            return self.allocate(
                payload["consumer"], int(payload["tensor_id"]), int(payload["nbytes"])
            )

        @route("POST", "/free")
        def free(payload: dict) -> Response:
            return self.free(int(payload["tensor_id"]))

        @route("POST", "/moved")
        def moved(payload: dict) -> Response:
            return self.moved(int(payload["tensor_id"]), payload["location"])

        @route("POST", "/move_failed")
        def move_failed(payload: dict) -> Response:
            return self.move_failed(int(payload["tensor_id"]), payload["location"])

        @route("GET", "/respond")
        def respond(payload: dict) -> Response:
            return self.respond(payload["consumer"])

        @route("POST", "/gpu_failed")
        def gpu_failed(payload: dict) -> Response:
            return self.gpu_failed(payload["gpu"])

        @route("POST", "/gpu_recovered")
        def gpu_recovered(payload: dict) -> Response:
            return self.gpu_recovered(payload["gpu"])

        @route("POST", "/link_degraded")
        def link_degraded(payload: dict) -> Response:
            return self.link_degraded(payload["consumer"])

        @route("POST", "/link_restored")
        def link_restored(payload: dict) -> Response:
            return self.link_restored(payload["consumer"])

        @route("GET", "/health")
        def health(payload: dict) -> Response:
            with self._lock:
                return Response.json(
                    {
                        "failed_gpus": sorted(self.failed_gpus),
                        "degraded_consumers": sorted(self.degraded_consumers),
                    }
                )

        @route("GET", "/offers")
        def offers(payload: dict) -> Response:
            with self._lock:
                body = {
                    name: {"offered": l.offered, "used": l.used, "accepting": l.accepting}
                    for name, l in self.leases.items()
                }
            return Response.json({"leases": body})

        @route("GET", "/stats")
        def stats(payload: dict) -> Response:
            with self._lock:
                return Response.json(
                    {
                        "leases": len(self.leases),
                        "pairings": dict(self.pairings),
                        "allocations": len(self.allocations),
                        "offloaded_bytes": sum(
                            a.nbytes
                            for a in self.allocations.values()
                            if a.location != DRAM
                        ),
                        "dram_bytes": sum(
                            a.nbytes
                            for a in self.allocations.values()
                            if a.location == DRAM
                        ),
                    }
                )

    # ------------------------------------------------------------------
    # Handlers (also callable directly; every one takes the lock)
    # ------------------------------------------------------------------
    def pair(self, consumer: str, producer: str) -> Response:
        """Record the placer's consumer->producer assignment."""
        with self._lock:
            self.pairings[consumer] = producer
            return Response.json({"consumer": consumer, "producer": producer})

    def lease(self, producer: str, nbytes: int) -> Response:
        """Producer offers ``nbytes`` of HBM (adds to an existing lease)."""
        if nbytes <= 0:
            return Response.error(f"lease size must be positive, got {nbytes}")
        with self._lock:
            if producer in self.reclaims:
                return Response.error(
                    f"{producer} has a reclaim in progress", status=409
                )
            if producer in self.failed_gpus:
                return Response.error(f"{producer} is marked failed", status=409)
            lease = self.leases.get(producer)
            if lease is None:
                lease = Lease(producer=producer, offered=0)
                self.leases[producer] = lease
            lease.offered += nbytes
            lease.accepting = True
            return Response.json({"producer": producer, "offered": lease.offered})

    def reclaim_request(self, producer: str) -> Response:
        """Producer wants all its donated memory back.

        Marks the lease non-accepting and queues a migration to DRAM
        for every tensor currently parked on the producer.
        """
        with self._lock:
            lease = self.leases.get(producer)
            if lease is None:
                return Response.error(f"{producer} has no lease", status=404)
            lease.accepting = False
            reclaim = self.reclaims.setdefault(producer, ReclaimRequest(producer))
            queued = 0
            for alloc in self.allocations.values():
                if alloc.location == producer:
                    reclaim.pending_tensors.add(alloc.tensor_id)
                    self._migrations.setdefault(alloc.consumer, {})[
                        alloc.tensor_id
                    ] = DRAM
                    queued += 1
            self._count_migration("reclaim", queued)
            if reclaim.done:
                self._finish_reclaim(producer)
                return Response.json({"pending": 0, "done": True})
            return Response.json(
                {"pending": len(reclaim.pending_tensors), "done": False}
            )

    def reclaim_status(self, producer: str) -> Response:
        """Poll an in-flight reclaim; completes it when drained."""
        with self._lock:
            reclaim = self.reclaims.get(producer)
            if reclaim is None:
                return Response.json({"pending": 0, "done": True})
            if reclaim.done:
                self._finish_reclaim(producer)
                return Response.json({"pending": 0, "done": True})
            return Response.json(
                {"pending": len(reclaim.pending_tensors), "done": False}
            )

    def _finish_reclaim(self, producer: str) -> None:
        """Drop the drained lease so the producer can reuse its memory."""
        self.reclaims.pop(producer, None)
        self.leases.pop(producer, None)

    def allocate(self, consumer: str, tensor_id: int, nbytes: int) -> Response:
        """Pick the location for a new tensor: paired producer, else DRAM."""
        if nbytes <= 0:
            return Response.error(f"tensor size must be positive, got {nbytes}")
        with self._lock:
            if tensor_id in self.allocations:
                return Response.error(
                    f"tensor {tensor_id} already allocated", status=409
                )
            location = DRAM
            producer = self.pairings.get(consumer)
            if (
                producer is not None
                and producer not in self.failed_gpus
                and consumer not in self.degraded_consumers
            ):
                lease = self.leases.get(producer)
                if lease is not None and lease.accepting and lease.free >= nbytes:
                    lease.used += nbytes
                    location = producer
            self.allocations[tensor_id] = Allocation(
                tensor_id=tensor_id,
                consumer=consumer,
                location=location,
                nbytes=nbytes,
            )
            return Response.json({"location": location})

    def free(self, tensor_id: int) -> Response:
        """Release a tensor's allocation wherever it lives."""
        with self._lock:
            alloc = self.allocations.pop(tensor_id, None)
            if alloc is None:
                return Response.error(f"unknown tensor {tensor_id}", status=404)
            self._release_location(alloc)
            self._migrations.get(alloc.consumer, {}).pop(tensor_id, None)
            reclaim = self.reclaims.get(alloc.location)
            if reclaim is not None:
                reclaim.pending_tensors.discard(tensor_id)
            return Response.json({"freed": alloc.nbytes})

    def moved(self, tensor_id: int, location: str) -> Response:
        """Consumer confirms a tensor now lives at ``location``."""
        with self._lock:
            alloc = self.allocations.get(tensor_id)
            if alloc is None:
                return Response.error(f"unknown tensor {tensor_id}", status=404)
            old = alloc.location
            if old == location:
                return Response.json({"location": location})
            self._release_location(alloc)
            if location != DRAM:
                lease = self.leases.get(location)
                if lease is None or not lease.accepting or lease.free < alloc.nbytes:
                    return Response.error(
                        f"no capacity on {location} for tensor {tensor_id}",
                        status=409,
                    )
                lease.used += alloc.nbytes
            alloc.location = location
            self._migrations.get(alloc.consumer, {}).pop(tensor_id, None)
            reclaim = self.reclaims.get(old)
            if reclaim is not None:
                reclaim.pending_tensors.discard(tensor_id)
            return Response.json({"location": location})

    def move_failed(self, tensor_id: int, location: str) -> Response:
        """Consumer reports a migration whose data-plane copy never ran.

        ``location`` is where the bytes physically still are (the
        migration's *source*).  The earlier ``/moved`` optimistically
        pointed the books at the target; this rolls them back so the
        ledger matches reality, then re-queues the migration so a later
        ``/respond`` retries it.  Re-charging a non-accepting lease is
        deliberate: the bytes are parked there whether or not the lease
        accepts *new* tenants, and a reclaim in flight must keep waiting
        for them.
        """
        with self._lock:
            alloc = self.allocations.get(tensor_id)
            if alloc is None:
                return Response.error(f"unknown tensor {tensor_id}", status=404)
            if alloc.location == location:
                return Response.json({"location": location})
            target = alloc.location
            self._release_location(alloc)
            if location != DRAM:
                lease = self.leases.get(location)
                if lease is None:
                    return Response.error(
                        f"no lease on {location} to roll tensor {tensor_id} "
                        "back onto",
                        status=409,
                    )
                lease.used += alloc.nbytes
                reclaim = self.reclaims.get(location)
                if reclaim is not None:
                    reclaim.pending_tensors.add(tensor_id)
            alloc.location = location
            # The move is still owed; retry it at a later boundary.
            self._migrations.setdefault(alloc.consumer, {})[tensor_id] = target
            self._count_migration("retry")
            return Response.json({"location": location, "requeued": target})

    def respond(self, consumer: str) -> Response:
        """Migrations this consumer must perform at its next boundary.

        Forced moves (reclaims) come first; then opportunistic upgrades
        of DRAM tensors into the paired producer's free lease.

        The migration map is keyed by *string* tensor ids — JSON objects
        cannot have int keys, and this payload must survive a real HTTP
        round trip (:class:`~repro.aqua.rest.RestRouter` ``strict_json``
        mode enforces exactly that).  Clients convert back with
        ``int()`` (see :meth:`AquaLib.get_tensors_to_move
        <repro.aqua.lib.AquaLib.get_tensors_to_move>`).
        """
        with self._lock:
            moves = dict(self._migrations.get(consumer, {}))
            producer = self.pairings.get(consumer)
            if (
                producer is not None
                and producer not in self.failed_gpus
                and consumer not in self.degraded_consumers
            ):
                lease = self.leases.get(producer)
                if lease is not None and lease.accepting:
                    budget = lease.free
                    upgrades = 0
                    for alloc in self.allocations.values():
                        if (
                            alloc.consumer == consumer
                            and alloc.location == DRAM
                            and alloc.tensor_id not in moves
                            and alloc.nbytes <= budget
                        ):
                            moves[alloc.tensor_id] = producer
                            budget -= alloc.nbytes
                            upgrades += 1
                    self._count_migration("upgrade", upgrades)
            return Response.json(
                {"migrations": {str(tid): target for tid, target in moves.items()}}
            )

    # ------------------------------------------------------------------
    # Health transitions (reported by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def gpu_failed(self, gpu: str) -> Response:
        """Quarantine a failed GPU reported by the health daemon.

        Its lease (if any) stops accepting but stays on the books so
        the producer's donation accounting remains consistent through
        the outage.  Tensors parked on the GPU are *lost*, not
        migrated: their consumers discover the loss on the next access
        (:class:`~repro.aqua.tensor.TensorLostError`), free the tensor
        and recompute — which is what drains ``lease.used``.
        """
        with self._lock:
            self.failed_gpus.add(gpu)
            lease = self.leases.get(gpu)
            if lease is not None:
                lease.accepting = False
            return Response.json({"failed_gpus": sorted(self.failed_gpus)})

    def gpu_recovered(self, gpu: str) -> Response:
        """Un-quarantine a GPU; its lease accepts new tensors again.

        The GPU comes back *empty* — re-population happens organically
        through :meth:`respond`'s opportunistic upgrades and new
        allocations.
        """
        with self._lock:
            self.failed_gpus.discard(gpu)
            lease = self.leases.get(gpu)
            if lease is not None and gpu not in self.reclaims:
                lease.accepting = True
            return Response.json({"failed_gpus": sorted(self.failed_gpus)})

    def link_degraded(self, consumer: str) -> Response:
        """Fail over ``consumer`` from its NVLink path to PCIe/DRAM.

        Called when the consumer->producer link's effective bandwidth
        drops to or below the PCIe fallback.  Queues a forced migration
        to DRAM for every tensor the consumer has parked on its
        producer (the evacuation travels over the *producer's* PCIe
        lane, not the degraded NVLink) and stops new fast-path
        placements until :meth:`link_restored`.
        """
        with self._lock:
            self.degraded_consumers.add(consumer)
            producer = self.pairings.get(consumer)
            evacuating = 0
            if producer is not None and producer not in self.failed_gpus:
                for alloc in self.allocations.values():
                    if alloc.consumer == consumer and alloc.location == producer:
                        self._migrations.setdefault(consumer, {})[
                            alloc.tensor_id
                        ] = DRAM
                        evacuating += 1
            self._count_migration("link-degraded", evacuating)
            return Response.json({"evacuating": evacuating})

    def link_restored(self, consumer: str) -> Response:
        """The consumer's NVLink path is healthy again.

        Drops any degradation-driven DRAM evacuations that have not run
        yet (unless the producer has a reclaim in flight, whose forced
        moves must survive); :meth:`respond`'s opportunistic upgrades
        then move tensors back to the fast path.
        """
        with self._lock:
            self.degraded_consumers.discard(consumer)
            producer = self.pairings.get(consumer)
            if producer is not None and producer not in self.reclaims:
                pending = self._migrations.get(consumer, {})
                for tensor_id, target in list(pending.items()):
                    if target == DRAM:
                        del pending[tensor_id]
            return Response.json({"ok": True})

    def _release_location(self, alloc: Allocation) -> None:
        if alloc.location != DRAM:
            lease = self.leases.get(alloc.location)
            if lease is not None:
                lease.used -= alloc.nbytes

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and reports)
    # ------------------------------------------------------------------
    def offloaded_bytes(self, producer: str) -> int:
        with self._lock:
            return sum(
                a.nbytes for a in self.allocations.values() if a.location == producer
            )

    def tensors_of(self, consumer: str) -> list[Allocation]:
        with self._lock:
            return [a for a in self.allocations.values() if a.consumer == consumer]

    def audit_snapshot(self) -> dict:
        """One consistent view of the books, taken under the lock.

        The conservation audit (:mod:`repro.audit`) checks invariants
        against this snapshot rather than reading the live dicts field
        by field, so a check can never see a lease and its allocations
        from two different moments.
        """
        with self._lock:
            return {
                "leases": {
                    name: Lease(
                        producer=l.producer,
                        offered=l.offered,
                        used=l.used,
                        accepting=l.accepting,
                    )
                    for name, l in self.leases.items()
                },
                "allocations": {
                    tid: Allocation(
                        tensor_id=a.tensor_id,
                        consumer=a.consumer,
                        location=a.location,
                        nbytes=a.nbytes,
                    )
                    for tid, a in self.allocations.items()
                },
                "pairings": dict(self.pairings),
                "failed_gpus": set(self.failed_gpus),
                "degraded_consumers": set(self.degraded_consumers),
                "reclaims": {
                    name: set(r.pending_tensors) for name, r in self.reclaims.items()
                },
            }
