"""AQUA: transparent, elastic multi-GPU memory management.

This package is the paper's primary contribution:

* :class:`AquaTensor` — migratable offloaded tensors that live in a
  producer GPU's spare HBM (reached over NVLink) or fall back to host
  DRAM, with gather/scatter batching so small KV buffers still see
  NVLink's large-transfer bandwidth (§3, §5).
* :class:`Coordinator` — the central thread-safe datastore behind a
  REST API that tracks memory offers from producers, requests from
  consumers, and reclaim signalling (§3, §B).
* :class:`AquaLib` — the per-GPU library instance with a *northbound*
  interface to the serving engine (``inform_stats``, ``respond``) and a
  *southbound* interface to the coordinator (§3).
* informers — the ``llm-informer`` and ``batch-informer`` donate/reclaim
  policies (§B.1).
* :class:`AquaPlacer` — Algorithm 1: optimal model placement via MILP
  plus per-server stable matching (§4).
"""

from repro.aqua.coordinator import Coordinator, Lease
from repro.aqua.informers import BatchInformer, EngineStats, LlmInformer
from repro.aqua.lib import AquaLib
from repro.aqua.placer import (
    AquaPlacer,
    ModelInstance,
    Placement,
    PlacementError,
    stable_match,
)
from repro.aqua.rest import Response, RestRouter
from repro.aqua.tensor import AquaTensor, Location, TensorLostError

__all__ = [
    "AquaLib",
    "AquaPlacer",
    "AquaTensor",
    "BatchInformer",
    "Coordinator",
    "EngineStats",
    "Lease",
    "LlmInformer",
    "Location",
    "ModelInstance",
    "Placement",
    "PlacementError",
    "Response",
    "RestRouter",
    "TensorLostError",
    "stable_match",
]
