"""AQUA-PLACER: optimal model placement (§4, Algorithm 1).

The placer maps ML model instances to servers so that every
memory-bound model (consumer) shares a fast inter-GPU network with a
memory-rich model (producer).  It runs in two steps, exactly as the
paper describes:

1. **Model -> server assignment** as a mixed-integer program: minimize
   ``max_s(mem_s) + G_mem * max_s(eq_s)`` subject to one server per
   model, at most G models per server, where ``mem_s`` is the signed
   memory balance of server ``s`` (producers positive, consumers
   negative) and ``eq_s`` the signed producer/consumer count.  The
   paper solves this with Gurobi; this reproduction uses the HiGHS MILP
   solver shipped with SciPy, which is also exact.
2. **Within each server**, producers are matched to consumers with
   classic Gale-Shapley stable matching — at most one consumer per
   producer by design, so a producer's NVLink bandwidth is never shared.

A greedy heuristic solver is included both as a fallback (no SciPy) and
as an ablation baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.hardware.specs import GiB


class PlacementError(RuntimeError):
    """Raised when no feasible placement exists."""


@dataclass(frozen=True)
class ModelInstance:
    """One model instance to place.

    Attributes
    ----------
    name:
        Unique instance identifier (two copies of the same model get
        distinct names).
    model:
        The underlying model preset name (informational).
    memory_bytes:
        The paper's ``R_m``: positive for a producer (bytes of HBM it
        can offer), negative for a consumer (bytes of deficit).
    """

    name: str
    model: str
    memory_bytes: int

    @property
    def is_producer(self) -> bool:
        return self.memory_bytes > 0

    @property
    def is_consumer(self) -> bool:
        return self.memory_bytes < 0

    @property
    def type_sign(self) -> int:
        """The paper's ``t_m``: +1 producer, -1 consumer, 0 neutral."""
        if self.memory_bytes > 0:
            return 1
        if self.memory_bytes < 0:
            return -1
        return 0


@dataclass
class Placement:
    """The placer's output: servers, GPU slots and producer pairings."""

    server_of: dict[str, int]
    gpu_of: dict[str, tuple[int, int]]
    pairs: list[tuple[str, str]] = field(default_factory=list)  # (consumer, producer)
    solve_seconds: float = 0.0
    objective: float = 0.0
    solver: str = "milp"

    def producer_for(self, consumer: str) -> Optional[str]:
        for c, p in self.pairs:
            if c == consumer:
                return p
        return None

    def unmatched_consumers(self, instances: Sequence[ModelInstance]) -> list[str]:
        matched = {c for c, _ in self.pairs}
        return [m.name for m in instances if m.is_consumer and m.name not in matched]

    def models_on_server(self, server: int) -> list[str]:
        return [name for name, s in self.server_of.items() if s == server]


def stable_match(
    consumers: Sequence[ModelInstance], producers: Sequence[ModelInstance]
) -> list[tuple[str, str]]:
    """Gale-Shapley stable matching of consumers to producers.

    Consumers propose in best-fit order (the producer with the smallest
    offer that still covers their deficit first); producers prefer the
    consumer with the largest deficit.  Producers whose offer cannot
    cover a consumer's deficit are still acceptable (partial relief
    beats DRAM-only), ranked after sufficient producers.
    """
    if not consumers or not producers:
        return []

    def consumer_preference(c: ModelInstance) -> list[int]:
        deficit = -c.memory_bytes

        def rank(item: tuple[int, ModelInstance]) -> tuple[int, float]:
            _, p = item
            sufficient = p.memory_bytes >= deficit
            # Best fit among sufficient producers; largest among short ones.
            key = (p.memory_bytes - deficit) if sufficient else -p.memory_bytes
            return (0 if sufficient else 1, key)

        return [i for i, _ in sorted(enumerate(producers), key=rank)]

    def producer_rank(p_index: int) -> dict[int, int]:
        order = sorted(
            range(len(consumers)), key=lambda ci: consumers[ci].memory_bytes
        )  # most-negative (largest deficit) first
        return {ci: r for r, ci in enumerate(order)}

    prefs = {ci: consumer_preference(c) for ci, c in enumerate(consumers)}
    ranks = {pi: producer_rank(pi) for pi in range(len(producers))}
    engaged: dict[int, int] = {}  # producer index -> consumer index
    free = list(range(len(consumers)))
    next_choice = {ci: 0 for ci in range(len(consumers))}

    while free:
        ci = free.pop(0)
        if next_choice[ci] >= len(producers):
            continue  # exhausted: stays unmatched
        pi = prefs[ci][next_choice[ci]]
        next_choice[ci] += 1
        current = engaged.get(pi)
        if current is None:
            engaged[pi] = ci
        elif ranks[pi][ci] < ranks[pi][current]:
            engaged[pi] = ci
            free.append(current)
        else:
            free.append(ci)

    return [
        (consumers[ci].name, producers[pi].name) for pi, ci in sorted(engaged.items())
    ]


class AquaPlacer:
    """Algorithm 1: assign model instances to servers and pair them.

    Parameters
    ----------
    n_servers, gpus_per_server:
        Cluster shape (the paper evaluates 8 x 2-GPU and 16 x 8-GPU).
    gpu_memory_bytes:
        Per-GPU HBM, the ``G_mem`` weight in the objective.
    solver:
        ``"milp"`` (exact, via SciPy/HiGHS) or ``"greedy"``.
    """

    def __init__(
        self,
        n_servers: int,
        gpus_per_server: int,
        gpu_memory_bytes: int = 80 * GiB,
        solver: str = "milp",
        time_limit: Optional[float] = 60.0,
    ) -> None:
        if n_servers < 1 or gpus_per_server < 1:
            raise ValueError("cluster dimensions must be >= 1")
        if solver not in ("milp", "greedy"):
            raise ValueError(f"unknown solver {solver!r}")
        self.n_servers = n_servers
        self.gpus_per_server = gpus_per_server
        self.gpu_memory_bytes = gpu_memory_bytes
        self.solver = solver
        #: MILP wall-clock budget in seconds (the paper's Gurobi runs
        #: converge within 45 s on 128 GPUs; HiGHS returns its best
        #: incumbent when the budget expires).  ``None`` = no limit.
        self.time_limit = time_limit

    # ------------------------------------------------------------------
    def place(self, instances: Sequence[ModelInstance]) -> Placement:
        """Compute a placement for ``instances``.

        Raises
        ------
        PlacementError
            If there are more models than GPUs, duplicate names, or the
            MILP is infeasible.
        """
        names = [m.name for m in instances]
        if len(set(names)) != len(names):
            raise PlacementError("model instance names must be unique")
        capacity = self.n_servers * self.gpus_per_server
        if len(instances) > capacity:
            raise PlacementError(
                f"{len(instances)} models exceed cluster capacity of "
                f"{capacity} GPUs"
            )
        if not instances:
            return Placement(server_of={}, gpu_of={}, solver=self.solver)

        started = time.perf_counter()
        if self.solver == "milp":
            server_of, objective = self._solve_milp(instances)
        else:
            server_of, objective = self._solve_greedy(instances)
        placement = self._finalize(instances, server_of)
        placement.objective = objective
        placement.solver = self.solver
        placement.solve_seconds = time.perf_counter() - started
        return placement

    # ------------------------------------------------------------------
    # Step 1a: exact MILP (Algorithm 1)
    # ------------------------------------------------------------------
    def _solve_milp(
        self, instances: Sequence[ModelInstance]
    ) -> tuple[dict[str, int], float]:
        from scipy.optimize import Bounds, LinearConstraint, milp

        M, S = len(instances), self.n_servers
        G = self.gpus_per_server
        gmem = self.gpu_memory_bytes / GiB
        r = np.array([m.memory_bytes / GiB for m in instances])  # R_m in GiB
        t = np.array([m.type_sign for m in instances], dtype=float)

        n_x = M * S
        n_vars = n_x + 2  # + z1 (max mem_s), z2 (max eq_s)
        z1, z2 = n_x, n_x + 1

        def x(m: int, s: int) -> int:
            return m * S + s

        c = np.zeros(n_vars)
        c[z1] = 1.0
        c[z2] = gmem

        rows, lbs, ubs = [], [], []

        # (1) each model on exactly one server
        for m in range(M):
            row = np.zeros(n_vars)
            for s in range(S):
                row[x(m, s)] = 1.0
            rows.append(row)
            lbs.append(1.0)
            ubs.append(1.0)

        # (2) at most G models per server
        for s in range(S):
            row = np.zeros(n_vars)
            for m in range(M):
                row[x(m, s)] = 1.0
            rows.append(row)
            lbs.append(0.0)
            ubs.append(float(G))

        # (3) mem_s <= z1
        for s in range(S):
            row = np.zeros(n_vars)
            for m in range(M):
                row[x(m, s)] = r[m]
            row[z1] = -1.0
            rows.append(row)
            lbs.append(-np.inf)
            ubs.append(0.0)

        # (4) eq_s <= z2
        for s in range(S):
            row = np.zeros(n_vars)
            for m in range(M):
                row[x(m, s)] = t[m]
            row[z2] = -1.0
            rows.append(row)
            lbs.append(-np.inf)
            ubs.append(0.0)

        constraints = LinearConstraint(np.vstack(rows), lbs, ubs)
        integrality = np.concatenate([np.ones(n_x), np.zeros(2)])
        bounds = Bounds(
            lb=np.concatenate([np.zeros(n_x), [-np.inf, -np.inf]]),
            ub=np.concatenate([np.ones(n_x), [np.inf, np.inf]]),
        )
        options = {}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        result = milp(
            c,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
        if not result.success and result.x is None:
            # Truly infeasible, or the time budget expired with no
            # incumbent: fall back to the greedy heuristic rather than
            # failing the whole placement.
            if "infeasible" in (result.message or "").lower():
                raise PlacementError(f"MILP infeasible: {result.message}")
            return self._solve_greedy(instances)

        server_of = {}
        for m, inst in enumerate(instances):
            row = result.x[m * S : (m + 1) * S]
            server_of[inst.name] = int(np.argmax(row))
        return server_of, float(result.fun)

    # ------------------------------------------------------------------
    # Step 1b: greedy fallback / ablation baseline
    # ------------------------------------------------------------------
    def _solve_greedy(
        self, instances: Sequence[ModelInstance]
    ) -> tuple[dict[str, int], float]:
        slots = [self.gpus_per_server] * self.n_servers
        mem = [0.0] * self.n_servers
        eq = [0] * self.n_servers
        server_of: dict[str, int] = {}

        consumers = sorted(
            (m for m in instances if m.is_consumer), key=lambda m: m.memory_bytes
        )
        producers = sorted(
            (m for m in instances if m.is_producer),
            key=lambda m: -m.memory_bytes,
        )
        neutral = [m for m in instances if m.type_sign == 0]

        def assign(inst: ModelInstance, s: int) -> None:
            server_of[inst.name] = s
            slots[s] -= 1
            mem[s] += inst.memory_bytes / GiB
            eq[s] += inst.type_sign

        # Pair the biggest consumer with the biggest producer, placing each
        # pair on the emptiest server with two free slots.
        while consumers and producers:
            cons, prod = consumers.pop(0), producers.pop(0)
            candidates = [s for s in range(self.n_servers) if slots[s] >= 2]
            if not candidates:
                consumers.insert(0, cons)
                producers.insert(0, prod)
                break
            s = max(candidates, key=lambda s: slots[s])
            assign(cons, s)
            assign(prod, s)

        # Leftovers go wherever they best balance memory.
        for inst in [*consumers, *producers, *neutral]:
            candidates = [s for s in range(self.n_servers) if slots[s] >= 1]
            if not candidates:
                raise PlacementError("ran out of GPU slots")
            s = min(candidates, key=lambda s: mem[s] + inst.memory_bytes / GiB)
            assign(inst, s)

        objective = max(mem) + (self.gpu_memory_bytes / GiB) * max(eq)
        return server_of, objective

    # ------------------------------------------------------------------
    # Step 2: GPU slots and per-server stable matching
    # ------------------------------------------------------------------
    def _finalize(
        self, instances: Sequence[ModelInstance], server_of: dict[str, int]
    ) -> Placement:
        by_name = {m.name: m for m in instances}
        gpu_of: dict[str, tuple[int, int]] = {}
        pairs: list[tuple[str, str]] = []
        for s in range(self.n_servers):
            here = [by_name[n] for n, srv in server_of.items() if srv == s]
            for slot, inst in enumerate(here):
                gpu_of[inst.name] = (s, slot)
            pairs.extend(
                stable_match(
                    [m for m in here if m.is_consumer],
                    [m for m in here if m.is_producer],
                )
            )
        return Placement(server_of=dict(server_of), gpu_of=gpu_of, pairs=pairs)
