"""AQUA TENSORS: migratable offloaded tensors (§3, §5, §B).

An :class:`AquaTensor` is allocated by a consumer GPU's AQUA-LIB but
*lives* somewhere else — a paired producer GPU's spare HBM (reached
over NVLink) or host DRAM as the fallback.  The model reads the tensor
into local HBM before an inference iteration (:meth:`fetch`) and writes
updates back afterwards (:meth:`flush`); migrations between locations
happen only at iteration boundaries, driven by
:meth:`~repro.aqua.lib.AquaLib.respond`.

The ``pieces`` attribute models the scatter problem of §5: vLLM keeps a
prompt's KV values fragmented across many per-layer block tensors, and
copying them one-by-one wastes NVLink bandwidth (Figure 3a).  With
``gather_enabled`` AQUA coalesces the pieces into one large staged copy
using its custom CUDA gather/scatter kernels; the staging pass costs
two HBM traversals, which the time model includes.
"""

from __future__ import annotations

from enum import Enum
from itertools import count
from typing import TYPE_CHECKING, Generator, Hashable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aqua.lib import AquaLib

_AQUA_TENSOR_IDS = count()


class TensorLostError(RuntimeError):
    """An AQUA tensor's offloaded bytes are gone.

    Raised when the device backing the tensor failed (a
    :class:`~repro.faults.GpuFailure`) before or during a data-plane
    access.  The bytes cannot be recovered; the owning engine must
    free the tensor and recompute its contents — serving engines
    re-queue the affected request rather than dropping it.

    Attributes
    ----------
    tensor:
        The lost :class:`AquaTensor`.
    """

    def __init__(self, tensor: "AquaTensor") -> None:
        super().__init__(
            f"tensor {tensor.tag} lost: its backing device failed"
        )
        self.tensor = tensor


class TensorPointer:
    """A point-in-time reference to an AQUA tensor's physical storage.

    Valid until the next iteration boundary; :attr:`stale` turns True
    once the tensor has migrated (or been freed) since the pointer was
    taken.
    """

    __slots__ = ("tensor", "device", "location")

    def __init__(self, tensor: "AquaTensor", device, location) -> None:
        self.tensor = tensor
        self.device = device
        self.location = location

    @property
    def stale(self) -> bool:
        return self.tensor.freed or self.tensor._device is not self.device

    def __repr__(self) -> str:
        where = getattr(self.device, "name", self.location)
        flag = " STALE" if self.stale else ""
        return f"<TensorPointer {self.tensor.tag} -> {where}{flag}>"


class Location(str, Enum):
    """Where an AQUA tensor's bytes currently live."""

    PRODUCER = "producer-gpu"
    DRAM = "dram"
    FREED = "freed"


class AquaTensor:
    """One offloaded tensor managed by AQUA-LIB.

    Construct via :meth:`AquaLib.to_responsive_tensor`, not directly.

    Attributes
    ----------
    nbytes:
        Payload size.
    pieces:
        Number of separate small buffers the payload is scattered
        across at the model level (1 = already contiguous).
    """

    def __init__(self, lib: "AquaLib", nbytes: int, pieces: int = 1, tag: str = "aqua") -> None:
        if nbytes <= 0:
            raise ValueError(f"tensor size must be positive, got {nbytes}")
        if pieces < 1:
            raise ValueError(f"pieces must be >= 1, got {pieces}")
        self.id = next(_AQUA_TENSOR_IDS)
        self.lib = lib
        self.nbytes = int(nbytes)
        self.pieces = pieces
        self.tag = f"{tag}#{self.id}"
        self.location: Location = Location.DRAM
        self._device: Optional[Hashable] = None  # producer GPU or HostDRAM
        self.fetch_count = 0
        self.flush_count = 0
        #: True once the backing device failed with the bytes on it;
        #: every later data-plane access raises :class:`TensorLostError`.
        self.lost = False
        #: Trace ID of the owning request (its ``req_id``), stamped by
        #: :meth:`AquaLib.to_responsive_tensor <repro.aqua.lib.AquaLib.to_responsive_tensor>`
        #: and propagated down to every DMA hop this tensor causes.
        #: ``None`` when the owner is untraced or telemetry is off.
        self.ctx: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Hashable]:
        """The device currently holding the offloaded bytes."""
        return self._device

    def to_torch_tensor(self) -> "TensorPointer":
        """Return the current pointer to the tensor's storage (§B).

        The paper wraps PyTorch tensors and returns "an updated pointer
        whenever it is accessed", because AQUA may migrate the storage
        between accesses.  The returned pointer is valid only until the
        next iteration boundary (the next ``aqua.respond()`` call);
        holding it across a migration is the use-after-move hazard the
        paper's design rules out.
        """
        if self.freed:
            raise RuntimeError(f"to_torch_tensor on freed tensor {self.tag}")
        return TensorPointer(tensor=self, device=self._device, location=self.location)

    @property
    def on_fast_path(self) -> bool:
        """True when the tensor sits in a producer GPU's HBM."""
        return self.location is Location.PRODUCER

    @property
    def freed(self) -> bool:
        return self.location is Location.FREED

    # ------------------------------------------------------------------
    # Data-plane operations (simulation processes)
    # ------------------------------------------------------------------
    def fetch(self, nbytes: Optional[int] = None, pieces: Optional[int] = None) -> Generator:
        """Copy (part of) the tensor's bytes into the consumer GPU's HBM.

        Yield-from inside an engine process; the elapsed simulation time
        is the NVLink/PCIe transfer plus (when gathering) the local HBM
        staging pass.  ``nbytes``/``pieces`` default to the whole tensor;
        engines that stream a window (FlexGen's layer-wise reads) pass
        the window size.
        """
        if self.freed:
            raise RuntimeError(f"fetch on freed tensor {self.tag}")
        if self.lost:
            raise TensorLostError(self)
        yield from self.lib._move_payload(
            self, src=self._device, dst=self.lib.gpu, nbytes=nbytes, pieces=pieces
        )
        self.fetch_count += 1

    def flush(self, nbytes: Optional[int] = None, pieces: Optional[int] = None) -> Generator:
        """Copy (part of) the tensor's bytes from the consumer GPU back out."""
        if self.freed:
            raise RuntimeError(f"flush on freed tensor {self.tag}")
        if self.lost:
            raise TensorLostError(self)
        yield from self.lib._move_payload(
            self, src=self.lib.gpu, dst=self._device, nbytes=nbytes, pieces=pieces
        )
        self.flush_count += 1

    def free(self) -> None:
        """Release the tensor everywhere.  Idempotent."""
        if self.freed:
            return
        self.lib._free_tensor(self)
        self.location = Location.FREED
        self._device = None

    def __repr__(self) -> str:
        where = getattr(self._device, "name", self.location.value)
        return f"<AquaTensor {self.tag} {self.nbytes}B at {where}>"
