"""Per-server serving frontends the global router dispatches into.

A :class:`ServerFrontend` wraps one :class:`~repro.hardware.server.Server`
of a :class:`~repro.hardware.cluster.Cluster` and models it as a
fixed-concurrency LLM serving instance: up to ``concurrency`` requests
decode simultaneously (the engine's batch slots); the rest wait in a
FIFO queue.  Service times come from the same
:class:`~repro.models.llm.LLMSpec` rooflines the figure-level engines
use — a compute-bound prefill followed by memory-bound decode steps
whose pace degrades with the number of co-resident sequences — so the
cluster frontier inherits the paper's single-GPU cost model without
paying for per-token event simulation.  (Decode is coarsened into one
aggregate timeout per request, the same time-warp move the engine-level
``decode_coarsen`` knob makes; the frontier sweeps need it to make
millions-of-users offered loads tractable.)

Frontends never shed: admission is the router's job
(:mod:`repro.routing.admission`), so every request that reaches
:meth:`enqueue` is eventually served.  That split is what makes the
conservation law ``offered == routed + shed`` checkable at one place.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.models.llm import LLMSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.server import Server
    from repro.serving.request import Request
    from repro.sim import Environment


class ServerFrontend:
    """One server's admission queue plus fixed decode slots.

    Attributes
    ----------
    queue:
        Requests waiting for a decode slot (FIFO).
    active:
        Requests currently holding a slot.
    completed:
        Finished requests, completion order.
    tokens:
        Total tokens generated (prompt ingestion excluded).
    on_complete:
        Callbacks ``(frontend, request)`` fired at each completion —
        the router hooks these to feed its ledger and SLO tracker.
    """

    def __init__(
        self,
        env: "Environment",
        server: "Server",
        spec: LLMSpec,
        concurrency: int = 8,
        name: Optional[str] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.env = env
        self.server = server
        self.spec = spec
        #: Timing GPU: the server's first GPU (frontends model the whole
        #: server as one tensor-parallel serving instance).
        self.gpu_spec = server.gpus[0].spec
        self.concurrency = concurrency
        self.name = name or server.name
        self.queue: deque = deque()
        self.active = 0
        self.completed: list = []
        self.tokens = 0
        self.on_complete: list[Callable] = []

    @property
    def depth(self) -> int:
        """Backlog the router's queue-depth shedding compares against."""
        return len(self.queue) + self.active

    def enqueue(self, request: "Request") -> None:
        """Accept a routed request; serve it as soon as a slot frees."""
        self.queue.append(request)
        if self.active < self.concurrency:
            self._dispatch()

    def _dispatch(self) -> None:
        request = self.queue.popleft()
        self.active += 1
        self.env.process(self._serve(request))

    def _serve(self, request: "Request"):
        spec, gpu = self.spec, self.gpu_spec
        yield self.env.timeout(spec.prefill_time(gpu, request.prompt_tokens))
        request.first_token_time = self.env.now
        request.generated_tokens = 1
        steps = request.max_new_tokens - 1
        if steps > 0:
            # Decode pace at the *current* co-residency: more live
            # sequences stream more KV per step, so a loaded server
            # decodes slower — the graceful-degradation half of the
            # overload story (shedding is the other half).
            batch = self.active
            context = request.prompt_tokens + steps // 2
            step = spec.decode_step_time(gpu, batch, batch * context)
            yield self.env.timeout(steps * step)
        request.generated_tokens = request.max_new_tokens
        request.finish_time = self.env.now
        if request.on_finish is not None and not request.on_finish.triggered:
            request.on_finish.succeed(request)
        self.active -= 1
        self.tokens += request.max_new_tokens
        self.completed.append(request)
        for callback in self.on_complete:
            callback(self, request)
        if self.queue and self.active < self.concurrency:
            self._dispatch()

    def __repr__(self) -> str:
        return (
            f"<ServerFrontend {self.name} depth={self.depth} "
            f"active={self.active}/{self.concurrency} done={len(self.completed)}>"
        )
