"""The global request router and its conservation ledger.

:class:`GlobalRouter` is the cluster's front door: every request enters
through :meth:`submit`, where it is either **shed** (rate limit or
queue-full, with the reason recorded) or **routed** to one
:class:`~repro.routing.frontend.ServerFrontend` chosen by the active
:class:`~repro.routing.policies.RoutingPolicy`.  There is no third
outcome — the :class:`RequestLedger` holds the books to the same
standard as :mod:`repro.audit` holds byte accounting::

    offered == routed + shed            (total and per tenant)
    completed <= routed                 (frontends never invent work)

and hashes every event into a running SHA-256 digest, so two runs that
routed identically can prove it with one string compare.

The router is pure control plane: it never advances simulation time and
never touches engine state, so importing (or even constructing) it
around a single-server figure rig leaves the audited event stream
byte-identical — ``tests/test_determinism_golden.py`` pins that down.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.audit import AuditViolation
from repro.routing.admission import SHED_REASONS, AdmissionController
from repro.routing.policies import RoutingPolicy, SLOAwarePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.frontend import ServerFrontend
    from repro.serving.request import Request
    from repro.sim import Environment
    from repro.telemetry.slo import SLOTracker

#: Default tenant for untagged traffic.
DEFAULT_TENANT = "default"


class RequestLedger:
    """Shed-aware conservation books for the router.

    Every submission lands in exactly one bucket (routed, or shed with
    a reason); :meth:`check` verifies the conservation law and
    :attr:`digest` commits the full event sequence.  ``listeners``
    receive every event tuple ``(kind, tenant, detail)`` — the property
    suite uses one to keep an independent shadow ledger.
    """

    def __init__(self) -> None:
        self.offered = 0
        self.routed = 0
        self.completed = 0
        self.shed: dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        self.per_tenant: dict[str, dict] = {}
        self.listeners: list[Callable[[str, str, str], None]] = []
        self._hash = hashlib.sha256()

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def digest(self) -> str:
        """SHA-256 over the ledger's event sequence so far."""
        return self._hash.hexdigest()

    def _tenant(self, tenant: str) -> dict:
        books = self.per_tenant.get(tenant)
        if books is None:
            books = {
                "offered": 0,
                "routed": 0,
                "completed": 0,
                "shed": {reason: 0 for reason in SHED_REASONS},
            }
            self.per_tenant[tenant] = books
        return books

    def _event(self, kind: str, tenant: str, detail: str) -> None:
        self._hash.update(f"{kind}|{tenant}|{detail}\n".encode("utf-8"))
        for listener in self.listeners:
            listener(kind, tenant, detail)

    def record_offered(self, tenant: str, request: "Request") -> None:
        self.offered += 1
        self._tenant(tenant)["offered"] += 1
        self._event("offered", tenant, str(request.req_id))

    def record_routed(self, tenant: str, request: "Request", frontend: str) -> None:
        self.routed += 1
        self._tenant(tenant)["routed"] += 1
        self._event("routed", tenant, f"{request.req_id}->{frontend}")

    def record_shed(self, tenant: str, request: "Request", reason: str) -> None:
        if reason not in self.shed:
            raise ValueError(f"unknown shed reason {reason!r}")
        self.shed[reason] += 1
        self._tenant(tenant)["shed"][reason] += 1
        self._event("shed", tenant, f"{request.req_id}:{reason}")

    def record_completed(self, tenant: str, request: "Request", frontend: str) -> None:
        self.completed += 1
        self._tenant(tenant)["completed"] += 1
        self._event("completed", tenant, f"{request.req_id}@{frontend}")

    # ------------------------------------------------------------------
    def check(self, now: float = 0.0) -> list[AuditViolation]:
        """Conservation violations (empty list means the books balance)."""
        violations = []

        def law(subject: str, ok: bool, message: str) -> None:
            if not ok:
                violations.append(
                    AuditViolation(
                        law="request-conservation",
                        subject=subject,
                        message=message,
                        time=now,
                    )
                )

        law(
            "router",
            self.offered == self.routed + self.shed_total,
            f"offered ({self.offered}) != routed ({self.routed}) "
            f"+ shed ({self.shed_total})",
        )
        law(
            "router",
            self.completed <= self.routed,
            f"completed ({self.completed}) > routed ({self.routed})",
        )
        for tenant, books in self.per_tenant.items():
            shed = sum(books["shed"].values())
            law(
                f"tenant:{tenant}",
                books["offered"] == books["routed"] + shed,
                f"offered ({books['offered']}) != routed ({books['routed']}) "
                f"+ shed ({shed})",
            )
            law(
                f"tenant:{tenant}",
                books["completed"] <= books["routed"],
                f"completed ({books['completed']}) > routed ({books['routed']})",
            )
        totals = {
            "offered": self.offered,
            "routed": self.routed,
            "completed": self.completed,
        }
        for key, total in totals.items():
            per_tenant = sum(
                books[key] for books in self.per_tenant.values()
            )
            law(
                "router",
                per_tenant == total,
                f"per-tenant {key} sum ({per_tenant}) != total ({total})",
            )
        return violations

    def report(self, now: float = 0.0) -> dict:
        """JSON-safe snapshot: totals, per-tenant books, digest, verdict."""
        violations = self.check(now)
        return {
            "offered": self.offered,
            "routed": self.routed,
            "completed": self.completed,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "per_tenant": {
                tenant: {
                    "offered": books["offered"],
                    "routed": books["routed"],
                    "completed": books["completed"],
                    "shed": dict(books["shed"]),
                }
                for tenant, books in self.per_tenant.items()
            },
            "digest": self.digest,
            "ok": not violations,
            "violations": [str(v) for v in violations],
        }


class GlobalRouter:
    """Routes requests across a cluster's server frontends.

    Parameters
    ----------
    env:
        Simulation environment (admission reads its clock).
    frontends:
        The per-server :class:`~repro.routing.frontend.ServerFrontend`
        targets, index order fixed for the run.
    policy:
        The placement policy.
    admission:
        Admission controller; defaults to depth-only shedding with the
        most permissive tenant class.
    tracker:
        Optional :class:`~repro.telemetry.slo.SLOTracker`.  When given,
        every completion is judged against matching objectives (keyed
        by the frontend's name as the engine label) and, if the policy
        is SLO-aware, its scores refresh on :meth:`scrape`.
    """

    def __init__(
        self,
        env: "Environment",
        frontends: Sequence["ServerFrontend"],
        policy: RoutingPolicy,
        admission: Optional[AdmissionController] = None,
        tracker: Optional["SLOTracker"] = None,
    ) -> None:
        if not frontends:
            raise ValueError("router needs at least one frontend")
        self.env = env
        self.frontends = list(frontends)
        self.policy = policy
        self.admission = admission or AdmissionController()
        self.tracker = tracker
        self.ledger = RequestLedger()
        self._tenant_of: dict[int, str] = {}
        for frontend in self.frontends:
            frontend.on_complete.append(self._on_complete)

    # ------------------------------------------------------------------
    def submit(self, request: "Request", tenant: str = DEFAULT_TENANT) -> Optional[int]:
        """Offer one request; returns the frontend index or ``None`` if shed.

        The decision sequence is fixed: rate limit first (cheapest, and
        a rate-shed request must not consume queue space), then policy
        choice, then queue-depth check with one policy fallback attempt.
        """
        ledger = self.ledger
        ledger.record_offered(tenant, request)
        now = self.env.now
        reason = self.admission.check_rate(tenant, now)
        if reason is not None:
            ledger.record_shed(tenant, request, reason)
            return None
        chosen = self.policy.choose(request, tenant, self.frontends)
        reason = self.admission.check_depth(tenant, self.frontends[chosen].depth)
        if reason is not None:
            alternative = self.policy.fallback(
                request, tenant, self.frontends, chosen
            )
            if alternative is None or self.admission.check_depth(
                tenant, self.frontends[alternative].depth
            ):
                ledger.record_shed(tenant, request, reason)
                return None
            chosen = alternative
        frontend = self.frontends[chosen]
        self._tenant_of[request.req_id] = tenant
        ledger.record_routed(tenant, request, frontend.name)
        frontend.enqueue(request)
        return chosen

    def _on_complete(self, frontend: "ServerFrontend", request: "Request") -> None:
        tenant = self._tenant_of.pop(request.req_id, DEFAULT_TENANT)
        self.ledger.record_completed(tenant, request, frontend.name)
        if self.tracker is not None:
            self.tracker.observe_request(frontend.name, request)

    # ------------------------------------------------------------------
    def scrape(self, now: Optional[float] = None) -> None:
        """One observation tick: SLO evaluation + policy score refresh."""
        if now is None:
            now = self.env.now
        if self.tracker is not None:
            self.tracker.on_scrape(now)
        self.policy.refresh(now)

    def scrape_loop(self, interval: float = 1.0):
        """Simulation process running :meth:`scrape` every ``interval``."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        while True:
            yield self.env.timeout(interval)
            self.scrape(self.env.now)

    def check(self) -> list[AuditViolation]:
        return self.ledger.check(self.env.now)

    def report(self) -> dict:
        return self.ledger.report(self.env.now)

    def __repr__(self) -> str:
        slo = " +slo" if isinstance(self.policy, SLOAwarePolicy) else ""
        return (
            f"<GlobalRouter {self.policy.name}{slo} "
            f"frontends={len(self.frontends)} offered={self.ledger.offered} "
            f"shed={self.ledger.shed_total}>"
        )
