"""Pluggable routing policies for the global request router.

A policy answers exactly one question — *which server frontend should
take this request?* — and must answer it **deterministically**: the
frontier sweeps are byte-identical across serial, ``--jobs N`` and
warm-cache replay only if routing is a pure function of the arrival
sequence.  That rules out Python's seeded ``hash()`` for placement
(session affinity uses SHA-256 instead) and any randomised tie-break
(ties always resolve to the lowest frontend index).

Policies
--------
``round-robin``
    Cycle through frontends in index order, load-blind.
``least-loaded``
    Send to the frontend with the smallest backlog; ties break to the
    lowest index.
``session-affinity``
    Pin each user to a home frontend (sticky SHA-256 placement) so
    multi-turn KV/prefix state stays warm; when the home queue is full,
    the request reroutes to the least-loaded alternative while the home
    mapping itself stays stable.
``slo-aware``
    Prefer the frontend with the best recent per-server TTFT
    attainment, read from the PR 8 :class:`~repro.telemetry.slo.SLOTracker`
    at scrape ticks (scores are cached between ticks, so routing stays
    O(servers) per request).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.frontend import ServerFrontend
    from repro.serving.request import Request
    from repro.telemetry.slo import SLOTracker


def _least_loaded_index(frontends: Sequence["ServerFrontend"]) -> int:
    """Smallest backlog wins; equal backlogs break to the lowest index."""
    return min(range(len(frontends)), key=lambda i: (frontends[i].depth, i))


def stable_home(user: object, n: int) -> int:
    """Deterministic user → frontend placement.

    SHA-256 of the user id, not ``hash()``: Python string hashing is
    randomised per process, which would make routing — and every cached
    frontier cell — irreproducible.
    """
    digest = hashlib.sha256(str(user).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n


class RoutingPolicy:
    """Base class: ``choose`` a frontend, optionally ``fallback``."""

    name = "base"

    def choose(
        self,
        request: "Request",
        tenant: str,
        frontends: Sequence["ServerFrontend"],
    ) -> int:
        raise NotImplementedError

    def fallback(
        self,
        request: "Request",
        tenant: str,
        frontends: Sequence["ServerFrontend"],
        chosen: int,
    ) -> Optional[int]:
        """Second chance after a queue-full verdict on ``chosen``.

        Return an alternative frontend index, or ``None`` to shed.  The
        default is to shed: most policies already picked the best queue.
        """
        return None

    def refresh(self, now: float) -> None:
        """Scrape-tick hook (only the SLO-aware policy uses it)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through frontends in index order, ignoring load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request, tenant, frontends):
        idx = self._next % len(frontends)
        self._next = (idx + 1) % len(frontends)
        return idx


class LeastLoadedPolicy(RoutingPolicy):
    """Join the shortest queue; deterministic lowest-index tie-break."""

    name = "least-loaded"

    def choose(self, request, tenant, frontends):
        return _least_loaded_index(frontends)


class SessionAffinityPolicy(RoutingPolicy):
    """Sticky per-user placement with least-loaded overflow.

    The first request from a user fixes its *home* frontend via
    :func:`stable_home`; every later request goes home too, keeping
    multi-turn KV/prefix state on one server.  Userless requests fall
    back to least-loaded.  When the home queue is full the request is
    rerouted (see :meth:`fallback`) but the home mapping is **not**
    rewritten — affinity survives reroutes, which is exactly the
    stability property ``tests/test_routing_properties.py`` pins down.
    """

    name = "session-affinity"

    def __init__(self) -> None:
        self._home: dict = {}

    def home_of(self, user: object) -> Optional[int]:
        """The user's pinned frontend index, if one exists (diagnostic)."""
        return self._home.get(user)

    def choose(self, request, tenant, frontends):
        if request.user is None:
            return _least_loaded_index(frontends)
        home = self._home.get(request.user)
        if home is None:
            home = stable_home(request.user, len(frontends))
            self._home[request.user] = home
        return home

    def fallback(self, request, tenant, frontends, chosen):
        """Overflow to the least-loaded *other* frontend, home unchanged."""
        if len(frontends) == 1:
            return None
        alternatives = [i for i in range(len(frontends)) if i != chosen]
        return min(alternatives, key=lambda i: (frontends[i].depth, i))


class SLOAwarePolicy(RoutingPolicy):
    """Route to the frontend with the best recent TTFT attainment.

    Wraps the PR 8 :class:`~repro.telemetry.slo.SLOTracker`: the router
    registers one per-server TTFT objective per frontend (named
    ``ttft:<server>``), and this policy reads their windowed attainment.
    Scores are recomputed only at scrape ticks (:meth:`refresh`) — the
    tracker's attainment scan walks its outcome deque, so doing it per
    request would be quadratic in offered load.  A server with no
    recent outcomes scores a neutral 1.0 (no evidence against it).
    Ties break least-loaded, then lowest index, so the policy degrades
    to least-loaded when every server is meeting its SLO.
    """

    name = "slo-aware"

    def __init__(
        self,
        tracker: "SLOTracker",
        objective_names: Sequence[str],
        window_s: float = 10.0,
    ) -> None:
        self.tracker = tracker
        self.objective_names = list(objective_names)
        self.window_s = window_s
        self._scores: list = [1.0] * len(self.objective_names)

    @property
    def scores(self) -> list:
        """Per-frontend attainment scores as of the last scrape tick."""
        return list(self._scores)

    def refresh(self, now: float) -> None:
        scores = []
        for name in self.objective_names:
            attainment = self.tracker.attainment(name, self.window_s, now)
            scores.append(1.0 if attainment is None else attainment)
        self._scores = scores

    def choose(self, request, tenant, frontends):
        return min(
            range(len(frontends)),
            key=lambda i: (-self._scores[i], frontends[i].depth, i),
        )


#: Policy registry: the ``aqua-repro frontier --policies`` vocabulary.
#: ``slo-aware`` needs a tracker, so the router constructs it specially;
#: the factories here cover the tracker-free policies.
POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    SessionAffinityPolicy.name: SessionAffinityPolicy,
    SLOAwarePolicy.name: SLOAwarePolicy,
}

POLICY_NAMES = tuple(POLICIES)


def make_policy(name: str, **kwargs) -> RoutingPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; known: {', '.join(POLICIES)}"
        ) from None
    return factory(**kwargs)
