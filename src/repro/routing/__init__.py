"""Cluster-scale request routing: policies, admission, load shedding.

This package is the control plane the ROADMAP's planet-scale north star
needs on top of :mod:`repro.hardware.cluster`: a
:class:`~repro.routing.router.GlobalRouter` places every incoming
request onto one per-server
:class:`~repro.routing.frontend.ServerFrontend` using a pluggable
:class:`~repro.routing.policies.RoutingPolicy`, and an
:class:`~repro.routing.admission.AdmissionController` sheds what the
cluster cannot absorb — explicitly, with a reason, under the
conservation law ``offered == routed + shed`` that the
:class:`~repro.routing.router.RequestLedger` enforces in the same
spirit as the byte-accounting audits in :mod:`repro.audit`.

Everything is deterministic by construction (no seeded ``hash()``, no
wall clock, lowest-index tie-breaks), which is what lets the
``aqua-repro frontier`` sweep fan cells out through the experiment pool
and replay them byte-identically from the run cache.  See
``docs/frontier.md`` for the policy and overload semantics.
"""

from repro.routing.admission import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    SHED_REASONS,
    AdmissionController,
    TenantClass,
    TokenBucket,
)
from repro.routing.frontend import ServerFrontend
from repro.routing.policies import (
    POLICIES,
    POLICY_NAMES,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    SessionAffinityPolicy,
    SLOAwarePolicy,
    make_policy,
    stable_home,
)
from repro.routing.router import DEFAULT_TENANT, GlobalRouter, RequestLedger

__all__ = [
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMIT",
    "SHED_REASONS",
    "AdmissionController",
    "TenantClass",
    "TokenBucket",
    "ServerFrontend",
    "POLICIES",
    "POLICY_NAMES",
    "LeastLoadedPolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "SessionAffinityPolicy",
    "SLOAwarePolicy",
    "make_policy",
    "stable_home",
    "DEFAULT_TENANT",
    "GlobalRouter",
    "RequestLedger",
]
