"""Admission control and load shedding for the global request router.

Overload is a *policy* decision, not an accident: when offered load
exceeds cluster capacity, something must give, and the router makes it
give **explicitly**.  A request that cannot be served is *shed* — it is
counted in the router's conservation ledger with a reason, it is never
silently dropped.  Two mechanisms gate admission:

**token-bucket rate limits**
    Each tenant may carry an optional ``(rate, burst)`` token bucket —
    the classic shape-then-shed limiter.  Buckets refill on the
    *simulation* clock, so admission decisions are a pure function of
    the arrival sequence and therefore deterministic.

**queue-depth shedding with per-tenant priorities**
    The chosen server's backlog (queued + in service) is compared to
    the tenant's *effective* depth limit.  Priority 0 (interactive)
    tenants may fill the whole queue; each lower priority level halves
    the depth it may occupy (``limit >> priority``), so batch and
    background traffic is shed first as queues build — strict priority
    shedding without preemption.

Both decisions are made at submission time by
:class:`~repro.routing.router.GlobalRouter`; this module only answers
"may this request enter?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Shed reasons recorded in the router's conservation ledger.
SHED_RATE_LIMIT = "rate-limit"
SHED_QUEUE_FULL = "queue-full"
SHED_REASONS = (SHED_RATE_LIMIT, SHED_QUEUE_FULL)


class TokenBucket:
    """A deterministic token bucket on the simulation clock.

    ``rate`` tokens/s refill continuously up to ``burst`` capacity;
    each admitted request spends one token.  The bucket starts full.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    @property
    def tokens(self) -> float:
        """Tokens available at the last refill point (diagnostic)."""
        return self._tokens

    def allow(self, now: float) -> bool:
        """Spend one token if available; refills for elapsed sim time."""
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TenantClass:
    """Admission parameters for one tenant.

    Parameters
    ----------
    name:
        Tenant identifier (ledger key).
    priority:
        0 is highest.  Each level halves the queue depth the tenant may
        occupy, so lower-priority traffic sheds first under overload.
    rate_limit:
        Optional token-bucket refill rate (requests/s).  ``None``
        disables rate limiting for the tenant.
    burst:
        Token-bucket capacity when ``rate_limit`` is set.
    """

    name: str
    priority: int = 0
    rate_limit: Optional[float] = None
    burst: float = 16.0

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")


class AdmissionController:
    """Per-tenant token buckets plus priority-scaled depth limits.

    Unknown tenants get a default :class:`TenantClass` (priority 0, no
    rate limit) so the router never crashes on new traffic — it just
    applies the most permissive class.
    """

    def __init__(
        self,
        tenants: Optional[list[TenantClass]] = None,
        max_queue_depth: int = 32,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.max_queue_depth = max_queue_depth
        self.classes: dict[str, TenantClass] = {
            t.name: t for t in (tenants or [])
        }
        self._buckets: dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate_limit, t.burst)
            for t in (tenants or [])
            if t.rate_limit is not None
        }

    def tenant_class(self, tenant: str) -> TenantClass:
        cls = self.classes.get(tenant)
        if cls is None:
            cls = TenantClass(name=tenant)
            self.classes[tenant] = cls
        return cls

    def depth_limit(self, tenant: str) -> int:
        """Effective queue-depth limit: halved per priority level."""
        priority = self.tenant_class(tenant).priority
        return max(1, self.max_queue_depth >> priority)

    def check_rate(self, tenant: str, now: float) -> Optional[str]:
        """Token-bucket verdict: ``None`` to admit, else a shed reason."""
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.allow(now):
            return SHED_RATE_LIMIT
        return None

    def check_depth(self, tenant: str, depth: int) -> Optional[str]:
        """Queue-depth verdict against the tenant's effective limit."""
        if depth >= self.depth_limit(tenant):
            return SHED_QUEUE_FULL
        return None
