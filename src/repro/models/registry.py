"""Model registry and resource-contention classification.

The paper's rule of thumb (§2.1, §4): text generators are memory-bound;
image and audio generators are compute-bound.  AQUA-PLACER consumes
this classification (refined by workload-specific memory deficits) to
pair memory consumers with producers.
"""

from __future__ import annotations

from enum import Enum
from typing import Union

from repro.models.audio import AUDIOGEN, MUSICGEN, AudioModelSpec
from repro.models.diffusion import KANDINSKY, SD_15, SD_XL, DiffusionSpec
from repro.models.llm import (
    CODELLAMA_34B,
    LLAMA2_13B,
    LLMSpec,
    MISTRAL_7B,
    OPT_30B,
)

ModelSpec = Union[LLMSpec, DiffusionSpec, AudioModelSpec]


class BoundKind(str, Enum):
    """Which GPU resource bottlenecks a model's inference throughput."""

    MEMORY = "memory-bound"
    COMPUTE = "compute-bound"


#: The eight state-of-the-art generative models hosted in the evaluation.
ALL_MODELS: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        OPT_30B,
        LLAMA2_13B,
        MISTRAL_7B,
        CODELLAMA_34B,
        SD_15,
        SD_XL,
        KANDINSKY,
        AUDIOGEN,
        MUSICGEN,
    )
}


def get_model(name: str) -> ModelSpec:
    """Look up a model preset by name.

    Raises
    ------
    KeyError
        With the list of known models if the name is unknown.
    """
    try:
        return ALL_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_MODELS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def classify(model: ModelSpec) -> BoundKind:
    """Default resource classification by modality (§2.1)."""
    if isinstance(model, LLMSpec):
        return BoundKind.MEMORY
    return BoundKind.COMPUTE


def is_memory_bound(model: ModelSpec) -> bool:
    return classify(model) is BoundKind.MEMORY


def is_compute_bound(model: ModelSpec) -> bool:
    return classify(model) is BoundKind.COMPUTE
