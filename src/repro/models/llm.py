"""Transformer LLM performance model.

Decode (one token for every sequence in the batch) is memory-bound on
modern GPUs: every step must stream the full weights plus the KV cache
of all live sequences through HBM.  Prefill (ingesting the prompt) is
compute-bound: ~2 FLOPs per parameter per token.  Both regimes are
captured by a max(memory-time, compute-time) roofline, which is what
makes LLM inference memory-bound in the paper's sense (§2.2) — the
number of concurrent sequences is limited by KV-cache space, not FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

from repro.hardware.specs import GPUSpec

#: Bytes per value for FP16/BF16 inference.
FP16_BYTES = 2


@dataclass(frozen=True)
class LLMSpec:
    """Architecture and derived cost model of one decoder-only LLM.

    Attributes
    ----------
    name:
        Model identifier (matches the paper's Tables 1-2).
    n_params:
        Total parameter count.
    n_layers, n_heads, n_kv_heads, head_dim:
        Transformer geometry.  ``n_kv_heads < n_heads`` models
        grouped-query attention (Mistral, CodeLlama), which shrinks the
        KV cache.
    max_context:
        Maximum sequence length the model supports.
    dtype_bytes:
        Bytes per weight/KV element (2 for FP16).
    n_active_params:
        Parameters touched per token.  Equal to ``n_params`` for dense
        models; smaller for mixture-of-experts models (e.g. Mixtral
        activates 2 of 8 experts per token), which makes small-batch
        decode read far less than the full weights.
    """

    name: str
    n_params: float
    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    max_context: int = 4096
    dtype_bytes: int = FP16_BYTES
    n_active_params: float = 0.0  # 0 means dense: all parameters active

    def __post_init__(self) -> None:
        if self.n_kv_heads > self.n_heads:
            raise ValueError("n_kv_heads cannot exceed n_heads")
        if min(self.n_layers, self.n_heads, self.n_kv_heads, self.head_dim) < 1:
            raise ValueError("transformer geometry values must be >= 1")
        if self.n_active_params < 0 or self.n_active_params > self.n_params:
            raise ValueError("n_active_params must be in [0, n_params]")
        if self.n_active_params == 0:
            object.__setattr__(self, "n_active_params", self.n_params)

    @property
    def is_moe(self) -> bool:
        """Whether this is a mixture-of-experts model."""
        return self.n_active_params < self.n_params

    def weight_read_fraction(self, batch_size: int) -> float:
        """Fraction of the weights one decode step must stream from HBM.

        Dense models always read everything.  An MoE batch of one
        touches only the active experts; as the batch grows, different
        tokens route to different experts and the read approaches the
        full weights.
        """
        if not self.is_moe:
            return 1.0
        active_fraction = self.n_active_params / self.n_params
        return min(1.0, active_fraction * max(1, batch_size))

    # ------------------------------------------------------------------
    # Memory footprint
    # ------------------------------------------------------------------
    # cached_property on a frozen dataclass writes straight to __dict__,
    # bypassing the frozen __setattr__; these are read on every simulated
    # iteration and allocator decision.
    @cached_property
    def hidden_dim(self) -> int:
        return self.n_heads * self.head_dim

    @cached_property
    def weight_bytes(self) -> int:
        """Bytes of HBM consumed by the model weights."""
        return int(self.n_params * self.dtype_bytes)

    @cached_property
    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache for one token across all layers (K and V)."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * self.dtype_bytes

    def kv_bytes(self, n_tokens: int) -> int:
        """KV-cache bytes for a sequence of ``n_tokens``."""
        if n_tokens < 0:
            raise ValueError(f"negative token count {n_tokens}")
        return self.kv_bytes_per_token * n_tokens

    def activation_workspace_bytes(self, batch_tokens: int = 2048) -> int:
        """Scratch memory the serving engine must keep free for activations.

        Covers the live activation tensors of a prefill chunk: residual
        stream, attention inputs/outputs, the 4x-hidden MLP intermediate
        and attention scratch.  Engines size this for the largest prompt
        they admit.
        """
        per_token = 96 * self.hidden_dim * self.dtype_bytes
        return int(per_token * batch_tokens)

    def free_kv_bytes(
        self,
        gpu: GPUSpec,
        workspace_tokens: int = 2048,
        utilization: float = 0.9,
    ) -> int:
        """HBM bytes a serving engine can devote to KV cache.

        Mirrors real engines (e.g. vLLM's ``gpu_memory_utilization``):
        only a fraction of HBM is usable, and weights plus activation
        workspace come out of it first.  May be negative when the model
        plus workspace already exceed the budget.
        """
        budget = int(gpu.hbm_bytes * utilization)
        return budget - self.weight_bytes - self.activation_workspace_bytes(
            workspace_tokens
        )

    # ------------------------------------------------------------------
    # Timing rooflines
    # ------------------------------------------------------------------
    def prefill_time(self, gpu: GPUSpec, n_tokens: int) -> float:
        """Seconds to ingest a prompt of ``n_tokens`` (compute-bound)."""
        if n_tokens < 0:
            raise ValueError(f"negative token count {n_tokens}")
        if n_tokens == 0:
            return 0.0
        return _prefill_time(self, gpu, n_tokens)

    def decode_step_time(
        self, gpu: GPUSpec, batch_size: int, context_tokens: int
    ) -> float:
        """Seconds for one decode iteration.

        Parameters
        ----------
        batch_size:
            Number of sequences generating one token each.
        context_tokens:
            Total tokens of KV cache that must be read this step
            (summed across the batch).
        """
        if batch_size < 0 or context_tokens < 0:
            raise ValueError("batch_size and context_tokens must be >= 0")
        if batch_size == 0:
            return 0.0
        weight_read, compute, overhead = _decode_coeffs(self, gpu, batch_size)
        memory = (
            weight_read + self.kv_bytes_per_token * context_tokens
        ) / gpu.effective_hbm_bandwidth
        return max(memory, compute) + overhead

    def decode_throughput(
        self, gpu: GPUSpec, batch_size: int, avg_context_tokens: float
    ) -> float:
        """Steady-state tokens/second for a fixed batch."""
        step = self.decode_step_time(
            gpu, batch_size, int(batch_size * avg_context_tokens)
        )
        return batch_size / step if step > 0 else 0.0

    def max_batch_by_memory(
        self, gpu: GPUSpec, avg_tokens_per_seq: float, reserve_bytes: int = 0
    ) -> int:
        """Largest batch whose KV cache fits in free HBM after weights."""
        free = gpu.hbm_bytes - self.weight_bytes - reserve_bytes
        if free <= 0:
            return 0
        per_seq = self.kv_bytes_per_token * avg_tokens_per_seq
        return int(free // per_seq) if per_seq > 0 else 0

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Roofline caches
# ---------------------------------------------------------------------------
# Engines evaluate the rooflines every simulated iteration, but the
# inputs repeat heavily: a (model, GPU, batch) triple pins the decode
# coefficients, and prompt lengths come from finite traces.  Specs are
# frozen dataclasses, hence hashable.  The expressions below must stay
# term-for-term identical to the pre-cache formulas — the determinism
# golden digest folds these floats via repr().


@lru_cache(maxsize=4096)
def _decode_coeffs(
    spec: LLMSpec, gpu: GPUSpec, batch_size: int
) -> tuple[float, float, float]:
    """(weight_read bytes, compute seconds, overhead seconds) for decode."""
    weight_read = spec.weight_bytes * spec.weight_read_fraction(batch_size)
    compute = 2.0 * spec.n_active_params * batch_size / gpu.effective_flops
    overhead = spec.n_layers * gpu.kernel_overhead
    return weight_read, compute, overhead


@lru_cache(maxsize=4096)
def _prefill_time(spec: LLMSpec, gpu: GPUSpec, n_tokens: int) -> float:
    linear_flops = 2.0 * spec.n_active_params * n_tokens
    # Attention score/context matmuls grow quadratically with length.
    attn_flops = 4.0 * spec.n_layers * spec.hidden_dim * float(n_tokens) ** 2
    compute = (linear_flops + attn_flops) / gpu.effective_flops
    # Prefill must still stream the weights at least once.
    memory = spec.weight_bytes / gpu.effective_hbm_bandwidth
    return max(compute, memory) + spec.n_layers * gpu.kernel_overhead


# ---------------------------------------------------------------------------
# Presets: the LLMs evaluated in the paper (Tables 1 and 2)
# ---------------------------------------------------------------------------
OPT_30B = LLMSpec(
    name="OPT-30B",
    n_params=30.0e9,
    n_layers=48,
    n_heads=56,
    n_kv_heads=56,
    head_dim=128,
    max_context=2048,
)

LLAMA2_13B = LLMSpec(
    name="Llama-2-13B",
    n_params=13.0e9,
    n_layers=40,
    n_heads=40,
    n_kv_heads=40,
    head_dim=128,
    max_context=4096,
)

MISTRAL_7B = LLMSpec(
    name="Mistral-7B",
    n_params=7.24e9,
    n_layers=32,
    n_heads=32,
    n_kv_heads=8,
    head_dim=128,
    max_context=8192,
)

CODELLAMA_34B = LLMSpec(
    name="CodeLlama-34B",
    n_params=34.0e9,
    n_layers=48,
    n_heads=64,
    n_kv_heads=8,
    head_dim=128,
    max_context=16384,
)

#: Mixtral 8x7B (cited by the paper as a large MoE): 46.7B parameters
#: total, ~12.9B active per token (top-2 of 8 experts).  Its FP16
#: weights exceed one A100-80G, so hosting it single-GPU requires a
#: larger-memory part or quantization — included for the MoE roofline.
MIXTRAL_8X7B = LLMSpec(
    name="Mixtral-8x7B",
    n_params=46.7e9,
    n_layers=32,
    n_heads=32,
    n_kv_heads=8,
    head_dim=128,
    max_context=32768,
    n_active_params=12.9e9,
)
