"""Diffusion (image generation) performance model.

Image generators run a fixed number of denoising steps, each a dense
convolution/attention stack: throughput scales with batch size until
the GPU's FLOPs are saturated and then plateaus, with tens of GB of
HBM still free (paper Figure 2b).  That compute-bound profile is what
makes these models ideal *memory producers* for AQUA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import GiB, GPUSpec


@dataclass(frozen=True)
class DiffusionSpec:
    """Cost model for one latent-diffusion image generator.

    Attributes
    ----------
    name:
        Model identifier (SD, SD-XL, Kandinsky in the paper's Table 3).
    weight_bytes:
        HBM held by the UNet + text encoder + VAE in FP16.
    denoise_steps:
        Scheduler steps per image.
    flops_per_step_per_image:
        Dense FLOPs of one UNet evaluation for one image.
    activation_bytes_per_image:
        Peak activation memory per concurrent image in a batch.
    """

    name: str
    weight_bytes: int
    denoise_steps: int
    flops_per_step_per_image: float
    activation_bytes_per_image: int

    def batch_time(self, gpu: GPUSpec, batch_size: int) -> float:
        """Seconds to generate ``batch_size`` images together."""
        if batch_size < 0:
            raise ValueError(f"negative batch size {batch_size}")
        if batch_size == 0:
            return 0.0
        per_step = (
            gpu.kernel_overhead * 40  # scheduler + UNet launch overheads
            + batch_size * self.flops_per_step_per_image / gpu.effective_flops
        )
        return self.denoise_steps * per_step

    def throughput(self, gpu: GPUSpec, batch_size: int) -> float:
        """Images per second at a given batch size."""
        t = self.batch_time(gpu, batch_size)
        return batch_size / t if t > 0 else 0.0

    def memory_used(self, batch_size: int) -> int:
        """HBM bytes needed to run a batch of this size."""
        if batch_size < 0:
            raise ValueError(f"negative batch size {batch_size}")
        return self.weight_bytes + batch_size * self.activation_bytes_per_image

    def free_memory(self, gpu: GPUSpec, batch_size: int) -> int:
        """HBM left over while running a batch of this size."""
        return max(0, gpu.hbm_bytes - self.memory_used(batch_size))

    def peak_throughput_batch(self, gpu: GPUSpec, max_batch: int = 64) -> int:
        """Smallest batch achieving ~97% of the throughput plateau.

        The paper picks a batch "anywhere on the plateau" to maximize
        free memory; this mirrors that choice.
        """
        best = self.throughput(gpu, max_batch)
        for batch in range(1, max_batch + 1):
            if self.memory_used(batch) > gpu.hbm_bytes:
                return max(1, batch - 1)
            if self.throughput(gpu, batch) >= 0.97 * best:
                return batch
        return max_batch

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Presets (FP16 weights; FLOPs from published UNet sizes at 512px/1024px)
# ---------------------------------------------------------------------------
SD_15 = DiffusionSpec(
    name="StableDiffusion-1.5",
    weight_bytes=int(4 * GiB),
    denoise_steps=50,
    flops_per_step_per_image=0.7e12,
    activation_bytes_per_image=int(0.8 * GiB),
)

SD_XL = DiffusionSpec(
    name="StableDiffusion-XL",
    weight_bytes=int(7 * GiB),
    denoise_steps=50,
    flops_per_step_per_image=3.0e12,
    activation_bytes_per_image=int(1.6 * GiB),
)

KANDINSKY = DiffusionSpec(
    name="Kandinsky-2.2",
    weight_bytes=int(6 * GiB),
    denoise_steps=50,
    flops_per_step_per_image=1.5e12,
    activation_bytes_per_image=int(1.2 * GiB),
)
