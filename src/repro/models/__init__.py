"""Analytic performance models of the generative models the paper serves.

The paper's experiments (§2.1) classify generative models by the
resource that bottlenecks inference: LLMs are *memory-bound* (their KV
cache grows with every token and competes with the weights for HBM),
while image and audio generators are *compute-bound* (throughput
plateaus with tens of GB of HBM to spare).  This package encodes each
evaluated model as an analytic roofline — weight bytes, KV bytes per
token, prefill and decode-step times on a given GPU — which is all the
serving-engine simulation needs.
"""

from repro.models.audio import AUDIOGEN, MUSICGEN, AudioModelSpec
from repro.models.diffusion import KANDINSKY, SD_15, SD_XL, DiffusionSpec
from repro.models.llm import (
    CODELLAMA_34B,
    LLAMA2_13B,
    LLMSpec,
    MISTRAL_7B,
    OPT_30B,
)
from repro.models.lora import LoRAAdapter, MTEB_ADAPTER, ZEPHYR_ADAPTER, synthesize_adapters
from repro.models.registry import (
    ALL_MODELS,
    BoundKind,
    get_model,
    is_compute_bound,
    is_memory_bound,
)

__all__ = [
    "ALL_MODELS",
    "AUDIOGEN",
    "AudioModelSpec",
    "BoundKind",
    "CODELLAMA_34B",
    "DiffusionSpec",
    "KANDINSKY",
    "LLAMA2_13B",
    "LLMSpec",
    "LoRAAdapter",
    "MISTRAL_7B",
    "MTEB_ADAPTER",
    "MUSICGEN",
    "OPT_30B",
    "SD_15",
    "SD_XL",
    "ZEPHYR_ADAPTER",
    "get_model",
    "is_compute_bound",
    "is_memory_bound",
    "synthesize_adapters",
]
