"""Audio generation (AudioGen / MusicGen) performance model.

Like diffusion models, the audio generators the paper evaluates are
compute-bound (Figure 2a): batched autoregressive generation over a
small-vocabulary audio-token LM saturates the GPU's FLOPs long before
its memory, leaving tens of GB of free HBM — making them natural
memory producers for AQUA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import GiB, GPUSpec


@dataclass(frozen=True)
class AudioModelSpec:
    """Cost model for one text-to-audio generator.

    Attributes
    ----------
    name:
        Model identifier (AudioGen / MusicGen in Table 3).
    weight_bytes:
        FP16 weights of the audio LM + codec.
    seconds_of_audio:
        Default clip length generated per request.
    audio_tokens_per_second:
        Discrete codec tokens per second of generated audio.
    flops_per_token_per_sample:
        FLOPs of one decode step for one sample in the batch.
    activation_bytes_per_sample:
        Peak per-sample activation + codec working set.
    """

    name: str
    weight_bytes: int
    seconds_of_audio: float
    audio_tokens_per_second: float
    flops_per_token_per_sample: float
    activation_bytes_per_sample: int

    @property
    def tokens_per_clip(self) -> int:
        return int(self.seconds_of_audio * self.audio_tokens_per_second)

    def batch_time(self, gpu: GPUSpec, batch_size: int) -> float:
        """Seconds to generate a batch of audio clips together."""
        if batch_size < 0:
            raise ValueError(f"negative batch size {batch_size}")
        if batch_size == 0:
            return 0.0
        per_token = (
            gpu.kernel_overhead * 20
            + batch_size * self.flops_per_token_per_sample / gpu.effective_flops
        )
        return self.tokens_per_clip * per_token

    def throughput(self, gpu: GPUSpec, batch_size: int) -> float:
        """Clips per second at a given batch size."""
        t = self.batch_time(gpu, batch_size)
        return batch_size / t if t > 0 else 0.0

    def memory_used(self, batch_size: int) -> int:
        if batch_size < 0:
            raise ValueError(f"negative batch size {batch_size}")
        return self.weight_bytes + batch_size * self.activation_bytes_per_sample

    def free_memory(self, gpu: GPUSpec, batch_size: int) -> int:
        return max(0, gpu.hbm_bytes - self.memory_used(batch_size))

    def peak_throughput_batch(self, gpu: GPUSpec, max_batch: int = 64) -> int:
        """Smallest batch reaching ~97% of the throughput plateau."""
        best = self.throughput(gpu, max_batch)
        for batch in range(1, max_batch + 1):
            if self.memory_used(batch) > gpu.hbm_bytes:
                return max(1, batch - 1)
            if self.throughput(gpu, batch) >= 0.97 * best:
                return batch
        return max_batch

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------
AUDIOGEN = AudioModelSpec(
    name="AudioGen",
    weight_bytes=int(3 * GiB),
    seconds_of_audio=5.0,
    audio_tokens_per_second=50.0,
    flops_per_token_per_sample=40e9,
    activation_bytes_per_sample=int(0.6 * GiB),
)

MUSICGEN = AudioModelSpec(
    name="MusicGen",
    weight_bytes=int(6 * GiB),
    seconds_of_audio=8.0,
    audio_tokens_per_second=50.0,
    flops_per_token_per_sample=60e9,
    activation_bytes_per_sample=int(0.8 * GiB),
)
