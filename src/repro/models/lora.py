"""LoRA adapters: memory-consuming per-request fine-tuning deltas.

Each inference request may name a LoRA adapter that must be resident in
GPU memory before its prompt can run (§2.2).  Adapters are hundreds of
megabytes (the paper uses Zephyr at ~320 MB and Mteb at ~160 MB) and a
serving engine caches only a few, so misses trigger loads over PCIe —
or over NVLink from a producer GPU with AQUA (Figures 8 and 12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.llm import FP16_BYTES, LLMSpec

MB = 10**6


@dataclass(frozen=True)
class LoRAAdapter:
    """One low-rank adaptation adapter.

    Attributes
    ----------
    name:
        Adapter identifier (unique within a workload).
    nbytes:
        Size of the adapter weights in bytes.
    rank:
        LoRA rank (informational; higher ranks need more bytes).
    """

    name: str
    nbytes: int
    rank: int = 16

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"adapter size must be positive, got {self.nbytes}")
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")

    @classmethod
    def for_model(
        cls, name: str, model: LLMSpec, rank: int, target_modules: int = 4
    ) -> "LoRAAdapter":
        """Derive the adapter size from the base model geometry.

        Each adapted projection contributes two rank-``r`` matrices of
        shape ``hidden x r`` per layer.
        """
        nbytes = (
            2 * rank * model.hidden_dim * model.n_layers * target_modules * FP16_BYTES
        )
        return cls(name=name, nbytes=nbytes, rank=rank)

    def __str__(self) -> str:
        return f"{self.name}({self.nbytes / MB:.0f}MB)"


#: The two most-downloaded public Mistral adapters used in §6 (sizes
#: from the paper: Zephyr ~320 MB, Mteb ~160 MB).
ZEPHYR_ADAPTER = LoRAAdapter(name="zephyr", nbytes=320 * MB, rank=64)
MTEB_ADAPTER = LoRAAdapter(name="mteb", nbytes=160 * MB, rank=32)


def synthesize_adapters(
    count: int, nbytes: int, prefix: str = "adapter"
) -> list[LoRAAdapter]:
    """Clone-style adapter synthesis, as the paper does for scale tests.

    The evaluation copies real adapters to reach 30-200 distinct
    adapters of a fixed size (§6, §7).
    """
    if count < 0:
        raise ValueError(f"negative adapter count {count}")
    rank = max(1, round(64 * nbytes / (320 * MB)))
    return [
        LoRAAdapter(name=f"{prefix}-{i}", nbytes=nbytes, rank=rank)
        for i in range(count)
    ]
