"""AQUA reproduction: network-accelerated memory offloading for LLMs.

A full-system, simulation-backed reproduction of "Aqua: Network-
Accelerated Memory Offloading for LLMs in Scale-Up GPU Domains"
(ASPLOS 2025).  The package layers:

* :mod:`repro.sim` — a discrete-event simulation kernel;
* :mod:`repro.hardware` — GPUs, NVLink/NVSwitch/PCIe and servers;
* :mod:`repro.models` — analytic performance models of the evaluated
  generative models;
* :mod:`repro.memory` — paged KV-cache memory management;
* :mod:`repro.aqua` — the paper's contribution: AQUA TENSORS, the
  coordinator, AQUA-LIB and AQUA-PLACER;
* :mod:`repro.serving` — vLLM-, FlexGen- and CFS-style serving engines;
* :mod:`repro.workloads` — the evaluation's workload generators;
* :mod:`repro.experiments` — one function per paper figure.

Quickstart::

    from repro.experiments.figures import fig07_longprompt
    result = fig07_longprompt(duration=60.0)
    print(result["aqua+sd"]["speedup"])   # ~6-8x over FlexGen-to-DRAM
"""

__version__ = "1.0.0"

from repro.aqua import AquaLib, AquaPlacer, AquaTensor, Coordinator
from repro.hardware import Cluster, Server
from repro.serving import (
    BatchEngine,
    CFSEngine,
    FlexGenEngine,
    LoRACache,
    Request,
    VLLMEngine,
)
from repro.sim import Environment

__all__ = [
    "AquaLib",
    "AquaPlacer",
    "AquaTensor",
    "BatchEngine",
    "CFSEngine",
    "Cluster",
    "Coordinator",
    "Environment",
    "FlexGenEngine",
    "LoRACache",
    "Request",
    "Server",
    "VLLMEngine",
    "__version__",
]
