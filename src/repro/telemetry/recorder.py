"""Flight recorder: a bounded ring of recent history plus post-mortems.

A long simulated run can fail hours (of simulated time) in.  Full
Chrome traces answer "why" but are too heavy for million-user sweeps;
end-of-run aggregates answer nothing about *when*.  The
:class:`FlightRecorder` sits between the two: it keeps a bounded
:class:`~collections.deque` of the most recent noteworthy entries —
fault lifecycle events, SLO alerts, and per-scrape metric deltas — and
when something goes wrong (a fault fires, a burn-rate alert trips) it
freezes that ring into a **post-mortem bundle**: a JSON document with
the trigger, the recent history leading up to it, and a snapshot of
the headline metrics at the moment of the trigger.

Like the scraper and SLO tracker, the recorder is observation-only: it
never schedules events or touches simulation state, so audit digests
are identical with it on or off.  Bundles are plain dicts (pickle-safe
for pooled experiment workers) and are optionally written to
``postmortem-NNN.json`` files as they are captured.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

#: Counter families snapshotted into every bundle and diffed per scrape
#: tick — the headline "what was the system doing" numbers.
_SNAPSHOT_FAMILIES = (
    "aqua_engine_requests_completed_total",
    "aqua_engine_tokens_generated_total",
    "aqua_link_bytes_total",
    "aqua_pool_used_bytes",
    "aqua_faults_total",
    "aqua_slo_alerts_total",
)


class FlightRecorder:
    """Bounded recent-history ring with post-mortem capture.

    Parameters
    ----------
    env:
        Simulation environment (provides the clock).
    telemetry:
        Hub whose registry is snapshotted into bundles; optional so the
        recorder can be unit-tested bare.
    capacity:
        Maximum retained ring entries; oldest are dropped silently.
    dump_dir:
        When set, each captured bundle is also written to
        ``<dump_dir>/postmortem-NNN.json``.
    min_gap:
        Minimum simulated seconds between bundle captures.  A fault
        storm or flapping alert produces near-identical bundles;
        the cooldown keeps the first of each episode and notes the
        suppressed triggers as ring entries instead.
    """

    def __init__(
        self,
        env,
        telemetry: Optional["Telemetry"] = None,
        capacity: int = 512,
        dump_dir: Optional[str] = None,
        min_gap: float = 5.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.telemetry = telemetry
        self.ring: deque[dict] = deque(maxlen=capacity)
        self.bundles: list[dict] = []
        self.dump_dir = dump_dir
        self.min_gap = min_gap
        self.dropped = 0
        self.suppressed = 0
        self._last_capture: Optional[float] = None
        self._last_snapshot: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Ring ingestion
    # ------------------------------------------------------------------
    def record(self, kind: str, **payload) -> dict:
        """Append one entry to the ring; returns the entry."""
        if len(self.ring) == self.ring.maxlen:
            self.dropped += 1
        entry = {"t": self.env.now, "kind": kind, **payload}
        self.ring.append(entry)
        return entry

    def on_fault(self, kind: str, phase: str, targets=None) -> None:
        """Fault-injector hook: log the lifecycle event; capture a
        post-mortem when a fault is *applied* (not when it clears)."""
        self.record("fault", fault=kind, phase=phase, targets=list(targets or ()))
        if phase == "apply":
            self.trigger(f"fault:{kind}", fault=kind, targets=list(targets or ()))

    def on_alert(self, alert: dict) -> None:
        """SLO-tracker hook: log the alert and capture a post-mortem."""
        self.record(
            "slo-alert",
            slo=alert["slo"],
            severity=alert["severity"],
            burn_long=alert["burn_long"],
            burn_short=alert["burn_short"],
        )
        self.trigger(f"slo:{alert['slo']}", alert=dict(alert))

    def on_scrape(self, now: float) -> None:
        """Scraper observer: record headline metric deltas for ticks
        where something actually moved (quiet ticks stay out of the
        ring so the bounded history covers more wall time)."""
        snapshot = self._snapshot()
        if self._last_snapshot:
            deltas = {
                key: value - self._last_snapshot.get(key, 0.0)
                for key, value in snapshot.items()
                if value != self._last_snapshot.get(key, 0.0)
            }
            if deltas:
                self.record("metrics", deltas=deltas)
        self._last_snapshot = snapshot

    # ------------------------------------------------------------------
    # Post-mortem capture
    # ------------------------------------------------------------------
    def trigger(self, reason: str, **context) -> Optional[dict]:
        """Freeze the ring into a post-mortem bundle.

        Returns the bundle, or ``None`` when the capture was suppressed
        by the ``min_gap`` cooldown (the suppression itself is recorded
        in the ring so the preceding bundle's follow-up shows it).
        """
        now = self.env.now
        if self._last_capture is not None and now - self._last_capture < self.min_gap:
            self.suppressed += 1
            self.record("postmortem-suppressed", reason=reason)
            return None
        self._last_capture = now
        bundle = {
            "schema": "aqua-postmortem/v1",
            "seq": len(self.bundles),
            "t": now,
            "reason": reason,
            "context": context,
            "metrics": self._snapshot(),
            "ring": list(self.ring),
            "dropped": self.dropped,
            "suppressed": self.suppressed,
        }
        self.bundles.append(bundle)
        if self.dump_dir is not None:
            bundle["path"] = self._dump(bundle)
        self.record("postmortem", reason=reason, seq=bundle["seq"])
        return bundle

    def _dump(self, bundle: dict) -> str:
        os.makedirs(self.dump_dir, exist_ok=True)
        path = os.path.join(self.dump_dir, f"postmortem-{bundle['seq']:03d}.json")
        with open(path, "w") as fh:
            json.dump(bundle, fh, indent=2, sort_keys=True)
        return path

    def _snapshot(self) -> dict[str, float]:
        """Current values of the headline families, keyed by rendered
        sample name (empty when no telemetry hub is attached)."""
        if self.telemetry is None:
            return {}
        from repro.telemetry.timeseries import sample_key

        snapshot: dict[str, float] = {}
        for family in self.telemetry.registry.collect():
            if family.name not in _SNAPSHOT_FAMILIES:
                continue
            for name, labels, value in family.samples():
                if name.endswith("_bucket"):
                    continue
                snapshot[sample_key(name, labels)] = value
        return snapshot

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Pickle/JSON-safe export: ring, bundles and drop accounting."""
        return {
            "capacity": self.ring.maxlen,
            "dropped": self.dropped,
            "suppressed": self.suppressed,
            "ring": list(self.ring),
            "bundles": [dict(b) for b in self.bundles],
        }
