"""Self-contained HTML dashboards for telemetered runs.

:func:`render_dashboard` turns the pickle-safe observability export of
a run — scraped time series, SLO attainment and alerts, flight-recorder
bundles, and the latency-attribution report — into **one HTML file with
zero external dependencies**: inline SVG charts, inline CSS, no
JavaScript, no fonts or network fetches of any kind (CI asserts the
output contains no ``http`` substring at all).  The file can be opened
from a laptop, an artifact store, or a mail attachment and look the
same everywhere.

Charts follow the house data-viz rules: categorical hues are assigned
in fixed slot order (never cycled), lines are 2px on hairline grids,
text wears ink tokens (never a series color), every multi-series chart
carries a legend, every chart carries a collapsible data table for
accessibility, and dark mode is a selected palette (via
``prefers-color-scheme``), not an automatic inversion.  Native SVG
``<title>`` elements provide hover tooltips without scripting.

Inputs are plain dicts (:func:`dashboard_data` builds one from a live
:class:`~repro.telemetry.hub.Telemetry`), so pooled experiment workers
can ship them across process boundaries and the dashboard can be
rendered after the fact.
"""

from __future__ import annotations

import html
import math
import re
from typing import TYPE_CHECKING, Optional, Sequence

from repro.telemetry.timeseries import interval_mean_series, rate_series

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

# Chart geometry (viewBox units; the SVG scales responsively).
_W, _H = 720, 220
_ML, _MR, _MT, _MB = 62, 14, 14, 30

#: Severity -> status-color CSS class for alert/fault markers.
_SEVERITY_CLASS = {"page": "critical", "ticket": "warning", "fault": "serious"}

_GIB = 2**30

_LABEL_RE = re.compile(r'\{[a-zA-Z_][a-zA-Z0-9_]*="((?:[^"\\]|\\.)*)"')


def _first_label(series_key: str) -> str:
    """First label value of a rendered sample key (the engine/device)."""
    match = _LABEL_RE.search(series_key)
    return match.group(1) if match else series_key


def _fmt(value: float) -> str:
    """Compact tick/table number formatting."""
    if value != value:  # NaN
        return "–"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:.3g}M"
    if magnitude >= 1e4:
        return f"{value / 1e3:.3g}k"
    if magnitude >= 100 or value == int(value):
        return f"{value:.0f}"
    if magnitude >= 1:
        return f"{value:.2f}"
    return f"{value:.3g}"


def _nice_ticks(lo: float, hi: float, n: int = 4) -> list[float]:
    """Round tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / n))
    for mult in (1, 2, 2.5, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        ticks.append(round(t, 10))
        t += step
    return ticks


class _Chart:
    """One SVG line chart with optional bands and event markers."""

    def __init__(
        self,
        title: str,
        series: Sequence[dict],
        x_range: tuple[float, float],
        y_label: str,
        y_range: Optional[tuple[float, float]] = None,
        markers: Sequence[dict] = (),
        bands: Sequence[dict] = (),
    ) -> None:
        self.title = title
        self.series = [s for s in series if s["times"]]
        self.x_range = x_range
        self.y_label = y_label
        self.markers = markers
        self.bands = bands
        if y_range is None:
            values = [v for s in self.series for v in s["values"]]
            hi = max(values) if values else 1.0
            lo = min(0.0, min(values)) if values else 0.0
            if hi <= lo:
                hi = lo + 1.0
            y_range = (lo, hi * 1.05)
        self.y_range = y_range

    # -- coordinate transforms ----------------------------------------
    def _x(self, t: float) -> float:
        lo, hi = self.x_range
        span = (hi - lo) or 1.0
        return _ML + (t - lo) / span * (_W - _ML - _MR)

    def _y(self, v: float) -> float:
        lo, hi = self.y_range
        span = (hi - lo) or 1.0
        return _H - _MB - (v - lo) / span * (_H - _MT - _MB)

    # -- rendering -----------------------------------------------------
    def svg(self) -> str:
        out = [f'<svg viewBox="0 0 {_W} {_H}" role="img" '
               f'aria-label="{html.escape(self.title)}">']
        out.append(f"<title>{html.escape(self.title)}</title>")
        for band in self.bands:
            y0 = self._y(min(band["hi"], self.y_range[1]))
            y1 = self._y(max(band["lo"], self.y_range[0]))
            out.append(
                f'<rect class="band-{band["cls"]}" x="{_ML}" y="{y0:.1f}" '
                f'width="{_W - _ML - _MR}" height="{max(y1 - y0, 0):.1f}"/>'
            )
        # Hairline grid + y tick labels (muted ink, tabular figures).
        for tick in _nice_ticks(*self.y_range):
            y = self._y(tick)
            out.append(
                f'<line class="grid" x1="{_ML}" y1="{y:.1f}" '
                f'x2="{_W - _MR}" y2="{y:.1f}"/>'
            )
            out.append(
                f'<text class="tick" x="{_ML - 6}" y="{y + 3:.1f}" '
                f'text-anchor="end">{_fmt(tick)}</text>'
            )
        for tick in _nice_ticks(*self.x_range, n=6):
            x = self._x(tick)
            out.append(
                f'<text class="tick" x="{x:.1f}" y="{_H - _MB + 16}" '
                f'text-anchor="middle">{_fmt(tick)}s</text>'
            )
        out.append(
            f'<line class="axis" x1="{_ML}" y1="{_H - _MB}" '
            f'x2="{_W - _MR}" y2="{_H - _MB}"/>'
        )
        out.append(
            f'<text class="ylabel" x="{_ML}" y="{_MT - 2}" '
            f'text-anchor="start">{html.escape(self.y_label)}</text>'
        )
        # Event markers behind the data lines.
        for marker in self.markers:
            x = self._x(marker["t"])
            if not _ML <= x <= _W - _MR:
                continue
            cls = _SEVERITY_CLASS.get(marker.get("severity", "fault"), "serious")
            tip = html.escape(f'{marker["label"]} @ t={marker["t"]:.1f}s')
            out.append(
                f'<g><title>{tip}</title>'
                f'<line class="marker-{cls}" x1="{x:.1f}" y1="{_MT}" '
                f'x2="{x:.1f}" y2="{_H - _MB}"/>'
                f'<circle class="markerdot-{cls}" cx="{x:.1f}" '
                f'cy="{_MT + 4}" r="4"/></g>'
            )
        for i, series in enumerate(self.series, start=1):
            points = " ".join(
                f"{self._x(t):.1f},{self._y(v):.1f}"
                for t, v in zip(series["times"], series["values"])
            )
            tip = html.escape(series["name"])
            out.append(
                f'<g><title>{tip}</title>'
                f'<polyline class="line s{min(i, 4)}" points="{points}"/></g>'
            )
        out.append("</svg>")
        return "".join(out)

    def legend(self) -> str:
        if len(self.series) < 2:
            return ""
        items = "".join(
            f'<span class="key"><span class="swatch s{min(i, 4)}"></span>'
            f"{html.escape(s['name'])}</span>"
            for i, s in enumerate(self.series, start=1)
        )
        return f'<div class="legend">{items}</div>'

    def table(self, max_rows: int = 24) -> str:
        """Collapsible data table (the accessibility channel)."""
        if not self.series:
            return ""
        times = sorted({round(t, 6) for s in self.series for t in s["times"]})
        stride = max(1, len(times) // max_rows)
        times = times[::stride]
        lookup = [dict(zip(s["times"], s["values"])) for s in self.series]
        head = "".join(
            f"<th>{html.escape(s['name'])}</th>" for s in self.series
        )
        rows = []
        for t in times:
            cells = "".join(
                f"<td>{_fmt(lk[t]) if t in lk else '–'}</td>" for lk in lookup
            )
            rows.append(f"<tr><td>{_fmt(t)}s</td>{cells}</tr>")
        return (
            "<details><summary>Data table</summary><table>"
            f"<tr><th>t</th>{head}</tr>{''.join(rows)}</table></details>"
        )

    def html(self) -> str:
        if not self.series:
            return (
                f'<section class="chart"><h3>{html.escape(self.title)}</h3>'
                '<p class="empty">no samples</p></section>'
            )
        return (
            f'<section class="chart"><h3>{html.escape(self.title)}</h3>'
            f"{self.legend()}{self.svg()}{self.table()}</section>"
        )


# ---------------------------------------------------------------------------
# Data assembly
# ---------------------------------------------------------------------------
def dashboard_data(
    telemetry: "Telemetry",
    title: str = "Aqua observability",
    duration: Optional[float] = None,
) -> dict:
    """Build the pickle/JSON-safe input :func:`render_dashboard` takes."""
    data = {
        "title": title,
        "duration": duration if duration is not None else telemetry.env.now,
        "attribution": telemetry.attribution_report(),
    }
    data.update(telemetry.observability_report())
    return data


def _series_group(scrape: dict, prefix: str) -> list[dict]:
    """Scraped series under one family, labeled by first label value."""
    out = []
    for key, series in sorted(scrape.get("series", {}).items()):
        if key.startswith(prefix):
            out.append(
                {
                    "name": _first_label(key),
                    "times": series["times"],
                    "values": series["values"],
                }
            )
    return out


def _derived(group: list[dict], derive) -> list[dict]:
    out = []
    for series in group:
        times, values = derive(series)
        if times:
            out.append({"name": series["name"], "times": times, "values": values})
    return out


def _markers(data: dict) -> list[dict]:
    """Alert + fault-injection markers from the SLO report and ring."""
    markers = []
    for alert in (data.get("slo") or {}).get("alerts", ()):
        markers.append(
            {
                "t": alert["t"],
                "label": f"alert {alert['slo']} ({alert['severity']})",
                "severity": alert["severity"],
            }
        )
    for entry in (data.get("recorder") or {}).get("ring", ()):
        if entry.get("kind") == "fault" and entry.get("phase") == "apply":
            markers.append(
                {
                    "t": entry["t"],
                    "label": f"fault {entry['fault']}",
                    "severity": "fault",
                }
            )
    markers.sort(key=lambda m: m["t"])
    return markers


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------
def _stat_tiles(data: dict) -> str:
    scrape = data.get("scrape") or {}
    slo = data.get("slo") or {}
    recorder = data.get("recorder") or {}
    totals: dict[str, float] = {}
    for key, series in scrape.get("series", {}).items():
        for family in (
            "aqua_engine_requests_completed_total",
            "aqua_engine_tokens_generated_total",
        ):
            if key.startswith(family) and series["values"]:
                totals[family] = totals.get(family, 0.0) + series["values"][-1]
    tiles = [
        ("Requests completed", _fmt(totals.get(
            "aqua_engine_requests_completed_total", 0.0))),
        ("Tokens generated", _fmt(totals.get(
            "aqua_engine_tokens_generated_total", 0.0))),
        ("Scrapes", _fmt(scrape.get("scrapes", 0))),
        ("SLO alerts", _fmt(len(slo.get("alerts", ())))),
        ("Post-mortems", _fmt(len(recorder.get("bundles", ())))),
    ]
    body = "".join(
        f'<div class="tile"><div class="tile-value">{value}</div>'
        f'<div class="tile-label">{label}</div></div>'
        for label, value in tiles
    )
    return f'<div class="tiles">{body}</div>'


def _slo_section(data: dict, x_range, markers) -> str:
    slo = data.get("slo")
    if not slo:
        return ""
    parts = ["<h2>SLO attainment</h2>"]
    for name, entry in sorted(slo.get("objectives", {}).items()):
        objective = entry["objective"]
        target = objective["target"]
        series = entry.get("attainment_series", {"times": [], "values": []})
        chart = _Chart(
            f"{name} — {objective['description'] or objective['metric']} "
            f"(target {target:.0%})",
            [{"name": "attainment", **series}],
            x_range,
            "attainment",
            y_range=(0.0, 1.05),
            markers=[m for m in markers if name in m["label"] or
                     m["severity"] == "fault"],
            bands=[
                {"lo": target, "hi": 1.05, "cls": "good"},
                {"lo": 0.0, "hi": target, "cls": "bad"},
            ],
        )
        parts.append(chart.html())
    alerts = slo.get("alerts", ())
    if alerts:
        rows = []
        for a in alerts:
            attainment = a.get("attainment")
            attainment_text = "–" if attainment is None else f"{attainment:.0%}"
            rows.append(
                f"<tr><td>{a['t']:.1f}s</td><td>{html.escape(a['slo'])}</td>"
                f"<td>{html.escape(a['severity'])}</td>"
                f"<td>{a['burn_long']:.1f}× / {a['burn_short']:.1f}×</td>"
                f"<td>{attainment_text}</td></tr>"
            )
        rows = "".join(rows)
        parts.append(
            "<h3>Burn-rate alerts</h3><table class=\"flat\">"
            "<tr><th>t</th><th>objective</th><th>severity</th>"
            f"<th>burn (long/short)</th><th>attainment</th></tr>{rows}</table>"
        )
    return "".join(parts)


def _attribution_section(data: dict) -> str:
    report = data.get("attribution")
    if not report or not report.get("count"):
        return ""
    aggregates = report.get("aggregates", {})
    entries = [
        (component, stats.get("mean", float("nan")))
        for component, stats in aggregates.items()
        if stats.get("mean", 0) == stats.get("mean", 0)  # drop NaN
    ]
    if not entries:
        return ""
    peak = max(v for _, v in entries) or 1.0
    rows = []
    for component, mean in entries:
        width = max(mean / peak * 100.0, 0.5)
        rows.append(
            f'<div class="bar-row"><span class="bar-label">'
            f"{html.escape(component)}</span>"
            f'<span class="bar-track"><span class="bar" '
            f'style="width:{width:.1f}%"></span></span>'
            f'<span class="bar-value">{mean:.3f}s</span></div>'
        )
    return (
        "<h2>Latency attribution</h2>"
        f'<p class="note">Mean seconds per component over '
        f"{report['count']} finished request(s); components telescope to "
        "the end-to-end latency exactly.</p>"
        f'<div class="bars">{"".join(rows)}</div>'
    )


def _postmortem_section(data: dict) -> str:
    recorder = data.get("recorder")
    if not recorder or not recorder.get("bundles"):
        return ""
    rows = "".join(
        f"<tr><td>{b['seq']}</td><td>{b['t']:.1f}s</td>"
        f"<td>{html.escape(b['reason'])}</td>"
        f"<td>{len(b.get('ring', ()))}</td>"
        f"<td>{html.escape(b.get('path', '—'))}</td></tr>"
        for b in recorder["bundles"]
    )
    return (
        "<h2>Flight-recorder post-mortems</h2><table class=\"flat\">"
        "<tr><th>#</th><th>t</th><th>trigger</th><th>ring entries</th>"
        f"<th>file</th></tr>{rows}</table>"
    )


_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834;
  --series-3: #1baf7a; --series-4: #eda100;
  --good: #0ca30c; --warning: #fab219;
  --serious: #ec835a; --critical: #d03b3b;
  --ring: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  body {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --series-1: #3987e5; --series-2: #d95926;
    --series-3: #199e70; --series-4: #c98500;
    --ring: rgba(255,255,255,0.10);
  }
}
main { max-width: 860px; margin: 0 auto; }
h1 { font-size: 1.3rem; margin: 0 0 4px; }
h2 { font-size: 1.05rem; margin: 28px 0 8px; }
h3 { font-size: 0.9rem; margin: 14px 0 4px; color: var(--text-secondary); }
.sub, .note, .empty { color: var(--text-secondary); font-size: 0.8rem; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 16px; min-width: 108px;
}
.tile-value { font-size: 1.4rem; }
.tile-label { color: var(--text-secondary); font-size: 0.72rem; }
section.chart {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 14px; margin: 10px 0;
}
svg { width: 100%; height: auto; display: block; }
svg text { font-family: inherit; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--axis); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }
.ylabel { fill: var(--text-secondary); font-size: 10px; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.s1 { stroke: var(--series-1); } .s2 { stroke: var(--series-2); }
.s3 { stroke: var(--series-3); } .s4 { stroke: var(--series-4); }
.swatch.s1 { background: var(--series-1); }
.swatch.s2 { background: var(--series-2); }
.swatch.s3 { background: var(--series-3); }
.swatch.s4 { background: var(--series-4); }
.band-good { fill: var(--good); opacity: 0.06; }
.band-bad { fill: var(--critical); opacity: 0.07; }
.marker-critical { stroke: var(--critical); }
.marker-warning { stroke: var(--warning); }
.marker-serious { stroke: var(--serious); }
[class^="marker-"] { stroke-width: 1.5; stroke-dasharray: 3 3; }
.markerdot-critical { fill: var(--critical); }
.markerdot-warning { fill: var(--warning); }
.markerdot-serious { fill: var(--serious); }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 4px 0 8px; }
.key {
  display: inline-flex; align-items: center; gap: 6px;
  color: var(--text-secondary); font-size: 0.75rem;
}
.swatch {
  display: inline-block; width: 10px; height: 10px; border-radius: 3px;
}
details { margin-top: 8px; }
summary { color: var(--muted); font-size: 0.75rem; cursor: pointer; }
table {
  border-collapse: collapse; font-size: 0.72rem; margin-top: 6px;
  font-variant-numeric: tabular-nums;
}
table.flat {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px;
}
th, td {
  text-align: right; padding: 3px 10px;
  border-bottom: 1px solid var(--grid); color: var(--text-secondary);
}
th { color: var(--muted); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
.bars { margin: 8px 0; }
.bar-row { display: flex; align-items: center; gap: 10px; margin: 4px 0; }
.bar-label {
  width: 130px; text-align: right;
  color: var(--text-secondary); font-size: 0.75rem;
}
.bar-track { flex: 1; background: var(--surface-1); border-radius: 4px; }
.bar {
  display: block; height: 14px; border-radius: 4px 3px 3px 4px;
  background: var(--series-1); min-width: 2px;
}
.bar-value {
  width: 70px; font-size: 0.75rem; color: var(--text-secondary);
  font-variant-numeric: tabular-nums;
}
footer { margin-top: 28px; color: var(--muted); font-size: 0.72rem; }
"""


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def render_dashboard(data: dict) -> str:
    """Render the observability export of one run as standalone HTML."""
    scrape = data.get("scrape") or {}
    duration = data.get("duration")
    if duration is None:
        duration = max(
            (s["times"][-1] for s in scrape.get("series", {}).values()
             if s["times"]),
            default=1.0,
        )
    x_range = (0.0, float(duration))
    markers = _markers(data)

    throughput = _Chart(
        "Token throughput",
        _derived(
            _series_group(scrape, "aqua_engine_tokens_generated_total"),
            lambda s: rate_series(s["times"], s["values"]),
        ),
        x_range,
        "tokens/s",
        markers=markers,
    )

    def _latency_chart(title: str, family: str, unit: str = "seconds") -> _Chart:
        sums = _series_group(scrape, f"{family}_sum")
        counts = {
            s["name"]: s for s in _series_group(scrape, f"{family}_count")
        }
        series = []
        for s in sums:
            count = counts.get(s["name"])
            if count is None:
                continue
            times, values = interval_mean_series(
                s["times"], s["values"], count["values"]
            )
            if times:
                series.append({"name": s["name"], "times": times, "values": values})
        return _Chart(title, series, x_range, unit, markers=markers)

    ttft = _latency_chart(
        "TTFT (interval mean)", "aqua_engine_ttft_seconds")
    tpot = _latency_chart(
        "TPOT (interval mean)", "aqua_engine_tpot_seconds")
    pool = _Chart(
        "Pool usage",
        _derived(
            _series_group(scrape, "aqua_pool_used_bytes"),
            lambda s: (s["times"], [v / _GIB for v in s["values"]]),
        ),
        x_range,
        "GiB",
        markers=markers,
    )

    title = html.escape(data.get("title", "Aqua observability"))
    interval = scrape.get("interval")
    sub = (
        f"simulated duration {duration:.0f}s · scrape interval "
        f"{interval}s · {len(scrape.get('series', {}))} series"
        if interval is not None
        else f"simulated duration {duration:.0f}s"
    )
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{title}</title>",
        f"<style>{_CSS}</style></head><body><main>",
        f"<h1>{title}</h1>",
        f'<p class="sub">{sub}</p>',
        _stat_tiles(data),
        "<h2>Throughput and latency</h2>",
        throughput.html(),
        ttft.html(),
        tpot.html(),
        "<h2>Memory</h2>",
        pool.html(),
        _slo_section(data, x_range, markers),
        _attribution_section(data),
        _postmortem_section(data),
        "<footer>Self-contained: inline SVG and CSS only — no scripts, "
        "no network dependencies.</footer>",
        "</main></body></html>",
    ]
    return "\n".join(p for p in parts if p)


def write_dashboard(path: str, data: dict) -> str:
    """Render and write the dashboard; returns ``path``."""
    with open(path, "w") as fh:
        fh.write(render_dashboard(data))
    return path
