"""Unified telemetry: causal tracing, labeled metrics, latency attribution.

See ``docs/observability.md`` for the full model.  The package has
three pillars, all reachable from one :class:`Telemetry` hub:

* :mod:`repro.telemetry.registry` — Prometheus-style ``Counter`` /
  ``Gauge`` / ``Histogram`` families in a central :class:`Registry`,
  exported as text exposition format or JSON;
* :mod:`repro.telemetry.attribution` — per-request latency
  decomposition into queueing / prefill / decode / offload-fetch /
  link-contention components with exact (telescoping) sums;
* request-scoped flow events recorded through the shared
  :class:`~repro.trace.Tracer`, linking one request's spans across
  engine, AQUA and DMA tracks.

On top of those sits the time-resolved layer (opt-in via
:meth:`Telemetry.attach_observability`):

* :mod:`repro.telemetry.timeseries` — a simulated-clock
  :class:`MetricScraper` snapshotting every family into ring-buffered
  ``metric(t)`` series;
* :mod:`repro.telemetry.slo` — declarative per-tenant objectives with
  rolling attainment and multi-window burn-rate alerts;
* :mod:`repro.telemetry.recorder` — a :class:`FlightRecorder` ring of
  recent history that freezes into post-mortem JSON bundles on faults
  and alerts;
* :mod:`repro.telemetry.dashboard` — a self-contained HTML dashboard
  (inline SVG, no external JS or network dependencies).

Enable per rig with ``build_consumer_rig(..., telemetry=True)`` or run
``aqua-repro observe``.  Disabled telemetry costs one ``None`` check
per hook and changes nothing else.
"""

from repro.telemetry.attribution import COMPONENTS, LatencyAttributor
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.hub import (
    Telemetry,
    active_capture_tracer,
    active_observability,
    capture_observability,
    capture_trace,
)
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    parse_prometheus_text,
)
from repro.telemetry.slo import (
    BurnRateWindow,
    SLObjective,
    SLOPolicy,
    SLOTracker,
    default_slo_policy,
)
from repro.telemetry.timeseries import (
    MetricScraper,
    RingSeries,
    interval_mean_series,
    rate_series,
)

__all__ = [
    "COMPONENTS",
    "BurnRateWindow",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LatencyAttributor",
    "MetricScraper",
    "Registry",
    "RingSeries",
    "SLObjective",
    "SLOPolicy",
    "SLOTracker",
    "Telemetry",
    "active_capture_tracer",
    "active_observability",
    "capture_observability",
    "capture_trace",
    "default_slo_policy",
    "interval_mean_series",
    "parse_prometheus_text",
    "rate_series",
    "render_dashboard",
]
