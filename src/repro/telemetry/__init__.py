"""Unified telemetry: causal tracing, labeled metrics, latency attribution.

See ``docs/observability.md`` for the full model.  The package has
three pillars, all reachable from one :class:`Telemetry` hub:

* :mod:`repro.telemetry.registry` — Prometheus-style ``Counter`` /
  ``Gauge`` / ``Histogram`` families in a central :class:`Registry`,
  exported as text exposition format or JSON;
* :mod:`repro.telemetry.attribution` — per-request latency
  decomposition into queueing / prefill / decode / offload-fetch /
  link-contention components with exact (telescoping) sums;
* request-scoped flow events recorded through the shared
  :class:`~repro.trace.Tracer`, linking one request's spans across
  engine, AQUA and DMA tracks.

Enable per rig with ``build_consumer_rig(..., telemetry=True)`` or run
``aqua-repro observe``.  Disabled telemetry costs one ``None`` check
per hook and changes nothing else.
"""

from repro.telemetry.attribution import COMPONENTS, LatencyAttributor
from repro.telemetry.hub import Telemetry, active_capture_tracer, capture_trace
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    parse_prometheus_text,
)

__all__ = [
    "COMPONENTS",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyAttributor",
    "Registry",
    "Telemetry",
    "active_capture_tracer",
    "capture_trace",
    "parse_prometheus_text",
]
