"""Simulated-clock metric scraping into ring-buffered time series.

End-of-run aggregates answer "did this run meet its targets?"; they
cannot answer "*when* did it start failing?".  This module adds the
time axis: a :class:`MetricScraper` is a lightweight periodic process
on the simulation clock that snapshots every family of a
:class:`~repro.telemetry.registry.Registry` into bounded
:class:`RingSeries` buffers, so every telemetered run yields
``metric(t)`` curves instead of only final numbers.

Scraping is strictly observation-only: the scraper reads counter and
gauge values (callback-backed gauges read live objects) and mutates no
simulation state, so conservation-audit digests are identical with it
on or off (``tests/test_determinism_golden.py``).  The extra events it
schedules are pure sleeps that shift nothing observable.

Ring buffers bound memory for million-user sweeps: a scrape store holds
at most ``capacity`` samples per series and silently drops the oldest —
the recent window is what dashboards, SLO burn rates and the flight
recorder need.  Histogram ``_bucket`` samples are skipped (only
``_sum``/``_count`` are scraped); full distributions stay available
from the end-of-run registry export.

Derived views (:func:`rate_series`, :func:`interval_mean_series`) turn
cumulative counter scrapes into per-interval rates and interval means —
the form the dashboard plots.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional

from repro.telemetry.registry import Registry


class RingSeries:
    """A bounded, time-ordered ``(time, value)`` series.

    Appends must be monotone in time (equal timestamps are legal);
    going backwards raises with the offending times named — a scraper
    driven by the simulation clock can only trip this through a real
    bug, and silently re-ordering samples would corrupt every derived
    rate.
    """

    __slots__ = ("name", "_samples")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, time: float, value: float) -> None:
        if self._samples and time < self._samples[-1][0]:
            raise ValueError(
                f"non-monotonic append to ring series {self.name!r}: "
                f"t={time} precedes last sample t={self._samples[-1][0]}"
            )
        self._samples.append((time, value))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def capacity(self) -> int:
        return self._samples.maxlen

    @property
    def times(self) -> list[float]:
        return [t for t, _ in self._samples]

    @property
    def values(self) -> list[float]:
        return [v for _, v in self._samples]

    def last(self) -> Optional[tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Samples with ``start <= t < end`` (same half-open contract as
        :meth:`repro.serving.metrics.TimeSeries.window_sum`)."""
        return [(t, v) for t, v in self._samples if start <= t < end]

    def to_dict(self) -> dict:
        """JSON/pickle-safe form: parallel time and value lists."""
        return {"times": self.times, "values": self.values}


def sample_key(name: str, labels: Iterable[tuple[str, str]]) -> str:
    """Canonical series key: the Prometheus sample notation.

    ``aqua_engine_tokens_generated_total{engine="flexgen-OPT-30B"}`` —
    the same rendering the text exposition format uses, so scraped
    series line up 1:1 with exported samples.
    """
    labels = tuple(labels)
    if not labels:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{rendered}}}"


class MetricScraper:
    """Periodic simulated-clock scrape of a metrics registry.

    Parameters
    ----------
    env:
        The simulation environment (clock + process host).
    registry:
        The registry to snapshot.
    interval:
        Simulated seconds between scrapes.
    capacity:
        Ring-buffer bound per series.

    Notes
    -----
    :meth:`start` spawns the scrape process; the first scrape happens
    immediately, then every ``interval`` seconds.  When the scraper
    wakes to find the schedule otherwise empty it stops rescheduling,
    so drain-style runs (``env.run()`` with no horizon) still
    terminate.

    ``observers`` are called after every scrape with the current
    simulated time — the SLO tracker evaluates burn rates there and the
    flight recorder records metric deltas.  Observers must be
    observation-only too.
    """

    def __init__(
        self,
        env,
        registry: Registry,
        interval: float = 1.0,
        capacity: int = 4096,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"scrape interval must be positive, got {interval}")
        self.env = env
        self.registry = registry
        self.interval = float(interval)
        self.capacity = capacity
        self.series: dict[str, RingSeries] = {}
        self.observers: list[Callable[[float], None]] = []
        self.scrapes = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "MetricScraper":
        """Spawn the periodic scrape process (idempotent)."""
        if not self._started:
            self._started = True
            self.env.process(self._run())
        return self

    def _run(self):
        while True:
            self.scrape()
            if self.env.peek() == float("inf"):
                # Nothing else is scheduled: rescheduling would keep a
                # drain-style run alive forever on scrapes of a finished
                # world.  The final scrape above already captured it.
                return
            yield self.env.timeout(self.interval)

    # ------------------------------------------------------------------
    def scrape(self, now: Optional[float] = None) -> int:
        """Snapshot every family now; returns the samples appended."""
        if now is None:
            now = self.env.now
        appended = 0
        for family in self.registry.collect():
            for name, labels, value in family.samples():
                if name.endswith("_bucket"):
                    continue  # distributions stay in the registry export
                key = sample_key(name, labels)
                series = self.series.get(key)
                if series is None:
                    series = self.series[key] = RingSeries(key, self.capacity)
                series.append(now, value)
                appended += 1
        self.scrapes += 1
        for observer in self.observers:
            observer(now)
        return appended

    # ------------------------------------------------------------------
    def matching(self, prefix: str) -> dict[str, RingSeries]:
        """All series whose key starts with ``prefix``."""
        return {k: s for k, s in self.series.items() if k.startswith(prefix)}

    def to_dict(self) -> dict:
        """Pickle/JSON-safe export of the whole store."""
        return {
            "interval": self.interval,
            "scrapes": self.scrapes,
            "series": {k: s.to_dict() for k, s in self.series.items()},
        }


# ---------------------------------------------------------------------------
# Derived views over scraped series (plain dicts so pooled experiment
# results — which pickle scrape stores as dicts — can reuse them).
# ---------------------------------------------------------------------------
def rate_series(times: list[float], values: list[float]) -> tuple[list[float], list[float]]:
    """Per-interval rate of a cumulative counter series.

    Each output point sits at the *end* of its scrape interval and is
    ``(v[i] - v[i-1]) / (t[i] - t[i-1])``.  Zero-width intervals (two
    scrapes at one timestamp) are skipped rather than divided by zero.
    """
    out_t: list[float] = []
    out_v: list[float] = []
    for i in range(1, len(times)):
        dt = times[i] - times[i - 1]
        if dt <= 0:
            continue
        out_t.append(times[i])
        out_v.append((values[i] - values[i - 1]) / dt)
    return out_t, out_v


def interval_mean_series(
    sum_times: list[float],
    sum_values: list[float],
    count_values: list[float],
) -> tuple[list[float], list[float]]:
    """Interval mean from scraped ``_sum`` and ``_count`` histogram series.

    Points where the interval saw no observations (count delta 0) are
    omitted — a gap in the plotted line, not a fake zero.
    """
    out_t: list[float] = []
    out_v: list[float] = []
    n = min(len(sum_times), len(sum_values), len(count_values))
    for i in range(1, n):
        dc = count_values[i] - count_values[i - 1]
        if dc <= 0:
            continue
        out_t.append(sum_times[i])
        out_v.append((sum_values[i] - sum_values[i - 1]) / dc)
    return out_t, out_v
