"""A Prometheus-style labeled metrics registry.

Three metric kinds — :class:`Counter` (monotone), :class:`Gauge`
(settable, optionally callback-backed so values are read live at
collection time), and :class:`Histogram` (cumulative buckets) — are
grouped into *families* carrying a fixed label schema, and families
live in a :class:`Registry` that exports the whole set as Prometheus
text exposition format (:meth:`Registry.to_prometheus_text`) or as a
JSON-friendly dict (:meth:`Registry.to_dict`).

The module is deliberately dependency-free: the simulation's telemetry
hub (:mod:`repro.telemetry.hub`) instantiates one registry per run, but
nothing here knows about engines, GPUs or the simulation clock.

Example
-------
>>> registry = Registry()
>>> tokens = registry.counter("tokens_total", "Tokens generated.", ["engine"])
>>> tokens.labels(engine="vllm").inc(3)
>>> print(registry.to_prometheus_text().splitlines()[2])
tokens_total{engine="vllm"} 3.0
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Callable, Iterable, Optional, Sequence

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds-oriented, like the
#: Prometheus client defaults but extended for minute-scale RCTs).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # Per the exposition format, HELP text escapes backslash and
    # newline only (quotes stay literal).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label_value(value: str) -> str:
    # Single left-to-right pass: sequential str.replace would corrupt a
    # literal backslash followed by 'n' (escaped "\\n") into a newline.
    return _UNESCAPE_RE.sub(
        lambda m: _UNESCAPE_MAP.get(m.group(1), m.group(1)), value
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self, name: str, labels: tuple) -> Iterable[tuple]:
        yield (name, labels, self.value)


class Gauge:
    """A value that can go up and down, or track a live callback."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0
        self._callback: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._callback = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, callback: Callable[[], float]) -> None:
        """Read the gauge from ``callback`` at every collection.

        This is how pool occupancy and link queue depth are exported
        without the hot path paying any bookkeeping cost: the callback
        reads the live object only when someone scrapes the registry.
        """
        self._callback = callback

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value

    def samples(self, name: str, labels: tuple) -> Iterable[tuple]:
        yield (name, labels, self.value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        uppers = [float(b) for b in buckets if b != float("inf")]
        if not uppers:
            raise ValueError("histogram needs at least one finite bucket")
        if sorted(uppers) != uppers or len(set(uppers)) != len(uppers):
            raise ValueError(f"buckets must be strictly increasing, got {buckets}")
        self.uppers = uppers
        self._counts = [0] * (len(uppers) + 1)  # final slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        self._counts[bisect_left(self.uppers, value)] += 1

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        out = []
        running = 0
        for upper, count in zip(self.uppers, self._counts):
            running += count
            out.append((upper, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def samples(self, name: str, labels: tuple) -> Iterable[tuple]:
        for upper, count in self.bucket_counts():
            yield (f"{name}_bucket", labels + (("le", _format_value(upper)),), count)
        yield (f"{name}_sum", labels, self.sum)
        yield (f"{name}_count", labels, self.count)


class Family:
    """All children of one metric name, keyed by label values.

    Families with an empty label schema proxy the metric interface
    directly (``family.inc()`` etc.) so unlabeled metrics read naturally.
    """

    def __init__(
        self,
        metric_cls: type,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        **metric_kwargs,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.metric_cls = metric_cls
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.kind = metric_cls.kind
        self._metric_kwargs = metric_kwargs
        self._children: dict[tuple, object] = {}

    def labels(self, **labelvalues) -> object:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self.metric_cls(**self._metric_kwargs)
            self._children[key] = child
        return child

    # -- unlabeled convenience -----------------------------------------
    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; call .labels(...) first")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_function(self, callback: Callable[[], float]) -> None:
        self._default().set_function(callback)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    # -- collection ----------------------------------------------------
    def samples(self) -> Iterable[tuple]:
        """``(sample_name, ((label, value), ...), value)`` triples."""
        for key in sorted(self._children):
            labels = tuple(zip(self.labelnames, key))
            yield from self._children[key].samples(self.name, labels)

    def __repr__(self) -> str:
        return (
            f"<Family {self.kind} {self.name} labels={self.labelnames} "
            f"children={len(self._children)}>"
        )


class Registry:
    """A named collection of metric families with exporters."""

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}

    # ------------------------------------------------------------------
    def _register(self, metric_cls: type, name: str, help: str, labelnames, **kw) -> Family:
        existing = self._families.get(name)
        if existing is not None:
            if existing.metric_cls is not metric_cls or existing.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        family = Family(metric_cls, name, help, labelnames, **kw)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Family:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Family:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[Family]:
        return self._families.get(name)

    def collect(self) -> Iterable[Family]:
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines = []
        for family in self._families.values():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample_name, labels, value in family.samples():
                if labels:
                    rendered = ",".join(
                        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels
                    )
                    lines.append(f"{sample_name}{{{rendered}}} {_format_value(value)}")
                else:
                    lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON-friendly export: one entry per family with all samples."""
        out = {}
        for family in self._families.values():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": [
                    {"name": name, "labels": dict(labels), "value": value}
                    for name, labels, value in family.samples()
                ],
            }
        return out


# ---------------------------------------------------------------------------
# Validation helper (used by tests and the CI telemetry smoke job)
# ---------------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)  # float("NaN") handles NaN


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse text exposition format back into samples.

    Returns ``{sample_name: [(labels_dict, value), ...]}``; raises
    :class:`ValueError` on any malformed line.  Used to validate that
    :meth:`Registry.to_prometheus_text` output actually parses.
    """
    out: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                consumed = pair.end()
            leftover = raw[consumed:].strip().strip(",")
            if leftover:
                raise ValueError(f"line {lineno}: malformed labels {raw!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value {match.group('value')!r}"
            ) from None
        out.setdefault(match.group("name"), []).append((labels, value))
    return out
