"""The telemetry hub: one object wiring tracing, metrics and attribution.

:class:`Telemetry` bundles the three pillars of the observability layer
— a :class:`~repro.trace.Tracer` (request-scoped causal tracing via
flow events), a :class:`~repro.telemetry.registry.Registry` (labeled
Prometheus-style metrics) and a
:class:`~repro.telemetry.attribution.LatencyAttributor` (per-request
latency decomposition) — behind small hook methods that the engines,
AQUA-LIB, the coordinator, the DMA layer and the fault injector call.

Every instrumented call site guards on ``telemetry is None``, so a run
without telemetry pays exactly one ``None`` check per hook and records
nothing; determinism digests are bit-identical either way.

Trace-ID propagation model
--------------------------
The trace ID of a request is its ``req_id``.  It travels as a plain
``Optional[int]`` (``ctx``): engines stamp it onto AQUA tensors at
allocation (``to_responsive_tensor(..., ctx=req_id)``), AQUA-LIB passes
it down to ``Server.transfer(..., ctx=...)``, and each completed DMA
hop reports back through :meth:`Telemetry.record_transfer`.  The hub
turns these sightings into Chrome flow events (``ph: s/t/f``) with the
``req_id`` as the flow id, so Perfetto draws arrows following one
request across the engine, ``aqua:*`` and ``link:*`` tracks, and
:meth:`Tracer.critical_path <repro.trace.Tracer.critical_path>` can
reconstruct the chain programmatically.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.telemetry.attribution import LatencyAttributor
from repro.telemetry.registry import Registry
from repro.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.dma import Transfer
    from repro.hardware.server import Server
    from repro.serving.request import Request

#: Histogram buckets for TTFT (sub-second matters) and RCT (minutes).
_LATENCY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

#: Buckets for TPOT (time per output token) — steady-state decode pace
#: is tens of milliseconds to a few seconds per token.
_TPOT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.15, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Telemetry:
    """Per-run telemetry context shared by every instrumented subsystem.

    Parameters
    ----------
    env:
        The simulation environment (provides the clock).
    tracer:
        Optional pre-existing tracer to record into; by default a fresh
        one bound to ``env``'s clock.
    """

    def __init__(self, env, tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.tracer = tracer or Tracer(clock=lambda: env.now)
        self.registry = Registry()
        self.attribution = LatencyAttributor()
        self._flow_started: set[int] = set()
        # Optional observability layer (see attach_observability).
        self.scraper = None
        self.slo = None
        self.recorder = None

        r = self.registry
        # -- engine family ------------------------------------------------
        self.requests_submitted = r.counter(
            "aqua_engine_requests_submitted_total",
            "Requests submitted to an engine.", ["engine"])
        self.requests_completed = r.counter(
            "aqua_engine_requests_completed_total",
            "Requests that generated their final token.", ["engine"])
        self.tokens_generated = r.counter(
            "aqua_engine_tokens_generated_total",
            "Tokens generated.", ["engine"])
        self.requeues = r.counter(
            "aqua_engine_requeues_total",
            "Requests re-queued after losing inference context.", ["engine"])
        self.preemptions = r.counter(
            "aqua_engine_preemptions_total",
            "Sequences preempted for KV space.", ["engine"])
        self.batch_occupancy = r.gauge(
            "aqua_engine_batch_occupancy",
            "Sequences in the last decode batch.", ["engine"])
        self.ttft_seconds = r.histogram(
            "aqua_engine_ttft_seconds",
            "Time to first token.", ["engine"], buckets=_LATENCY_BUCKETS)
        self.rct_seconds = r.histogram(
            "aqua_engine_rct_seconds",
            "Request completion time.", ["engine"], buckets=_LATENCY_BUCKETS)
        self.tpot_seconds = r.histogram(
            "aqua_engine_tpot_seconds",
            "Time per output token after the first (steady-state decode "
            "pace), marked at request completion.",
            ["engine"], buckets=_TPOT_BUCKETS)
        # -- memory-pool family -------------------------------------------
        self.pool_used = r.gauge(
            "aqua_pool_used_bytes", "Bytes reserved in a memory pool.",
            ["device"])
        self.pool_capacity = r.gauge(
            "aqua_pool_capacity_bytes", "Memory pool capacity.", ["device"])
        self.pool_peak = r.gauge(
            "aqua_pool_peak_bytes",
            "High-water mark of pool usage.", ["device"])
        self.pool_reservations = r.gauge(
            "aqua_pool_reservations",
            "Live named reservations in a pool.", ["device"])
        # -- interconnect family ------------------------------------------
        self.link_bytes = r.counter(
            "aqua_link_bytes_total",
            "Bytes moved over a channel (full payload per hop).", ["channel"])
        self.link_transfers = r.counter(
            "aqua_link_transfers_total",
            "Transfers that traversed a channel.", ["channel"])
        self.link_contention = r.counter(
            "aqua_link_contention_seconds_total",
            "Time transfers spent waiting for a channel grant.", ["channel"])
        self.link_queue_depth = r.gauge(
            "aqua_link_queue_depth",
            "Transfers queued on a channel right now.", ["channel"])
        # -- AQUA control/data plane --------------------------------------
        self.tensor_allocations = r.counter(
            "aqua_tensor_allocations_total",
            "AQUA tensor placements by initial location.", ["location"])
        self.tensor_migrations = r.counter(
            "aqua_tensor_migrations_total",
            "Completed tensor migrations by target.", ["target"])
        self.migrations_queued = r.counter(
            "aqua_migrations_queued_total",
            "Migrations queued by the coordinator.", ["reason"])
        self.offload_bytes = r.counter(
            "aqua_offload_bytes_total",
            "Bytes fetched/flushed through AQUA-LIB.", ["gpu", "op"])
        self.transfer_retries = r.counter(
            "aqua_transfer_retries_total",
            "Transfer retries after DMA stalls.", ["gpu"])
        self.lost_tensors = r.counter(
            "aqua_lost_tensors_total",
            "Tensors lost to endpoint GPU failures.", ["gpu"])
        self.coordinator_requests = r.counter(
            "aqua_coordinator_requests_total",
            "Coordinator REST calls.", ["method", "path"])
        # -- faults family -------------------------------------------------
        self.faults = r.counter(
            "aqua_faults_total",
            "Fault injections by kind and phase.", ["kind", "phase"])

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_server(self, server: "Server") -> None:
        """Instrument a server: DMA hooks plus live pool/link gauges."""
        server.telemetry = self
        for channel in server.interconnect.channels.values():
            self.link_queue_depth.labels(channel=channel.name).set_function(
                lambda ch=channel: len(ch.engine.queue)
            )
        for device in server.devices:
            pool = getattr(device, "hbm", None)
            if pool is None:
                pool = device.pool
            name = device.name
            self.pool_used.labels(device=name).set_function(
                lambda p=pool: p.used)
            self.pool_capacity.labels(device=name).set_function(
                lambda p=pool: p.capacity)
            self.pool_peak.labels(device=name).set_function(
                lambda p=pool: p.peak)
            self.pool_reservations.labels(device=name).set_function(
                lambda p=pool: len(p.reservations))

    def attach_observability(
        self,
        scrape_interval: float = 1.0,
        slo_policy=None,
        postmortem_dir: Optional[str] = None,
        capacity: int = 4096,
        recorder_capacity: int = 512,
        start: bool = True,
    ) -> "Telemetry":
        """Enable the time-resolved layer: scraper + SLO tracker + recorder.

        Spawns a :class:`~repro.telemetry.timeseries.MetricScraper` at
        ``scrape_interval`` simulated seconds, a
        :class:`~repro.telemetry.recorder.FlightRecorder` (dumping
        post-mortem bundles under ``postmortem_dir`` when given) and —
        when ``slo_policy`` is provided — an
        :class:`~repro.telemetry.slo.SLOTracker` whose burn-rate alerts
        trigger recorder captures.  Everything attached here is
        observation-only: audit digests are identical with this layer
        on or off (``tests/test_determinism_golden.py``).

        Idempotent per hub: calling again returns the existing layer.
        """
        if self.scraper is not None:
            return self
        from repro.telemetry.recorder import FlightRecorder
        from repro.telemetry.timeseries import MetricScraper

        self.scraper = MetricScraper(
            self.env, self.registry, interval=scrape_interval, capacity=capacity
        )
        self.recorder = FlightRecorder(
            self.env, telemetry=self,
            capacity=recorder_capacity, dump_dir=postmortem_dir,
        )
        if slo_policy is not None:
            from repro.telemetry.slo import SLOTracker

            self.slo = SLOTracker(
                self.env, slo_policy, telemetry=self, capacity=capacity
            )
            self.slo.on_alert.append(self.recorder.on_alert)
            # SLO evaluation runs before the recorder's delta pass so a
            # tick's alert and its metric movement land in ring order.
            self.scraper.observers.append(self.slo.on_scrape)
        self.scraper.observers.append(self.recorder.on_scrape)
        if start:
            self.scraper.start()
        return self

    def observability_report(self) -> dict:
        """Pickle/JSON-safe export of the attached observability layer
        (empty dict when :meth:`attach_observability` was never called)."""
        if self.scraper is None:
            return {}
        report = {
            "scrape": self.scraper.to_dict(),
            "recorder": self.recorder.to_dict(),
        }
        if self.slo is not None:
            report["slo"] = self.slo.report()
        return report

    # ------------------------------------------------------------------
    # Flow events (request-scoped causal tracing)
    # ------------------------------------------------------------------
    def flow(self, ctx: Optional[int], track: str,
             time: Optional[float] = None, **args) -> None:
        """Add one step of a request's flow chain on ``track``.

        The first sighting of a trace ID emits the flow *start* (``s``),
        later sightings emit *steps* (``t``); :meth:`flow_end` closes
        the chain with ``f``.  ``ctx=None`` (telemetry disabled upstream
        or an un-stamped code path) is a no-op.
        """
        if ctx is None:
            return
        if time is None:
            time = self.env.now
        if ctx in self._flow_started:
            phase = "t"
        else:
            phase = "s"
            self._flow_started.add(ctx)
        self.tracer.add_flow("request", track, ctx, phase, time=time, **args)

    def flow_end(self, ctx: Optional[int], track: str,
                 time: Optional[float] = None, **args) -> None:
        if ctx is None or ctx not in self._flow_started:
            return
        if time is None:
            time = self.env.now
        self.tracer.add_flow("request", track, ctx, "f", time=time, **args)
        # A re-queued request that runs again starts a fresh chain.
        self._flow_started.discard(ctx)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def request_submitted(self, engine: str, request: "Request") -> None:
        self.requests_submitted.labels(engine=engine).inc()
        self.attribution.observe(request)

    def token_generated(self, engine: str, request: "Request") -> None:
        self.tokens_generated.labels(engine=engine).inc()
        if request.done:
            self.requests_completed.labels(engine=engine).inc()
            if request.ttft is not None:
                self.ttft_seconds.labels(engine=engine).observe(request.ttft)
                # TPOT from first/last token timestamps only, so it is
                # exact even under decode coarsening (which fuses the
                # per-token steps in between).
                if request.generated_tokens > 1:
                    tpot = (request.rct - request.ttft) / (
                        request.generated_tokens - 1
                    )
                    self.tpot_seconds.labels(engine=engine).observe(tpot)
            self.rct_seconds.labels(engine=engine).observe(request.rct)
            self.flow_end(request.req_id, engine, time=request.finish_time)
            if self.slo is not None:
                self.slo.observe_request(engine, request)

    def request_requeued(self, engine: str) -> None:
        self.requeues.labels(engine=engine).inc()

    def preemption(self, engine: str) -> None:
        self.preemptions.labels(engine=engine).inc()

    def decode_batch(self, engine: str, size: int) -> None:
        self.batch_occupancy.labels(engine=engine).set(size)

    # ------------------------------------------------------------------
    # DMA hook (called by Transfer.run on completion)
    # ------------------------------------------------------------------
    def record_transfer(self, transfer: "Transfer", channels) -> None:
        contention = transfer.acquired_at - transfer.started_at
        for channel in channels:
            self.link_bytes.labels(channel=channel.name).inc(transfer.nbytes)
            self.link_transfers.labels(channel=channel.name).inc()
            if contention > 0:
                self.link_contention.labels(channel=channel.name).inc(contention)
        if transfer.ctx is not None:
            self.attribution.note_contention(transfer.ctx, contention)
            for channel in channels:
                track = f"link:{channel.name}"
                self.tracer.add_span(
                    "dma", track, transfer.acquired_at, transfer.finished_at,
                    request=transfer.ctx, nbytes=transfer.nbytes,
                )
                self.flow(transfer.ctx, track, time=transfer.acquired_at)

    # ------------------------------------------------------------------
    # Fault hook
    # ------------------------------------------------------------------
    def record_fault(self, kind: str, phase: str, targets=None) -> None:
        self.faults.labels(kind=kind, phase=phase).inc()
        if self.recorder is not None:
            self.recorder.on_fault(kind, phase, targets)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def attribution_report(self) -> dict:
        return self.attribution.report()

    def prometheus_text(self) -> str:
        return self.registry.to_prometheus_text()

    def metrics_dict(self) -> dict:
        return self.registry.to_dict()


# ---------------------------------------------------------------------------
# Ambient trace capture (the CLI's uniform --trace support)
# ---------------------------------------------------------------------------
#: Stack of tracers installed by :func:`capture_trace`.  Experiment
#: builders that construct engines internally (the figure functions)
#: attach :func:`active_capture_tracer` to any engine built without one,
#: so ``aqua-repro figN --trace out.json`` works with no per-experiment
#: plumbing.
_CAPTURE: list[Tracer] = []


def active_capture_tracer() -> Optional[Tracer]:
    """The innermost :func:`capture_trace` tracer, if one is active."""
    return _CAPTURE[-1] if _CAPTURE else None


@contextmanager
def capture_trace(path: Optional[str] = None,
                  tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install an ambient tracer; export it to ``path`` on exit.

    All engines/libs built by :func:`repro.experiments.harness.build_consumer_rig`
    while the context is active record into the yielded tracer (unless
    they were given their own).  The trace is written as Chrome
    trace-event JSON when ``path`` is given, even if the body raises.
    """
    tracer = tracer or Tracer()
    _CAPTURE.append(tracer)
    try:
        yield tracer
    finally:
        _CAPTURE.pop()
        if path is not None:
            tracer.export_json(path)


# ---------------------------------------------------------------------------
# Ambient observability capture (the CLI's uniform --scrape-interval support)
# ---------------------------------------------------------------------------
#: Stack of observability specs installed by :func:`capture_observability`.
#: Mirrors :func:`capture_trace`: experiment builders that construct
#: telemetry internally consult :func:`active_observability` and call
#: :meth:`Telemetry.attach_observability` with the spec, so
#: ``aqua-repro figN --scrape-interval 0.5`` needs no per-experiment
#: plumbing.  Like ambient tracing, the spec does not cross process
#: boundaries — pooled workers (``--jobs``) run without it.
_OBSERVABILITY: list[dict] = []


def active_observability() -> Optional[dict]:
    """The innermost :func:`capture_observability` spec, if any."""
    return _OBSERVABILITY[-1] if _OBSERVABILITY else None


@contextmanager
def capture_observability(
    scrape_interval: float = 1.0,
    slo_policy=None,
    postmortem_dir: Optional[str] = None,
) -> Iterator[dict]:
    """Install an ambient observability spec.

    Every telemetered rig built by
    :func:`repro.experiments.harness.build_consumer_rig` while the
    context is active gets the time-resolved layer attached with these
    settings.  The yielded dict grows a ``"hubs"`` list of the
    :class:`Telemetry` objects that adopted the spec, so the caller can
    harvest scrape stores and SLO reports after the run.
    """
    spec = {
        "scrape_interval": scrape_interval,
        "slo_policy": slo_policy,
        "postmortem_dir": postmortem_dir,
        "hubs": [],
    }
    _OBSERVABILITY.append(spec)
    try:
        yield spec
    finally:
        _OBSERVABILITY.pop()
