"""Latency attribution: where did each request's time actually go?

The attributor decomposes a request's end-to-end latency into named
components by *telescoping marks*: a timeline starts at the request's
arrival, and every call to :meth:`LatencyAttributor.mark` closes the
segment ``[last_mark, now]`` under one component label.  Because each
segment begins exactly where the previous one ended, the segments
partition ``[arrival_time, finish_time]`` with no gaps and no double
counting — per-request component sums therefore equal the end-to-end
latency *exactly* (any tail not covered by a mark is reported as
``"other"``).

Link contention is handled as a carve-out rather than its own mark:
the DMA layer reports, per request, how long a transfer sat waiting
for a channel grant (:meth:`note_contention`); the next
``offload_fetch`` segment for that request is split so the waiting
portion shows up under ``link_contention`` instead.

Component vocabulary (:data:`COMPONENTS`):

``queueing``
    Waiting in the engine's admission queue before prefill starts.
``prefill_compute``
    GPU compute time for the prompt pass.
``decode_hbm``
    Decode-step time bound by GPU compute/HBM (including batching
    overheads the engine cannot distinguish from it).
``offload_fetch``
    Time waiting on AQUA-LIB offload/fetch DMA (net of contention).
``link_contention``
    Portion of offload/fetch spent queueing for an interconnect channel.
``other``
    Residual not covered by any mark (context switches, bookkeeping).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

COMPONENTS = (
    "queueing",
    "prefill_compute",
    "decode_hbm",
    "offload_fetch",
    "link_contention",
    "other",
)


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile; NaN on empty input.

    Local copy rather than importing :func:`repro.serving.metrics.percentile`
    (which raises on empty) — aggregates over a component nobody used
    should read NaN, matching the collector convention.
    """
    if not values:
        return float("nan")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    low = int(math.floor(pos))
    high = min(low + 1, len(data) - 1)
    frac = pos - low
    return data[low] * (1.0 - frac) + data[high] * frac


@dataclass
class _Timeline:
    request: object
    last_mark: float
    segments: list[tuple[float, float, str]] = field(default_factory=list)
    pending_contention: float = 0.0


class LatencyAttributor:
    """Accumulates per-request component timelines and aggregates them."""

    def __init__(self) -> None:
        self._timelines: dict[int, _Timeline] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, request) -> None:
        """Start (or restart from arrival) the timeline for ``request``."""
        if request.req_id not in self._timelines:
            self._timelines[request.req_id] = _Timeline(
                request=request, last_mark=request.arrival_time
            )

    def mark(self, request, component: str, now: float) -> None:
        """Attribute ``[last_mark, now]`` of ``request`` to ``component``."""
        if component not in COMPONENTS:
            raise ValueError(f"unknown component {component!r}")
        self.observe(request)
        timeline = self._timelines[request.req_id]
        start = timeline.last_mark
        if now <= start:
            return
        if component == "offload_fetch" and timeline.pending_contention > 0.0:
            # Split the fetch segment: the reported channel-wait portion
            # goes to link_contention, the remainder stays offload_fetch.
            contended = min(timeline.pending_contention, now - start)
            timeline.segments.append((start, start + contended, "link_contention"))
            timeline.pending_contention -= contended
            start += contended
        if now > start:
            timeline.segments.append((start, now, component))
        timeline.last_mark = now

    def note_contention(self, req_id: Optional[int], seconds: float) -> None:
        """Record channel-wait time to carve from the next fetch mark."""
        if req_id is None or seconds <= 0.0:
            return
        timeline = self._timelines.get(req_id)
        if timeline is not None:
            timeline.pending_contention += seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def components_of(self, request, until: Optional[float] = None) -> dict[str, float]:
        """Component totals for ``request``, clipped at ``until``.

        Segments are clipped rather than dropped so sums stay exact even
        when a mark lands after ``finish_time`` (e.g. decode bookkeeping
        that completes the final token mid-step).
        """
        totals = {c: 0.0 for c in COMPONENTS}
        timeline = self._timelines.get(request.req_id)
        if timeline is None:
            return totals
        for start, end, component in timeline.segments:
            if until is not None:
                if start >= until:
                    continue
                end = min(end, until)
            totals[component] += end - start
        return totals

    def breakdown(self, request) -> dict[str, float]:
        """Full end-to-end decomposition; components sum to ``rct`` exactly."""
        if request.finish_time is None:
            raise ValueError(f"request {request.req_id} has not finished")
        totals = self.components_of(request, until=request.finish_time)
        covered = sum(totals.values())
        totals["other"] += max(0.0, request.rct - covered)
        return totals

    def finished_requests(self) -> list:
        return [
            t.request
            for t in self._timelines.values()
            if t.request.finish_time is not None
        ]

    def report(self) -> dict:
        """Attribution report over all finished requests.

        Schema::

            {
              "components": [...],            # the component vocabulary
              "requests": [
                {"req_id": ..., "ttft": ..., "rct": ..., "tokens": ...,
                 "components": {...},         # sums to rct exactly
                 "ttft_components": {...},    # clipped at first token
                 "per_token": {...}},         # components / tokens
                ...
              ],
              "aggregates": {
                "<component>": {"mean": ..., "p50": ..., "p99": ...},
                ...
              },
              "count": <finished request count>,
            }
        """
        requests = sorted(self.finished_requests(), key=lambda r: r.req_id)
        entries = []
        per_component: dict[str, list[float]] = {c: [] for c in COMPONENTS}
        for request in requests:
            components = self.breakdown(request)
            ttft_components = self.components_of(
                request, until=request.first_token_time
            )
            tokens = max(1, request.generated_tokens)
            entries.append(
                {
                    "req_id": request.req_id,
                    "ttft": request.ttft,
                    "rct": request.rct,
                    "tokens": request.generated_tokens,
                    "components": components,
                    "ttft_components": ttft_components,
                    "per_token": {c: v / tokens for c, v in components.items()},
                }
            )
            for component, value in components.items():
                per_component[component].append(value)
        aggregates = {
            component: {
                "mean": (sum(values) / len(values)) if values else float("nan"),
                "p50": _percentile(values, 50.0),
                "p99": _percentile(values, 99.0),
            }
            for component, values in per_component.items()
        }
        return {
            "components": list(COMPONENTS),
            "requests": entries,
            "aggregates": aggregates,
            "count": len(entries),
        }
