"""Declarative SLOs: rolling attainment and multi-window burn-rate alerts.

An :class:`SLObjective` states a per-tenant promise ("95% of producer
requests see first token within 1 s"; "consumer goodput stays above
2 tok/s").  An :class:`SLOTracker` turns the stream of completions and
scrape ticks into per-objective *outcomes* (good / bad), rolling
attainment over the alerting windows, and burn-rate alerts in the
multi-window style of the SRE workbook: an alert fires when the error
budget burns at ``factor``× the sustainable rate over **both** a long
window (evidence the problem is real) and a short window (evidence it
is still happening).  Alerts fire as simulated events — instants on the
``"slo"`` trace track, counter increments, and flight-recorder
triggers — at the scrape tick that detects them.

Tenancy rides the existing ``engine`` label: an objective's ``tenant``
is a substring matched against engine names (the same matching rule
fault schedules use for channels), so one policy can cover a
consumer/producer pair or a whole fleet of tenant-named engines.

Everything here is observation-only: the tracker never schedules
events or touches simulation state — it piggybacks on the scraper's
ticks, so audit digests are identical with SLO tracking on or off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.telemetry.timeseries import RingSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.request import Request
    from repro.telemetry.hub import Telemetry

#: Request-latency metrics an objective can target, mapped to the
#: request attribute (TPOT is derived; goodput is window-based).
LATENCY_METRICS = ("ttft", "tpot", "e2e")

#: All supported objective metrics.
METRICS = LATENCY_METRICS + ("goodput",)


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective for one tenant.

    Parameters
    ----------
    name:
        Stable identifier (label value on the SLO metric families).
    tenant:
        Substring matched against engine names; the objective applies
        to every engine whose name contains it.
    metric:
        ``"ttft"`` / ``"tpot"`` / ``"e2e"`` — per-request deadlines in
        seconds — or ``"goodput"`` — a tokens/s floor evaluated per
        scrape interval.
    threshold:
        The deadline (seconds) or floor (tokens/s).
    target:
        Attainment objective in (0, 1): the fraction of outcomes that
        must be good.  The error budget is ``1 - target``.
    """

    name: str
    tenant: str
    metric: str
    threshold: float
    target: float = 0.95
    description: str = ""

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; expected one of {METRICS}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.threshold <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "metric": self.metric,
            "threshold": self.threshold,
            "target": self.target,
            "description": self.description,
        }


@dataclass(frozen=True)
class BurnRateWindow:
    """One multi-window burn-rate alerting rule.

    The alert condition is ``burn(long_s) >= factor`` **and**
    ``burn(short_s) >= factor``, where ``burn(w)`` is the error rate
    over window ``w`` divided by the error budget (``1 - target``).
    A total outage burns at ``1 / (1 - target)``; sustainable burn is
    exactly 1.0.
    """

    long_s: float
    short_s: float
    factor: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s <= self.short_s:
            raise ValueError(
                f"windows must satisfy 0 < short ({self.short_s}) < long "
                f"({self.long_s})"
            )
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1 (sustainable burn), got {self.factor}")


#: Default alerting rules, scaled to simulated-minutes horizons: a fast
#: page on a hard burn and a slower ticket on a sustained one.
DEFAULT_BURN_WINDOWS = (
    BurnRateWindow(long_s=30.0, short_s=5.0, factor=6.0, severity="page"),
    BurnRateWindow(long_s=120.0, short_s=15.0, factor=2.0, severity="ticket"),
)


@dataclass
class SLOPolicy:
    """A named set of objectives sharing burn-rate alerting rules."""

    objectives: Sequence[SLObjective]
    windows: Sequence[BurnRateWindow] = DEFAULT_BURN_WINDOWS
    name: str = "slo-policy"

    def __post_init__(self) -> None:
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate objective names in policy: {names}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objectives": [o.to_dict() for o in self.objectives],
            "windows": [
                {
                    "long_s": w.long_s,
                    "short_s": w.short_s,
                    "factor": w.factor,
                    "severity": w.severity,
                }
                for w in self.windows
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SLOPolicy":
        """Rebuild a policy from :meth:`to_dict` output.

        The dict form is how policies cross process boundaries into
        pooled experiment workers (see
        :func:`repro.experiments.resilience.resilience_experiment`).
        """
        return cls(
            name=data.get("name", "slo-policy"),
            objectives=[SLObjective(**o) for o in data["objectives"]],
            windows=[BurnRateWindow(**w) for w in data["windows"]],
        )


def default_slo_policy(
    consumer: str = "flexgen",
    producer: str = "producer",
    goodput_floor: float = 1.0,
    producer_ttft: float = 2.0,
) -> SLOPolicy:
    """The two-tenant policy the consumer/producer rigs ship with.

    The memory *consumer* promises a goodput floor (long-prompt decode
    keeps streaming); the memory *producer* promises interactive TTFT
    and a per-token (TPOT) deadline.  Thresholds are deliberately loose
    for healthy runs and deliberately broken by the documented fault
    schedule's NVLink degradation and GPU failure.
    """
    return SLOPolicy(
        name="two-tenant-default",
        objectives=[
            SLObjective(
                name=f"{consumer}-goodput",
                tenant=consumer,
                metric="goodput",
                threshold=goodput_floor,
                target=0.9,
                description=f"{consumer} decode goodput >= {goodput_floor} tok/s",
            ),
            SLObjective(
                name=f"{producer}-ttft",
                tenant=producer,
                metric="ttft",
                threshold=producer_ttft,
                target=0.9,
                description=f"{producer} TTFT <= {producer_ttft}s",
            ),
            SLObjective(
                name=f"{producer}-tpot",
                tenant=producer,
                metric="tpot",
                threshold=0.5,
                target=0.9,
                description=f"{producer} time-per-output-token <= 0.5s",
            ),
        ],
    )


@dataclass
class _ObjectiveState:
    """Rolling outcomes and alert state for one objective."""

    objective: SLObjective
    #: (time, good) outcomes, pruned to the longest alerting window.
    outcomes: deque = field(default_factory=deque)
    attainment: Optional[RingSeries] = None
    #: severity -> currently-firing flag (alerts fire on rising edges).
    active: dict = field(default_factory=dict)
    good_total: int = 0
    bad_total: int = 0


class SLOTracker:
    """Evaluates an :class:`SLOPolicy` against a live telemetered run.

    Wired by :meth:`Telemetry.attach_observability
    <repro.telemetry.hub.Telemetry.attach_observability>`: request
    completions arrive through :meth:`observe_request`, goodput samples
    and burn-rate evaluation ride the scraper's tick via
    :meth:`on_scrape`.

    Attributes
    ----------
    alerts:
        Chronological list of fired alert dicts (``t``, ``slo``,
        ``severity``, ``burn_long``, ``burn_short``, ``attainment``).
    """

    def __init__(
        self,
        env,
        policy: SLOPolicy,
        telemetry: Optional["Telemetry"] = None,
        capacity: int = 4096,
    ) -> None:
        self.env = env
        self.policy = policy
        self.telemetry = telemetry
        self.alerts: list[dict] = []
        self.on_alert: list[Callable[[dict], None]] = []
        self._horizon = max(w.long_s for w in policy.windows)
        self._states = {
            o.name: _ObjectiveState(
                objective=o,
                attainment=RingSeries(f"slo:{o.name}", capacity),
            )
            for o in policy.objectives
        }
        #: Per-engine token-counter snapshot from the previous scrape
        #: tick (goodput objectives measure the delta).
        self._last_tokens: dict[str, float] = {}
        self._last_tick: Optional[float] = None
        if telemetry is not None:
            r = telemetry.registry
            self._attainment_gauge = r.gauge(
                "aqua_slo_attainment",
                "Rolling SLO attainment over the longest alert window.",
                ["slo"],
            )
            self._outcomes_counter = r.counter(
                "aqua_slo_outcomes_total",
                "SLO outcomes by objective and verdict.",
                ["slo", "verdict"],
            )
            self._alerts_counter = r.counter(
                "aqua_slo_alerts_total",
                "Burn-rate alerts fired, by objective and severity.",
                ["slo", "severity"],
            )
        else:
            self._attainment_gauge = None
            self._outcomes_counter = None
            self._alerts_counter = None

    # ------------------------------------------------------------------
    # Outcome ingestion
    # ------------------------------------------------------------------
    def observe_request(self, engine: str, request: "Request") -> None:
        """Judge one finished request against every matching objective."""
        now = self.env.now
        for state in self._states.values():
            objective = state.objective
            if objective.metric not in LATENCY_METRICS:
                continue
            if objective.tenant not in engine:
                continue
            value = self._latency_value(objective.metric, request)
            if value is None:
                continue
            self._record_outcome(state, now, value <= objective.threshold)

    @staticmethod
    def _latency_value(metric: str, request: "Request") -> Optional[float]:
        if metric == "ttft":
            return request.ttft
        if metric == "e2e":
            return request.rct
        # tpot: steady-state decode pace, robust to decode coarsening
        # because it uses only the first/last token timestamps.
        if request.ttft is None or request.rct is None:
            return None
        if request.generated_tokens <= 1:
            return None
        return (request.rct - request.ttft) / (request.generated_tokens - 1)

    def _record_outcome(self, state: _ObjectiveState, now: float, good: bool) -> None:
        state.outcomes.append((now, good))
        if good:
            state.good_total += 1
        else:
            state.bad_total += 1
        if self._outcomes_counter is not None:
            verdict = "good" if good else "bad"
            self._outcomes_counter.labels(
                slo=state.objective.name, verdict=verdict
            ).inc()

    # ------------------------------------------------------------------
    # Scrape-tick evaluation
    # ------------------------------------------------------------------
    def on_scrape(self, now: float) -> None:
        """Scraper observer: sample goodput outcomes, evaluate alerts."""
        self._sample_goodput(now)
        self._last_tick = now
        for state in self._states.values():
            self._prune(state, now)
            self._evaluate(state, now)

    def _sample_goodput(self, now: float) -> None:
        tokens_now: dict[str, float] = {}
        in_flight: dict[str, float] = {}
        if self.telemetry is not None:
            for _, labels, value in self.telemetry.tokens_generated.samples():
                tokens_now[dict(labels)["engine"]] = value
            for _, labels, value in self.telemetry.requests_submitted.samples():
                in_flight[dict(labels)["engine"]] = value
            for _, labels, value in self.telemetry.requests_completed.samples():
                engine = dict(labels)["engine"]
                in_flight[engine] = in_flight.get(engine, 0.0) - value
        last_tick = self._last_tick
        for state in self._states.values():
            objective = state.objective
            if objective.metric != "goodput":
                continue
            if last_tick is None or now <= last_tick:
                continue  # first tick: no interval to judge yet
            # Only judge intervals with live demand: the tenant must
            # have requests in flight and be past its first token.
            # Idle gaps and prompt prefill are not goodput violations
            # (TTFT objectives own prefill latency); a *stalled decode*
            # — in-flight work, tokens flowing before, none now — is.
            demand = any(
                count > 0
                for engine, count in in_flight.items()
                if objective.tenant in engine
            )
            streamed = any(
                value > 0
                for engine, value in tokens_now.items()
                if objective.tenant in engine
            )
            if not (demand and streamed):
                continue
            dt = now - last_tick
            rate = sum(
                (value - self._last_tokens.get(engine, 0.0)) / dt
                for engine, value in tokens_now.items()
                if objective.tenant in engine
            )
            self._record_outcome(state, now, rate >= objective.threshold)
        self._last_tokens = tokens_now

    def _prune(self, state: _ObjectiveState, now: float) -> None:
        horizon = now - self._horizon
        outcomes = state.outcomes
        while outcomes and outcomes[0][0] < horizon:
            outcomes.popleft()

    def _evaluate(self, state: _ObjectiveState, now: float) -> None:
        objective = state.objective
        attainment = self.attainment(objective.name, self._horizon, now)
        state.attainment.append(now, attainment if attainment is not None else 1.0)
        if self._attainment_gauge is not None:
            self._attainment_gauge.labels(slo=objective.name).set(
                attainment if attainment is not None else 1.0
            )
        budget = 1.0 - objective.target
        for window in self.policy.windows:
            burn_long = self._burn(state, now, window.long_s, budget)
            burn_short = self._burn(state, now, window.short_s, budget)
            firing = (
                burn_long is not None
                and burn_short is not None
                and burn_long >= window.factor
                and burn_short >= window.factor
            )
            was_firing = state.active.get(window.severity, False)
            state.active[window.severity] = firing
            if firing and not was_firing:
                self._fire(state, now, window, burn_long, burn_short, attainment)

    def _burn(
        self, state: _ObjectiveState, now: float, window_s: float, budget: float
    ) -> Optional[float]:
        """Error-budget burn rate over the trailing window, or ``None``
        when the window holds no outcomes (no data is not an outage)."""
        start = now - window_s
        total = bad = 0
        for t, good in state.outcomes:
            if t < start:
                continue
            total += 1
            if not good:
                bad += 1
        if total == 0:
            return None
        return (bad / total) / budget

    def _fire(
        self,
        state: _ObjectiveState,
        now: float,
        window: BurnRateWindow,
        burn_long: float,
        burn_short: float,
        attainment: Optional[float],
    ) -> None:
        alert = {
            "t": now,
            "slo": state.objective.name,
            "tenant": state.objective.tenant,
            "metric": state.objective.metric,
            "severity": window.severity,
            "factor": window.factor,
            "window_long_s": window.long_s,
            "window_short_s": window.short_s,
            "burn_long": burn_long,
            "burn_short": burn_short,
            "attainment": attainment,
        }
        self.alerts.append(alert)
        if self._alerts_counter is not None:
            self._alerts_counter.labels(
                slo=state.objective.name, severity=window.severity
            ).inc()
        if self.telemetry is not None:
            self.telemetry.tracer.add_instant(
                f"slo-alert:{state.objective.name}",
                "slo",
                time=now,
                severity=window.severity,
                burn_long=burn_long,
                burn_short=burn_short,
            )
        for callback in self.on_alert:
            callback(alert)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def attainment(
        self, objective_name: str, window_s: float, now: Optional[float] = None
    ) -> Optional[float]:
        """Fraction of good outcomes over the trailing window, or
        ``None`` when the window holds no outcomes."""
        if now is None:
            now = self.env.now
        state = self._states[objective_name]
        start = now - window_s
        total = good = 0
        for t, ok in state.outcomes:
            if t < start:
                continue
            total += 1
            if ok:
                good += 1
        if total == 0:
            return None
        return good / total

    def report(self) -> dict:
        """Pickle/JSON-safe summary: per-objective attainment series,
        lifetime outcome totals and every fired alert."""
        objectives = {}
        for name, state in self._states.items():
            total = state.good_total + state.bad_total
            objectives[name] = {
                "objective": state.objective.to_dict(),
                "good": state.good_total,
                "bad": state.bad_total,
                "attainment_overall": (
                    state.good_total / total if total else None
                ),
                "attainment_series": state.attainment.to_dict(),
            }
        return {
            "policy": self.policy.to_dict(),
            "objectives": objectives,
            "alerts": list(self.alerts),
        }
