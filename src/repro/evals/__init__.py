"""Replication-grade evaluation suite for the Aqua reproduction.

One evaluator per figure/table claim the paper makes, a runner that
executes the needed experiment cells through
:mod:`repro.experiments.pool` (parallel + content-addressed cache), and
a scored ``REPLICATION.json`` + markdown report.  The one-command
verdict: ``aqua-repro replicate``.  See ``docs/replication.md`` for the
claim-by-claim traceability table.
"""

from repro.evals.checks import (
    FAIL,
    PASS,
    SKIP,
    CheckResult,
    MissingMetric,
)
from repro.evals.registry import REGISTRY, Claim, EvalRegistry
from repro.evals.runner import evaluate_claim, replicate, run_cell
from repro.evals.report import render_markdown, render_text, write_markdown
from repro.evals.schema import (
    REPLICATION_SCHEMA,
    SchemaError,
    dump_replication,
    load_replication,
    validate_replication,
    write_replication,
)

# Importing the catalog registers the built-in claims.
import repro.evals.claims  # noqa: F401  (side-effect import)


def get_claims():
    """All registered claims, in registration order."""
    return REGISTRY.claims()


__all__ = [
    "PASS",
    "FAIL",
    "SKIP",
    "CheckResult",
    "MissingMetric",
    "Claim",
    "EvalRegistry",
    "REGISTRY",
    "REPLICATION_SCHEMA",
    "SchemaError",
    "replicate",
    "run_cell",
    "evaluate_claim",
    "get_claims",
    "render_text",
    "render_markdown",
    "write_markdown",
    "dump_replication",
    "write_replication",
    "load_replication",
    "validate_replication",
]
