"""The replication runner: execute cells, score claims, build the verdict.

:func:`replicate` is the engine behind ``aqua-repro replicate``.  It

1. selects claims from the registry (all of them, or a ``--only``
   subset),
2. executes each *distinct* experiment cell the claims consume exactly
   once through :mod:`repro.experiments.pool` — so ``--jobs N`` fans
   cells out over worker processes and the content-addressed
   :class:`~repro.experiments.pool.RunCache` replays unchanged cells
   instead of re-simulating them (only cells whose code changed
   recompute on a warm cache),
3. scores every claim PASS/FAIL/SKIP with measured-vs-expected deltas,
   and
4. returns a schema-valid replication document
   (:mod:`repro.evals.schema`).

Cell failures are *contained*: the pool task (:func:`run_cell`) catches
the experiment's exception and returns an error record, so a broken
figure scores its claims SKIP (with the error in ``detail``) while
every other claim still gets a verdict.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.evals.checks import SKIP, CheckResult, MissingMetric
from repro.evals.registry import REGISTRY, Claim, EvalRegistry
from repro.evals.schema import REPLICATION_SCHEMA, validate_replication
from repro.experiments.pool import RunCache, RunSpec, code_fingerprint, run_specs

# Importing the catalog populates the default registry.
import repro.evals.claims  # noqa: F401  (side-effect import)


def run_cell(name: str) -> dict:
    """Pool task: run one ``runall`` experiment cell, containing errors.

    Module-level and fed only plain data, so it is spawn-safe and
    cacheable like every other pool task.  Returns ``{"ok": True,
    "value": ...}`` or ``{"ok": False, "error": ...}`` — the runner
    converts errored cells into SKIP verdicts instead of crashing.
    """
    from repro.experiments.runall import EXPERIMENTS

    try:
        return {"ok": True, "value": EXPERIMENTS[name]()}
    except Exception as exc:  # noqa: BLE001 - contained by design
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def evaluate_claim(claim: Claim, cells: dict) -> dict:
    """Score one claim against the (possibly partial) cell results.

    ``cells`` maps experiment name → :func:`run_cell` payload.  Missing
    or errored cells, absent/None/NaN metrics and check bugs all score
    SKIP — a replication report is always produced.
    """
    errors = []
    results = {}
    for name in claim.experiments:
        payload = cells.get(name)
        if payload is None:
            errors.append(f"cell {name} was not run")
        elif not payload.get("ok"):
            errors.append(f"cell {name} failed: {payload.get('error')}")
        else:
            results[name] = payload["value"]
    if errors:
        outcome = CheckResult(SKIP, detail="; ".join(errors))
    else:
        try:
            outcome = claim.check(results, claim.tolerance)
        except MissingMetric as exc:
            outcome = CheckResult(SKIP, detail=str(exc))
        except Exception as exc:  # noqa: BLE001 - never crash the report
            outcome = CheckResult(
                SKIP, detail=f"check raised {type(exc).__name__}: {exc}"
            )
    return {
        "id": claim.id,
        "figure": claim.figure,
        "claim": claim.claim,
        "experiments": list(claim.experiments),
        "check": claim.check.__name__,
        "tolerance": dict(claim.tolerance),
        "expected": claim.expected or outcome.expected,
        "status": outcome.status,
        "measured": outcome.measured,
        "delta": outcome.delta,
        "detail": outcome.detail,
    }


def replicate(
    only: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    registry: Optional[EvalRegistry] = None,
) -> dict:
    """Run the replication suite; return a schema-valid document.

    ``only`` selects claims by id, id prefix or experiment name
    (see :meth:`~repro.evals.registry.EvalRegistry.select`); ``jobs``
    and ``cache_dir`` behave exactly like the rest of the experiment
    CLI (``docs/parallelism.md``).
    """
    registry = registry if registry is not None else REGISTRY
    claims = registry.select(only)
    names = registry.experiments(claims)
    say = progress if progress is not None else (lambda line: None)

    cache = RunCache(cache_dir) if cache_dir else None
    specs = [
        RunSpec(task=f"{__name__}:run_cell", kwargs={"name": name}, label=name)
        for name in names
    ]
    started = time.perf_counter()
    results = run_specs(specs, jobs=jobs, cache=cache, progress=say)
    elapsed = time.perf_counter() - started

    cells = {}
    cell_meta = {}
    for name, result in zip(names, results):
        cells[name] = result.value
        cell_meta[name] = {
            "seconds": round(result.seconds, 3),
            "cached": result.cached,
            "ok": bool(result.value.get("ok")),
        }

    scored = [evaluate_claim(claim, cells) for claim in claims]
    counts = {
        "total": len(scored),
        "pass": sum(1 for c in scored if c["status"] == "PASS"),
        "fail": sum(1 for c in scored if c["status"] == "FAIL"),
        "skip": sum(1 for c in scored if c["status"] == "SKIP"),
    }
    doc = {
        "schema": REPLICATION_SCHEMA,
        "code_fingerprint": code_fingerprint(),
        "jobs": jobs,
        "cache": (
            {"dir": str(cache.dir), **cache.stats.to_dict()} if cache else None
        ),
        "seconds": round(elapsed, 3),
        "cells": cell_meta,
        "claims": scored,
        "summary": {
            **counts,
            "verdict": "FAIL" if counts["fail"] else "PASS",
        },
    }
    return validate_replication(doc)
