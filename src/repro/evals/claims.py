"""The claim catalog: every figure/table result the paper states.

Each claim quotes (or tightly paraphrases) a result from the Aqua
paper's evaluation, names the `repro.experiments.runall` cell(s) that
measure it, and scores the measurement against a declared tolerance
band.  Bands are deliberately loose around the measured values recorded
in ``EXPERIMENTS.md`` — the reproduction target is the paper's *shape*
(orderings, starvation gaps, speedup factors), not bit-level numbers on
different hardware; see the "tolerance-band rationale" section of
``EXPERIMENTS.md`` and the per-claim traceability table in
``docs/replication.md``.

Importing this module populates :data:`repro.evals.registry.REGISTRY`.
"""

from __future__ import annotations

from repro.evals.checks import (
    CheckResult,
    FAIL,
    PASS,
    MissingMetric,
    check_all,
    check_band,
    metric,
    ratio,
)
from repro.evals.registry import REGISTRY, Claim

# Model-name keys as they appear in experiment results (kept in sync
# with repro.models presets; tests/test_evals.py guards the spelling).
_AUDIOGEN = "AudioGen"
_SD = "StableDiffusion-1.5"
_LLAMA = "Llama-2-13B"


# ---------------------------------------------------------------------------
# Figure 1 — motivation: batching starves, CFS fixes TTFT, AQUA recovers RCT
# ---------------------------------------------------------------------------
def check_fig01_starvation(results, tol) -> CheckResult:
    s = results["fig01"]
    gap = ratio(metric(s, "vllm", "ttft_p95"), metric(s, "cfs-dram", "ttft_p95"))
    return check_band(gap, tol["min_ttft_gap"], None, "vllm_ttft_p95 / cfs_ttft_p95")


def check_fig01_rct_recovery(results, tol) -> CheckResult:
    s = results["fig01"]
    vllm = metric(s, "vllm", "rct_mean")
    cfs = metric(s, "cfs-dram", "rct_mean")
    aqua = metric(s, "aqua", "rct_mean")
    penalty = ratio(aqua, vllm)
    return check_all(
        [
            check_band(
                penalty, None, tol["max_aqua_rct_penalty"], "aqua_rct / vllm_rct"
            ),
            check_band(ratio(aqua, cfs), None, 1.0, "aqua_rct / cfs_dram_rct"),
        ]
    )


# ---------------------------------------------------------------------------
# Figure 2 — memory- vs compute-bound contention ordering
# ---------------------------------------------------------------------------
def check_fig02_producer_headroom(results, tol) -> CheckResult:
    rows = results["fig02"]
    subchecks = []
    for model in (_AUDIOGEN, _SD):
        series = metric(rows, model)
        peak = max(series, key=lambda r: metric(r, "throughput"))
        subchecks.append(
            check_band(
                metric(peak, "free_gib"),
                tol["min_producer_free_gib"],
                None,
                f"{model} free GiB at peak throughput",
            )
        )
    return check_all(subchecks)


def check_fig02_llm_exhaustion(results, tol) -> CheckResult:
    series = metric(results["fig02"], _LLAMA)
    last = series[-1] if series else {}
    return check_band(
        metric(last, "free_gib"),
        None,
        tol["max_llm_free_gib"],
        f"{_LLAMA} free GiB at largest feasible batch",
    )


# ---------------------------------------------------------------------------
# Figure 3 — interconnect bandwidth curve + producer sharing impact
# ---------------------------------------------------------------------------
def check_fig03a_small_transfers(results, tol) -> CheckResult:
    rows = metric(results["fig03"], "bandwidth")
    smallest = min(rows, key=lambda r: metric(r, "size_bytes"))
    rel = ratio(metric(smallest, "nvlink_gbps"), metric(smallest, "pcie_gbps"))
    return check_band(
        rel, None, tol["max_smallbuf_advantage"], "nvlink/pcie at smallest buffer"
    )


def check_fig03a_peak_bandwidth(results, tol) -> CheckResult:
    rows = metric(results["fig03"], "bandwidth")
    nvlink_peak = max(metric(r, "nvlink_gbps") for r in rows)
    pcie_peak = max(metric(r, "pcie_gbps") for r in rows)
    return check_all(
        [
            check_band(
                nvlink_peak,
                tol["nvlink_peak_lo"],
                tol["nvlink_peak_hi"],
                "NVLink peak GB/s",
            ),
            check_band(
                ratio(nvlink_peak, pcie_peak),
                tol["min_peak_ratio"],
                None,
                "NVLink/PCIe peak ratio",
            ),
        ]
    )


def check_fig03b_producer_impact(results, tol) -> CheckResult:
    impact = metric(results["fig03"], "sharing", "impact_fraction")
    return check_band(
        impact, None, tol["max_impact_fraction"], "producer throughput impact"
    )


# ---------------------------------------------------------------------------
# Figure 7 — long-prompt inference: AQUA ~6x over FlexGen-to-DRAM
# ---------------------------------------------------------------------------
def check_fig07_ordering(results, tol) -> CheckResult:
    out = results["fig07"]
    base = metric(out, "flexgen-dram", "tokens")
    subchecks = [
        check_band(
            ratio(metric(data, "tokens"), base), 1.0, None, f"{label} tokens / flexgen"
        )
        for label, data in out.items()
        if label != "flexgen-dram"
    ]
    return check_all(subchecks)


def check_fig07_speedup(results, tol) -> CheckResult:
    out = results["fig07"]
    subchecks = [
        check_band(
            metric(data, "speedup"),
            tol["speedup_lo"],
            tol["speedup_hi"],
            f"{label} speedup",
        )
        for label, data in out.items()
        if label != "flexgen-dram"
    ]
    return check_all(subchecks)


# ---------------------------------------------------------------------------
# Figure 8 — LoRA serving: up to ~1.8x RCT, producer-independent
# ---------------------------------------------------------------------------
def check_fig08_gain(results, tol) -> CheckResult:
    s = results["fig08"]
    gain = ratio(
        metric(s, "baseline", "rct_mean"), metric(s, "aqua-0", "rct_mean")
    )
    return check_band(gain, tol["gain_lo"], tol["gain_hi"], "baseline/aqua rct_mean")


def check_fig08_producer_equivalence(results, tol) -> CheckResult:
    s = results["fig08"]
    means = [
        metric(s, label, "rct_mean") for label in ("aqua-0", "aqua-1", "aqua-llm")
    ]
    spread = ratio(max(means) - min(means), min(means))
    return check_band(
        spread, None, tol["max_rel_spread"], "relative rct spread across producers"
    )


# ---------------------------------------------------------------------------
# Figure 9 — CFS responsiveness: the starvation gap at every rate
# ---------------------------------------------------------------------------
def check_fig09_starvation_gap(results, tol) -> CheckResult:
    subchecks = []
    for rate, systems in results["fig09"].items():
        vllm = metric(systems, "vllm", "ttft_p95")
        cfs = metric(systems, "cfs-dram", "ttft_p95")
        aqua = metric(systems, "aqua", "ttft_p95")
        subchecks.append(
            check_band(
                ratio(vllm, cfs), tol["min_ttft_gap"], None, f"rate {rate} vllm/cfs ttft"
            )
        )
        subchecks.append(
            check_band(
                ratio(aqua, cfs),
                None,
                tol["max_aqua_vs_cfs"],
                f"rate {rate} aqua/cfs ttft",
            )
        )
    return check_all(subchecks)


def check_fig09_rct_ordering(results, tol) -> CheckResult:
    subchecks = []
    for rate, systems in results["fig09"].items():
        vllm = metric(systems, "vllm", "rct_mean")
        cfs = metric(systems, "cfs-dram", "rct_mean")
        aqua = metric(systems, "aqua", "rct_mean")
        subchecks.append(
            check_band(
                ratio(aqua, vllm),
                None,
                tol["max_aqua_rct_penalty"],
                f"rate {rate} aqua/vllm rct",
            )
        )
        subchecks.append(
            check_band(ratio(aqua, cfs), None, 1.0, f"rate {rate} aqua/cfs rct")
        )
    return check_all(subchecks)


# ---------------------------------------------------------------------------
# Figure 10 — elastic sharing: donate → reclaim dip → recovery
# ---------------------------------------------------------------------------
def _window_mean(series, lo: float, hi: float) -> float:
    values = [v for t, v in series if lo <= t < hi]
    if not values:
        raise MissingMetric(f"no throughput samples in window [{lo}, {hi})")
    return sum(values) / len(values)


def check_fig10_sawtooth(results, tol) -> CheckResult:
    out = results["fig10"]
    series = metric(out, "consumer_tokens_per_s")
    phases = metric(out, "phases")
    p1, p2, end = (
        metric(phases, "phase1"),
        metric(phases, "phase2"),
        metric(phases, "end"),
    )
    fast = _window_mean(series, p1 + 20.0, p2)
    dip = _window_mean(series, p2 + 5.0, p2 + 30.0)
    recovered = _window_mean(series, end - 40.0, end)
    return check_all(
        [
            check_band(
                ratio(fast, max(dip, 1e-9)),
                tol["min_fast_over_reclaimed"],
                None,
                "fast-path / reclaimed tokens/s",
            ),
            check_band(
                ratio(recovered, fast),
                tol["min_recovery_fraction"],
                None,
                "post-recovery / fast-path tokens/s",
            ),
        ]
    )


# ---------------------------------------------------------------------------
# Figure 11 — producer-side cost of donating: "very similar" RCTs
# ---------------------------------------------------------------------------
def check_fig11_producer_overhead(results, tol) -> CheckResult:
    s = results["fig11"]
    subchecks = [
        check_band(
            ratio(metric(s, "aqua", q), metric(s, "baseline", q)),
            None,
            tol["max_overhead_ratio"],
            f"aqua/baseline producer rct {q}",
        )
        for q in ("p50", "p95")
    ]
    return check_all(subchecks)


# ---------------------------------------------------------------------------
# Figure 12 — benefit grows with offloaded tensor size
# ---------------------------------------------------------------------------
def check_fig12_size_ordering(results, tol) -> CheckResult:
    s = results["fig12"]
    small = metric(s, "160MB", "saved")
    large = metric(s, "320MB", "saved")
    return check_all(
        [
            check_band(small, 0.0, None, "160MB rct_mean saved (s)"),
            check_band(large - small, 0.0, None, "320MB saved - 160MB saved (s)"),
        ]
    )


# ---------------------------------------------------------------------------
# Figure 13 — chatbot long-term responsiveness (§8)
# ---------------------------------------------------------------------------
def check_fig13_chatbot(results, tol) -> CheckResult:
    s = results["fig13"]
    worst_gap = ratio(
        metric(s, "vllm", "ttft_max"), metric(s, "aqua", "ttft_max")
    )
    rct_penalty = ratio(metric(s, "aqua", "rct_mean"), metric(s, "vllm", "rct_mean"))
    return check_all(
        [
            check_band(
                worst_gap, tol["min_worstcase_ttft_gap"], None, "vllm/aqua ttft_max"
            ),
            check_band(
                rct_penalty, None, tol["max_aqua_rct_penalty"], "aqua/vllm rct_mean"
            ),
        ]
    )


# ---------------------------------------------------------------------------
# Figure 14 / §A.1 — placer convergence: 50/50 LLM clusters solve fast
# ---------------------------------------------------------------------------
def check_fig14_placer_ordering(results, tol) -> CheckResult:
    rows = metric(results["fig14"], "rows")
    subchecks = []
    for row in rows:
        gpus = metric(row, "gpus")
        subchecks.append(
            check_band(
                metric(row, "llm5050_seconds"),
                None,
                tol["max_llm5050_seconds"],
                f"{gpus}-GPU 50/50 solve s",
            )
        )
        subchecks.append(
            check_band(
                metric(row, "mixed_seconds") - metric(row, "llm5050_seconds"),
                0.0,
                None,
                f"{gpus}-GPU mixed - 50/50 solve s",
            )
        )
    return check_all(subchecks)


# ---------------------------------------------------------------------------
# Figures 15/16/17 — same CFS improvements for every producer/topology
# ---------------------------------------------------------------------------
def check_fig15_17_invariance(results, tol) -> CheckResult:
    subchecks = []
    aqua_p95s = []
    for name in ("fig15", "fig16", "fig17"):
        systems = results[name]
        vllm = metric(systems, "vllm", "ttft_p95")
        aqua = metric(systems, "aqua", "ttft_p95")
        aqua_p95s.append(aqua)
        subchecks.append(
            check_band(
                ratio(vllm, aqua), tol["min_ttft_gap"], None, f"{name} vllm/aqua ttft"
            )
        )
    spread = ratio(max(aqua_p95s) - min(aqua_p95s), min(aqua_p95s))
    subchecks.append(
        check_band(
            spread, None, tol["max_rel_spread"], "aqua ttft_p95 spread across variants"
        )
    )
    return check_all(subchecks)


# ---------------------------------------------------------------------------
# Figure 18 — NVSwitch pairs match the 2-GPU direct-NVLink reference
# ---------------------------------------------------------------------------
def check_fig18_nvswitch(results, tol) -> CheckResult:
    out = results["fig18"]
    reference = metric(out, "two_gpu_reference_tokens")
    per_consumer = metric(out, "per_consumer_tokens")
    if not per_consumer:
        raise MissingMetric("fig18 measured no consumers")
    worst = min(ratio(tokens, reference) for tokens in per_consumer)
    return check_band(
        worst,
        tol["min_reference_fraction"],
        None,
        "worst consumer / 2-GPU reference tokens",
    )


# ---------------------------------------------------------------------------
# Tables 1–3 — the workload inventory is complete
# ---------------------------------------------------------------------------
def check_tables_inventory(results, tol) -> CheckResult:
    t = results["tables"]
    rows1, rows2, rows3 = (
        metric(t, "table1"),
        metric(t, "table2"),
        metric(t, "table3"),
    )
    counts = (len(rows1), len(rows2), len(rows3))
    ok = counts == (3, 2, 2)
    models = " ".join(str(metric(r, "model")) for rows in (rows1, rows2, rows3) for r in rows)
    for required in ("OPT-30B", "Mistral-7B", "CodeLlama-34B", _LLAMA, "AudioGen"):
        ok = ok and required in models
    return CheckResult(
        status=PASS if ok else FAIL,
        measured={"rows": counts},
        expected="3 deficit + 2 elastic-LLM + 2 producer rows, all models named",
        detail="" if ok else f"inventory incomplete: {counts} rows, models: {models}",
    )


# ---------------------------------------------------------------------------
# Cluster serving frontier (docs/frontier.md) — routing + overload control
# on top of hardware.cluster; an extension beyond the paper's single
# scale-up domain (ROADMAP item 1), held to the same claim discipline.
# ---------------------------------------------------------------------------
def _frontier_cells(results):
    grid = metric(results["frontier"], "grid")
    if not grid:
        raise MissingMetric("frontier sweep produced an empty grid")
    return grid


def check_frontier_conservation(results, tol) -> CheckResult:
    subchecks = []
    for policy, cells in _frontier_cells(results).items():
        for cell in cells:
            label = f"{policy}@{metric(cell, 'rate'):g}"
            drift = float(
                metric(cell, "offered")
                - metric(cell, "routed")
                - metric(cell, "shed_total")
            )
            subchecks.append(
                check_band(drift, 0.0, 0.0, f"{label} offered - routed - shed")
            )
            subchecks.append(
                check_band(
                    float(bool(metric(cell, "ledger_ok"))),
                    1.0,
                    1.0,
                    f"{label} ledger verdict",
                )
            )
    return check_all(subchecks)


def check_frontier_low_load(results, tol) -> CheckResult:
    subchecks = []
    for policy, cells in _frontier_cells(results).items():
        cell = cells[0]  # lowest offered load in the grid
        rate = metric(cell, "rate")
        subchecks.append(
            check_band(
                metric(cell, "attainment"),
                tol["min_low_load_attainment"],
                None,
                f"{policy} attainment at {rate:g} req/s",
            )
        )
        subchecks.append(
            check_band(
                metric(cell, "shed_rate"),
                None,
                tol["max_low_load_shed"],
                f"{policy} shed rate at {rate:g} req/s",
            )
        )
        subchecks.append(
            check_band(
                ratio(metric(cell, "goodput"), rate),
                tol["goodput_frac_lo"],
                tol["goodput_frac_hi"],
                f"{policy} goodput/offered at {rate:g} req/s",
            )
        )
    return check_all(subchecks)


def check_frontier_overload(results, tol) -> CheckResult:
    subchecks = []
    for policy, cells in _frontier_cells(results).items():
        shed_rates = [metric(c, "shed_rate") for c in cells]
        monotone = all(
            a <= b + 1e-12 for a, b in zip(shed_rates, shed_rates[1:])
        )
        subchecks.append(
            check_band(
                float(monotone),
                1.0,
                1.0,
                f"{policy} shed rate monotone in offered load {shed_rates}",
            )
        )
        top = cells[-1]
        subchecks.append(
            check_band(
                metric(top, "shed_rate"),
                tol["min_overload_shed"],
                None,
                f"{policy} shed rate at {metric(top, 'rate'):g} req/s",
            )
        )
        best_goodput = max(metric(c, "goodput") for c in cells)
        subchecks.append(
            check_band(
                ratio(metric(top, "goodput"), best_goodput),
                tol["min_overload_goodput_frac"],
                None,
                f"{policy} overload goodput / best goodput",
            )
        )
    return check_all(subchecks)


# ---------------------------------------------------------------------------
# §6.1 — end-to-end cluster placement leaves no consumer unmatched
# ---------------------------------------------------------------------------
def check_e2e_placement(results, tol) -> CheckResult:
    out = results["e2e"]
    subchecks = []
    for split in ("balanced", "llm_heavy"):
        unmatched = metric(out, split, "unmatched")
        subchecks.append(
            check_band(float(len(unmatched)), None, 0.0, f"{split} unmatched consumers")
        )
        pairs = metric(out, split, "pairs")
        subchecks.append(
            check_band(float(len(pairs)), tol["min_pairs"], None, f"{split} pairs")
        )
    return check_all(subchecks)


# ---------------------------------------------------------------------------
# Registration — one entry per figure/table claim
# ---------------------------------------------------------------------------
CLAIMS = [
    Claim(
        id="fig01-starvation",
        figure="Figure 1",
        claim="vLLM's batch admission starves late arrivals (TTFT spikes once "
        "~20 requests exhaust KV memory); CFS keeps TTFT flat.",
        experiments=("fig01",),
        check=check_fig01_starvation,
        tolerance={"min_ttft_gap": 1.5},
        expected="vLLM TTFT p95 at least 1.5x CFS-over-DRAM's (measured ~2x at 5 req/s)",
    ),
    Claim(
        id="fig01-rct-recovery",
        figure="Figure 1",
        claim="CFS over DRAM costs ~1.5-2x RCT; AQUA recovers most of that, "
        "ending near vLLM's RCT.",
        experiments=("fig01",),
        check=check_fig01_rct_recovery,
        tolerance={"max_aqua_rct_penalty": 1.5},
        expected="AQUA mean RCT <= 1.5x vLLM's and below CFS-over-DRAM's",
    ),
    Claim(
        id="fig02-producer-headroom",
        figure="Figure 2",
        claim="Image/audio generation is compute-bound: throughput plateaus "
        "with tens of GB of HBM still free.",
        experiments=("fig02",),
        check=check_fig02_producer_headroom,
        tolerance={"min_producer_free_gib": 10.0},
        expected="AudioGen and StableDiffusion keep >= 10 GiB free at peak throughput",
    ),
    Claim(
        id="fig02-llm-exhaustion",
        figure="Figure 2",
        claim="LLM inference is memory-bound: free memory ~0 at peak "
        "throughput (the KV cache exhausts HBM).",
        experiments=("fig02",),
        check=check_fig02_llm_exhaustion,
        tolerance={"max_llm_free_gib": 2.0},
        expected="Llama-2-13B has <= 2 GiB free at its largest feasible batch",
    ),
    Claim(
        id="fig03a-small-transfers",
        figure="Figure 3a",
        claim="At small (~4 KB) transfers NVLink is nearly as slow as PCIe — "
        "latency dominates.",
        experiments=("fig03",),
        check=check_fig03a_small_transfers,
        tolerance={"max_smallbuf_advantage": 2.0},
        expected="NVLink <= 2x PCIe effective bandwidth at the smallest buffer",
    ),
    Claim(
        id="fig03a-peak-bandwidth",
        figure="Figure 3a",
        claim="Large transfers reach ~250 GB/s over NVLink, an order of "
        "magnitude above PCIe.",
        experiments=("fig03",),
        check=check_fig03a_peak_bandwidth,
        tolerance={"nvlink_peak_lo": 200.0, "nvlink_peak_hi": 280.0, "min_peak_ratio": 5.0},
        expected="NVLink peak within [200, 280] GB/s and >= 5x PCIe peak",
    ),
    Claim(
        id="fig03b-producer-impact",
        figure="Figure 3b",
        claim="Serving NVLink offloads costs the producer <5% throughput.",
        experiments=("fig03",),
        check=check_fig03b_producer_impact,
        tolerance={"max_impact_fraction": 0.10},
        expected="impact fraction <= 0.10 (batch quantization lands runs at 1-6%)",
    ),
    Claim(
        id="fig07-ordering",
        figure="Figure 7",
        claim="AQUA outpaces FlexGen-to-DRAM on long-prompt inference with "
        "every producer pairing (SD, AudioGen, Llama).",
        experiments=("fig07",),
        check=check_fig07_ordering,
        tolerance={},
        expected="every AQUA variant generates more tokens than FlexGen-to-DRAM",
    ),
    Claim(
        id="fig07-speedup",
        figure="Figure 7",
        claim="AQUA generates ~6x more tokens than FlexGen in the same window.",
        experiments=("fig07",),
        check=check_fig07_speedup,
        tolerance={"speedup_lo": 4.0, "speedup_hi": 10.0},
        expected="speedup within [4, 10]x for every producer pairing (measured ~7x)",
    ),
    Claim(
        id="fig08-gain",
        figure="Figure 8",
        claim="AQUA improves LoRA request completion times up to ~1.8x.",
        experiments=("fig08",),
        check=check_fig08_gain,
        tolerance={"gain_lo": 1.4, "gain_hi": 2.6},
        expected="baseline/AQUA mean RCT within [1.4, 2.6]x (measured ~1.9x)",
    ),
    Claim(
        id="fig08-producer-equivalence",
        figure="Figure 8",
        claim="The LoRA benefit is identical whether the producer is SD, "
        "SD-XL or a Llama-2-13B LLM.",
        experiments=("fig08",),
        check=check_fig08_producer_equivalence,
        tolerance={"max_rel_spread": 0.15},
        expected="mean RCT spread across the three producers <= 15%",
    ),
    Claim(
        id="fig09-starvation-gap",
        figure="Figure 9",
        claim="CFS cuts TTFT ~4x vs vLLM's batching (the starvation gap), "
        "and AQUA preserves the CFS TTFT.",
        experiments=("fig09",),
        check=check_fig09_starvation_gap,
        tolerance={"min_ttft_gap": 1.5, "max_aqua_vs_cfs": 1.3},
        expected="vLLM TTFT p95 >= 1.5x CFS's at every rate; AQUA within 1.3x of CFS",
    ),
    Claim(
        id="fig09-rct-ordering",
        figure="Figure 9",
        claim="AQUA's RCT lands near vLLM's, below CFS-over-DRAM's penalty.",
        experiments=("fig09",),
        check=check_fig09_rct_ordering,
        tolerance={"max_aqua_rct_penalty": 1.3},
        expected="AQUA mean RCT <= 1.3x vLLM's and <= CFS-over-DRAM's at every rate",
    ),
    Claim(
        id="fig10-sawtooth",
        figure="Figure 10",
        claim="The producer donates when idle, a heavy burst reclaims the "
        "memory (denting consumer throughput), and re-donation restores it.",
        experiments=("fig10",),
        check=check_fig10_sawtooth,
        tolerance={"min_fast_over_reclaimed": 3.0, "min_recovery_fraction": 0.6},
        expected="fast path >= 3x reclaimed-window tokens/s; recovery >= 60% of fast path",
    ),
    Claim(
        id="fig11-producer-overhead",
        figure="Figure 11",
        claim="Baseline and AQUA producer RCTs are very similar — donating "
        "costs the producer almost nothing.",
        experiments=("fig11",),
        check=check_fig11_producer_overhead,
        tolerance={"max_overhead_ratio": 1.05},
        expected="AQUA producer RCT p50/p95 within 5% of the baseline's",
    ),
    Claim(
        id="fig12-size-ordering",
        figure="Figure 12",
        claim="Larger offloaded tensors benefit more: 320 MB adapters save "
        "more RCT than 160 MB ones (same compute, more I/O).",
        experiments=("fig12",),
        check=check_fig12_size_ordering,
        tolerance={},
        expected="saved RCT positive at 160 MB and strictly larger at 320 MB",
    ),
    Claim(
        id="fig13-chatbot",
        figure="Figure 13",
        claim="Without CFS some users repeatedly hit unresponsiveness; with "
        "AQUA worst-case TTFT collapses at near-vLLM RCT.",
        experiments=("fig13",),
        check=check_fig13_chatbot,
        tolerance={"min_worstcase_ttft_gap": 2.0, "max_aqua_rct_penalty": 1.2},
        expected="vLLM worst TTFT >= 2x AQUA's; AQUA mean RCT <= 1.2x vLLM's",
    ),
    Claim(
        id="fig14-placer-ordering",
        figure="Figure 14 / §A.1",
        claim="50/50 LLM clusters solve in under a second; mixed-modality "
        "instances are the slow case.",
        experiments=("fig14",),
        check=check_fig14_placer_ordering,
        tolerance={"max_llm5050_seconds": 2.0},
        expected="50/50 solves <= 2 s (CI slack over the paper's <1 s) and "
        "never slower than mixed",
    ),
    Claim(
        id="fig15-17-producer-invariance",
        figure="Figures 15/16/17",
        claim="The CFS improvements hold whether the producer is an elastic "
        "LLM, StableDiffusion, or behind an 8-GPU NVSwitch.",
        experiments=("fig15", "fig16", "fig17"),
        check=check_fig15_17_invariance,
        tolerance={"min_ttft_gap": 1.5, "max_rel_spread": 0.3},
        expected="vLLM/AQUA TTFT p95 gap >= 1.5x in all three variants; AQUA "
        "TTFT spread across variants <= 30%",
    ),
    Claim(
        id="fig18-nvswitch-scaling",
        figure="Figure 18",
        claim="Four consumer/producer pairs across the NVSwitch each match "
        "the 2-GPU direct-NVLink throughput — ports don't contend.",
        experiments=("fig18",),
        check=check_fig18_nvswitch,
        tolerance={"min_reference_fraction": 0.8},
        expected="every consumer >= 80% of the 2-GPU reference tokens",
    ),
    Claim(
        id="tables-inventory",
        figure="Tables 1-3",
        claim="The evaluation serves three memory-deficit LLM jobs, two "
        "elastic LLM producers and the image/audio producer jobs.",
        experiments=("tables",),
        check=check_tables_inventory,
        tolerance={},
        expected="all nine (model, workload, engine) rows present",
    ),
    Claim(
        id="frontier-conservation",
        figure="docs/frontier.md",
        claim="The global router never loses a request: every frontier "
        "cell's books balance (offered == routed + shed) for every "
        "policy at every offered load, total and per tenant.",
        experiments=("frontier",),
        check=check_frontier_conservation,
        tolerance={},
        expected="offered - routed - shed == 0 and a clean ledger verdict "
        "in every cell of the grid",
    ),
    Claim(
        id="frontier-low-load",
        figure="docs/frontier.md",
        claim="Below the cluster knee the frontier is ideal: goodput "
        "tracks offered load, nothing sheds, and TTFT attainment is "
        "near-perfect for every routing policy.",
        experiments=("frontier",),
        check=check_frontier_low_load,
        tolerance={
            "min_low_load_attainment": 0.9,
            "max_low_load_shed": 0.02,
            "goodput_frac_lo": 0.8,
            "goodput_frac_hi": 1.2,
        },
        expected="at the lowest grid rate: attainment >= 0.9, shed <= 2%, "
        "goodput within [0.8, 1.2]x offered (measured ~0.95x)",
    ),
    Claim(
        id="frontier-overload-shedding",
        figure="docs/frontier.md",
        claim="Past the knee the router degrades gracefully: shed rate "
        "rises monotonically with offered load, overload sheds "
        "explicitly rather than silently, and goodput holds near its "
        "peak instead of collapsing.",
        experiments=("frontier",),
        check=check_frontier_overload,
        tolerance={
            "min_overload_shed": 0.05,
            "min_overload_goodput_frac": 0.5,
        },
        expected="shed rate non-decreasing in offered load, >= 5% at the "
        "top rate (measured 19-49%), overload goodput >= 50% of the "
        "policy's best (measured 68-99%)",
    ),
    Claim(
        id="e2e-placement-coverage",
        figure="§6.1",
        claim="AQUA-PLACER pairs every memory-deficit consumer with a "
        "producer in both the balanced and LLM-heavy splits.",
        experiments=("e2e",),
        check=check_e2e_placement,
        tolerance={"min_pairs": 6.0},
        expected="zero unmatched consumers and >= 6 pairs per split",
    ),
]

for _claim in CLAIMS:
    REGISTRY.register(_claim)
