"""Claim registry: the catalog of per-claim replication evaluators.

Each :class:`Claim` binds one paper claim (a figure/table result stated
in the Aqua paper's evaluation) to the experiment cell(s) that measure
it, the check function that scores it, and the tolerance band inside
which the reproduction counts as replicating the claim.  The registry
is the single source of truth consumed by the runner
(:mod:`repro.evals.runner`), the CLI (``aqua-repro replicate --list``)
and the traceability table in ``docs/replication.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Tuple

from repro.evals.checks import CheckResult


@dataclass(frozen=True)
class Claim:
    """One evaluable claim from the paper's evaluation.

    Parameters
    ----------
    id:
        Stable kebab-case identifier, prefixed with the experiment it
        rides on (``fig07-speedup``) — ``--only fig07`` selects every
        claim with this prefix.
    figure:
        The paper artifact the claim comes from (``"Figure 7"``).
    claim:
        The claim as the paper states it (quoted or tightly
        paraphrased).
    experiments:
        Names of the :data:`repro.experiments.runall.EXPERIMENTS`
        cells the check consumes.  The runner executes each needed cell
        exactly once through :mod:`repro.experiments.pool`, so claims
        sharing a cell share its (cached) run.
    check:
        ``check(results, tolerance) -> CheckResult`` where ``results``
        maps experiment name → that cell's value.  Checks use
        :func:`repro.evals.checks.metric` so absent/None/NaN metrics
        surface as SKIP, never as a crash.
    tolerance:
        Named tolerance-band parameters the check reads.  Declared as
        data (not hardcoded in the check body) so the report and
        ``docs/replication.md`` can render the band verbatim.
    expected:
        Human-readable expected outcome for reports.
    """

    id: str
    figure: str
    claim: str
    experiments: Tuple[str, ...]
    check: Callable[[Mapping[str, object], Mapping[str, float]], CheckResult]
    tolerance: Mapping[str, float] = field(default_factory=dict)
    expected: str = ""


class EvalRegistry:
    """Ordered registry of claims, keyed by id."""

    def __init__(self) -> None:
        self._claims: dict[str, Claim] = {}

    def register(self, claim: Claim) -> Claim:
        if claim.id in self._claims:
            raise ValueError(f"duplicate claim id {claim.id!r}")
        if not claim.experiments:
            raise ValueError(f"claim {claim.id!r} consumes no experiment cells")
        self._claims[claim.id] = claim
        return claim

    def claims(self) -> list[Claim]:
        """All claims, in registration order (grouped by figure)."""
        return list(self._claims.values())

    def ids(self) -> list[str]:
        return list(self._claims)

    def get(self, claim_id: str) -> Claim:
        try:
            return self._claims[claim_id]
        except KeyError:
            raise KeyError(
                f"unknown claim {claim_id!r}; known: {', '.join(self._claims)}"
            ) from None

    def select(self, only: Optional[Sequence[str]] = None) -> list[Claim]:
        """Claims matched by the ``--only`` selectors.

        A selector matches a claim when it equals the claim id, is a
        ``-``-separated prefix of it, or names one of the experiment
        cells the claim consumes (``fig09`` selects every fig09-*
        claim).  Unknown selectors raise ``KeyError`` so typos fail
        loudly instead of silently evaluating nothing.
        """
        if not only:
            return self.claims()
        selected: dict[str, Claim] = {}
        for selector in only:
            matches = [
                c
                for c in self._claims.values()
                if c.id == selector
                or c.id.startswith(selector + "-")
                or selector in c.experiments
            ]
            if not matches:
                raise KeyError(
                    f"selector {selector!r} matches no claim; "
                    f"known claims: {', '.join(self._claims)}"
                )
            for claim in matches:
                selected[claim.id] = claim
        return [c for c in self._claims.values() if c.id in selected]

    def experiments(self, claims: Optional[Sequence[Claim]] = None) -> list[str]:
        """Deduplicated experiment cells the given claims consume."""
        chosen = self.claims() if claims is None else list(claims)
        names: dict[str, None] = {}
        for claim in chosen:
            for name in claim.experiments:
                names[name] = None
        return list(names)


#: The default registry; populated by importing :mod:`repro.evals.claims`.
REGISTRY = EvalRegistry()
