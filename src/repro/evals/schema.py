"""REPLICATION.json schema: structure, validation and (de)serialisation.

The replication document is the machine-readable verdict on "does this
codebase still reproduce the Aqua paper?".  It is versioned (``schema``
field), self-consistent (the ``summary`` counts must equal the claim
statuses), and round-trips through JSON byte-for-byte —
``tests/test_evals.py::test_replication_document_round_trips`` pins
this.  CI's nightly replication job uploads it as an artifact and
fails when its verdict is ``FAIL``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.evals.checks import STATUSES

#: Document schema marker; bump on any structural change.
REPLICATION_SCHEMA = "aqua-repro-replication/v1"

#: Required top-level keys of a replication document.
_TOP_KEYS = ("schema", "code_fingerprint", "jobs", "cache", "cells", "claims", "summary")

#: Required keys of each claim entry.
_CLAIM_KEYS = (
    "id",
    "figure",
    "claim",
    "experiments",
    "check",
    "tolerance",
    "expected",
    "status",
    "measured",
    "delta",
    "detail",
)


class SchemaError(ValueError):
    """A replication document does not conform to the schema."""


def validate_replication(doc: dict) -> dict:
    """Validate ``doc`` against the replication schema; return it.

    Raises :class:`SchemaError` with a pinpointed message on the first
    violation found.
    """
    if not isinstance(doc, dict):
        raise SchemaError(f"document must be a dict, got {type(doc).__name__}")
    for key in _TOP_KEYS:
        if key not in doc:
            raise SchemaError(f"missing top-level key {key!r}")
    if doc["schema"] != REPLICATION_SCHEMA:
        raise SchemaError(
            f"unknown schema {doc['schema']!r} (expected {REPLICATION_SCHEMA!r})"
        )
    if not isinstance(doc["claims"], list) or not doc["claims"]:
        raise SchemaError("claims must be a non-empty list")

    seen_ids = set()
    counts = {status: 0 for status in STATUSES}
    for i, claim in enumerate(doc["claims"]):
        for key in _CLAIM_KEYS:
            if key not in claim:
                raise SchemaError(f"claims[{i}] missing key {key!r}")
        if claim["status"] not in STATUSES:
            raise SchemaError(
                f"claims[{i}] ({claim['id']!r}) has invalid status {claim['status']!r}"
            )
        if claim["id"] in seen_ids:
            raise SchemaError(f"duplicate claim id {claim['id']!r}")
        seen_ids.add(claim["id"])
        if not claim["experiments"]:
            raise SchemaError(f"claims[{i}] ({claim['id']!r}) names no experiments")
        for name in claim["experiments"]:
            if name not in doc["cells"]:
                raise SchemaError(
                    f"claims[{i}] ({claim['id']!r}) references cell {name!r} "
                    "absent from the cells map"
                )
        counts[claim["status"]] += 1

    summary = doc["summary"]
    for key in ("total", "pass", "fail", "skip", "verdict"):
        if key not in summary:
            raise SchemaError(f"summary missing key {key!r}")
    expected = {
        "total": len(doc["claims"]),
        "pass": counts["PASS"],
        "fail": counts["FAIL"],
        "skip": counts["SKIP"],
    }
    for key, value in expected.items():
        if summary[key] != value:
            raise SchemaError(
                f"summary[{key!r}] = {summary[key]} disagrees with the "
                f"claim list ({value})"
            )
    expected_verdict = "FAIL" if counts["FAIL"] else "PASS"
    if summary["verdict"] != expected_verdict:
        raise SchemaError(
            f"summary verdict {summary['verdict']!r} disagrees with the "
            f"claim statuses (expected {expected_verdict!r})"
        )
    return doc


def dump_replication(doc: dict) -> str:
    """Canonical JSON serialisation (validated first)."""
    validate_replication(doc)
    return json.dumps(doc, indent=2, default=str) + "\n"


def write_replication(doc: dict, path: Union[str, Path]) -> Path:
    """Validate and write the document; returns the path written."""
    path = Path(path)
    path.write_text(dump_replication(doc))
    return path


def load_replication(path: Union[str, Path]) -> dict:
    """Read and validate a replication document from disk."""
    with open(path) as fh:
        return validate_replication(json.load(fh))
