"""Human-readable rendering of a replication document.

Two renderers over the same document: :func:`render_text` for the
terminal (``aqua-repro replicate``) and :func:`render_markdown` for
the ``--report out.md`` artifact CI uploads next to
``REPLICATION.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.experiments.report import format_table

_STATUS_MARK = {"PASS": "✅", "FAIL": "❌", "SKIP": "⏭️"}


def _fmt_measured(measured) -> str:
    if measured is None:
        return "-"
    if isinstance(measured, float):
        return f"{measured:.4g}"
    text = json.dumps(measured, default=str)
    return text if len(text) <= 60 else text[:57] + "..."


def render_text(doc: dict) -> str:
    """Terminal summary: one row per claim plus the verdict line."""
    rows = []
    for claim in doc["claims"]:
        rows.append(
            [
                claim["status"],
                claim["id"],
                claim["figure"],
                _fmt_measured(claim["measured"]),
                f"{claim['delta']:.3g}" if claim["delta"] is not None else "-",
            ]
        )
    s = doc["summary"]
    lines = [
        format_table(
            ["status", "claim", "figure", "measured", "margin"],
            rows,
            title="Replication verdict: does this repo still reproduce the paper?",
        ),
        "",
        f"verdict: {s['verdict']}  "
        f"({s['pass']} pass / {s['fail']} fail / {s['skip']} skip "
        f"of {s['total']} claims, {doc['seconds']:.1f}s)",
    ]
    if doc.get("cache"):
        lines.append(
            f"cache: {doc['cache']['hits']} hits / {doc['cache']['misses']} misses "
            f"({doc['cache']['dir']})"
        )
    for claim in doc["claims"]:
        if claim["status"] != "PASS" and claim["detail"]:
            lines.append(f"  {claim['status']} {claim['id']}: {claim['detail']}")
    return "\n".join(lines)


def render_markdown(doc: dict) -> str:
    """Markdown report with the per-claim traceability columns."""
    s = doc["summary"]
    lines = [
        "# Replication report",
        "",
        f"**Verdict: {s['verdict']}** — {s['pass']} pass / {s['fail']} fail / "
        f"{s['skip']} skip of {s['total']} claims.",
        "",
        f"Code fingerprint `{doc['code_fingerprint'][:16]}…`, "
        f"jobs={doc['jobs']}, {doc['seconds']:.1f}s"
        + (
            f", cache {doc['cache']['hits']} hits / {doc['cache']['misses']} misses."
            if doc.get("cache")
            else ", no cache."
        ),
        "",
        "| | claim | figure | measured | expected | margin |",
        "|---|---|---|---|---|---|",
    ]
    for claim in doc["claims"]:
        mark = _STATUS_MARK.get(claim["status"], claim["status"])
        delta = f"{claim['delta']:.3g}" if claim["delta"] is not None else "-"
        lines.append(
            f"| {mark} | `{claim['id']}` | {claim['figure']} "
            f"| {_fmt_measured(claim['measured'])} | {claim['expected']} | {delta} |"
        )
    problems = [c for c in doc["claims"] if c["status"] != "PASS" and c["detail"]]
    if problems:
        lines += ["", "## Non-passing claims", ""]
        for claim in problems:
            lines.append(f"- **{claim['id']}** ({claim['status']}): {claim['detail']}")
    lines += [
        "",
        "Claim-by-claim traceability (experiment function, check, tolerance "
        "band): see `docs/replication.md`.",
        "",
    ]
    return "\n".join(lines)


def write_markdown(doc: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(render_markdown(doc))
    return path
