"""Generic check toolkit for replication evals.

A *check* turns experiment results into a :class:`CheckResult` with a
three-valued verdict:

* ``PASS`` — the measured values satisfy the claim within its declared
  tolerance band.
* ``FAIL`` — the values are present and definitively outside the band:
  the reproduction regressed on this claim.
* ``SKIP`` — the claim could not be evaluated (the experiment cell
  errored, a metric is absent, ``None`` or NaN).  SKIP is never a
  crash: a half-broken run still yields a scored report.

Tolerance boundaries are **inclusive** on both ends (``lo <= x <= hi``),
so a value landing exactly on a band edge scores deterministically —
``tests/test_evals.py::test_band_boundaries_are_inclusive`` pins this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

PASS = "PASS"
FAIL = "FAIL"
SKIP = "SKIP"

STATUSES = (PASS, FAIL, SKIP)


class MissingMetric(Exception):
    """A metric a check needs is absent, ``None`` or NaN.

    Raised by :func:`metric` and converted to a ``SKIP`` verdict by the
    runner — a failed or partial experiment cell must never crash the
    replication report.
    """


@dataclass
class CheckResult:
    """Outcome of one claim check."""

    status: str
    measured: object = None  #: JSON-able measured value(s) behind the verdict
    expected: str = ""  #: human-readable restatement of the tolerance band
    delta: Optional[float] = None  #: signed margin to the nearest band edge
    detail: str = ""  #: one-line explanation (why SKIP / what failed)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"status must be one of {STATUSES}, got {self.status!r}")

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "measured": self.measured,
            "expected": self.expected,
            "delta": self.delta,
            "detail": self.detail,
        }


def metric(results: object, *path):
    """Walk ``results`` through nested dict keys / sequence indices.

    Raises :class:`MissingMetric` when any step is absent or the leaf
    is ``None`` or NaN, so checks never propagate bogus numbers into a
    PASS/FAIL verdict.
    """
    node = results
    for step in path:
        try:
            node = node[step]
        except (KeyError, IndexError, TypeError):
            raise MissingMetric(
                f"missing metric at {'/'.join(map(str, path))!r} (step {step!r})"
            ) from None
    if node is None:
        raise MissingMetric(f"metric {'/'.join(map(str, path))!r} is None")
    if isinstance(node, float) and math.isnan(node):
        raise MissingMetric(f"metric {'/'.join(map(str, path))!r} is NaN")
    return node


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with a zero guard → :class:`MissingMetric`."""
    if denominator == 0:
        raise MissingMetric("ratio denominator is zero")
    return numerator / denominator


def in_band(value: float, lo: Optional[float], hi: Optional[float]) -> bool:
    """Inclusive band membership; ``None`` means unbounded on that side."""
    if lo is not None and value < lo:
        return False
    if hi is not None and value > hi:
        return False
    return True


def band_margin(value: float, lo: Optional[float], hi: Optional[float]) -> float:
    """Signed distance to the nearest band edge (>= 0 inside the band)."""
    margins = []
    if lo is not None:
        margins.append(value - lo)
    if hi is not None:
        margins.append(hi - value)
    return min(margins) if margins else float("inf")


def check_band(
    value: float,
    lo: Optional[float],
    hi: Optional[float],
    label: str,
    measured: object = None,
) -> CheckResult:
    """One-number band check with an auto-generated expected string."""
    ok = in_band(value, lo, hi)
    expected = _describe_band(label, lo, hi)
    return CheckResult(
        status=PASS if ok else FAIL,
        measured=measured if measured is not None else value,
        expected=expected,
        delta=band_margin(value, lo, hi),
        detail="" if ok else f"{label} = {value:.4g} outside [{lo}, {hi}]",
    )


def check_all(results: Sequence[CheckResult]) -> CheckResult:
    """Conjunction of sub-checks: FAIL dominates, then SKIP, then PASS."""
    if not results:
        return CheckResult(SKIP, detail="no sub-checks ran")
    worst = min(
        results, key=lambda r: {FAIL: 0, SKIP: 1, PASS: 2}[r.status]
    )
    if worst.status == PASS:
        deltas = [r.delta for r in results if r.delta is not None]
        return CheckResult(
            PASS,
            measured=[r.measured for r in results],
            expected="; ".join(r.expected for r in results if r.expected),
            delta=min(deltas) if deltas else None,
            detail="",
        )
    return worst


def _describe_band(label: str, lo: Optional[float], hi: Optional[float]) -> str:
    if lo is not None and hi is not None:
        return f"{lo:g} <= {label} <= {hi:g}"
    if lo is not None:
        return f"{label} >= {lo:g}"
    if hi is not None:
        return f"{label} <= {hi:g}"
    return f"{label} unconstrained"
