"""Hardware substrate: GPUs, interconnects, servers and clusters.

This package models the machines the paper evaluates on — servers with
2 or 8 NVIDIA A100-80G GPUs connected by point-to-point NVLink or an
NVSwitch fabric, host DRAM reachable over PCIe — as objects in the
discrete-event simulation.  The central piece is the link transfer-time
model (latency + size/peak-bandwidth), which reproduces the measured
size-dependent effective bandwidth of Figure 3a: NVLink only approaches
its peak for multi-megabyte transfers.
"""

from repro.hardware.cluster import Cluster
from repro.hardware.dma import (
    GpuFailedError,
    Transfer,
    TransferError,
    TransferStalled,
    TransferStats,
)
from repro.hardware.gpu import GPU, HostDRAM, MemoryPool, OutOfDeviceMemory
from repro.hardware.interconnect import Channel, Interconnect, Route
from repro.hardware.server import Server
from repro.hardware.specs import (
    A100_80G,
    H100_80G,
    NVLINK3_P2P,
    NVLINK4_P2P,
    NVSWITCH_A100,
    PCIE_GEN4_X16,
    PCIE_GEN5_X16,
    GPUSpec,
    LinkSpec,
    effective_bandwidth,
    transfer_time,
)

__all__ = [
    "A100_80G",
    "Channel",
    "Cluster",
    "GPU",
    "GPUSpec",
    "GpuFailedError",
    "H100_80G",
    "HostDRAM",
    "Interconnect",
    "LinkSpec",
    "MemoryPool",
    "NVLINK3_P2P",
    "NVLINK4_P2P",
    "NVSWITCH_A100",
    "OutOfDeviceMemory",
    "PCIE_GEN4_X16",
    "PCIE_GEN5_X16",
    "Route",
    "Server",
    "Transfer",
    "TransferError",
    "TransferStalled",
    "TransferStats",
    "effective_bandwidth",
    "transfer_time",
]
