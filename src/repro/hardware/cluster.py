"""Clusters of multi-GPU servers.

The paper's end-to-end evaluation (§6.1) uses a cluster of eight 2-GPU
servers; AQUA-PLACER maps models onto GPUs cluster-wide while AQUA-LIB
offloads memory strictly *within* a server's fast interconnect.

Servers can optionally be joined by a datacenter RDMA fabric
(``rdma_link``), which lets experiments quantify *why* AQUA restricts
offloads to the scale-up domain: a 200 Gb/s NIC delivers ~25 GB/s —
PCIe-class, an order of magnitude below NVLink — so cross-server GPU
memory is no faster than local host DRAM.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.hardware.gpu import GPU
from repro.hardware.server import Server
from repro.hardware.specs import A100_80G, GB, PCIE_GEN4_X16, GPUSpec, LinkSpec
from repro.sim import Environment

#: A 200 Gb/s RDMA NIC per server: ~25 GB/s payload bandwidth, with
#: microseconds of network latency on top of the PCIe hop.
RDMA_200G = LinkSpec(name="RDMA-200G", peak_bandwidth=25 * GB, latency=30e-6)


class Cluster:
    """A fleet of identical multi-GPU servers.

    Parameters mirror :class:`Server`; each server is named
    ``server<i>``.
    """

    def __init__(
        self,
        env: Environment,
        n_servers: int,
        gpus_per_server: int = 2,
        topology: str = "p2p",
        gpu_spec: GPUSpec = A100_80G,
        gpu_link: Optional[LinkSpec] = None,
        pcie_link: LinkSpec = PCIE_GEN4_X16,
        rdma_link: Optional[LinkSpec] = None,
    ) -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        self.env = env
        self.rdma_link = rdma_link
        self.servers = [
            Server(
                env,
                n_gpus=gpus_per_server,
                topology=topology,
                gpu_spec=gpu_spec,
                gpu_link=gpu_link,
                pcie_link=pcie_link,
                name=f"server{i}",
            )
            for i in range(n_servers)
        ]
        if rdma_link is not None:
            self._wire_fabric(rdma_link)

    def _wire_fabric(self, rdma_link: LinkSpec) -> None:
        """Join every server pair through per-server RDMA NICs.

        A cross-server GPU-to-GPU route traverses the source GPU's PCIe
        lane, the source NIC's egress, and the destination NIC's
        ingress — which is why it can never beat the local DRAM path.
        Routes are added to the *source* server's interconnect so
        ``Server.transfer`` works transparently across servers.
        """
        nics = {}
        for server in self.servers:
            ic = server.interconnect
            nics[server.name] = (
                ic.add_channel(f"{server.name}:rdma-egress", rdma_link),
                ic.add_channel(f"{server.name}:rdma-ingress", rdma_link),
            )
        for src in self.servers:
            for dst in self.servers:
                if src is dst:
                    continue
                ingress_name = f"{dst.name}:rdma-ingress"
                egress_name = f"{src.name}:rdma-egress"
                for src_gpu in src.gpus:
                    pcie_up = f"{src.name}:pcie-up:gpu{src_gpu.index}"
                    hops = [pcie_up, egress_name, ingress_name]
                    for dst_gpu in dst.gpus:
                        # Register the route in both endpoints'
                        # interconnects (sharing the same channel
                        # objects, so contention is global) — either
                        # server's ``transfer`` can then drive it.
                        for ic in (src.interconnect, dst.interconnect):
                            for name in hops:
                                if name not in ic.channels:
                                    owner = (
                                        src.interconnect
                                        if name in src.interconnect.channels
                                        else dst.interconnect
                                    )
                                    ic.channels[name] = owner.channels[name]
                            ic.add_route(src_gpu, dst_gpu, hops)

    @property
    def gpus(self) -> list[GPU]:
        """All GPUs in the cluster, server-major order."""
        return [gpu for server in self.servers for gpu in server.gpus]

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    def server_of(self, gpu: GPU) -> Server:
        """The server hosting ``gpu``."""
        for server in self.servers:
            if gpu in server.gpus:
                return server
        raise LookupError(f"{gpu!r} is not part of this cluster")

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def __len__(self) -> int:
        return len(self.servers)

    def __repr__(self) -> str:
        per = len(self.servers[0].gpus) if self.servers else 0
        return f"<Cluster servers={len(self.servers)} gpus/server={per}>"
