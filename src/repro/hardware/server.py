"""Multi-GPU servers: the paper's two testbeds, as simulation objects."""

from __future__ import annotations

from typing import Generator, Hashable, Optional

from repro.hardware.dma import Transfer, TransferStats
from repro.hardware.gpu import GPU, HostDRAM
from repro.hardware.interconnect import Interconnect
from repro.hardware.specs import (
    A100_80G,
    NVLINK3_P2P,
    NVSWITCH_A100,
    PCIE_GEN4_X16,
    GiB,
    GPUSpec,
    LinkSpec,
)

#: Default host memory: both evaluation servers have 1 TB of DRAM.
DEFAULT_DRAM_BYTES = 1024 * GiB


class Server:
    """A multi-GPU server with NVLink/NVSwitch wiring and host DRAM.

    Parameters
    ----------
    env:
        Simulation environment.
    n_gpus:
        Number of GPUs (the paper uses 2 and 8).
    topology:
        ``"p2p"`` wires every GPU pair with a dedicated direct link
        (matching the 2-GPU testbed); ``"nvswitch"`` gives each GPU an
        ingress and egress port into a non-blocking fabric (the 8-GPU
        DGX-style testbed).
    gpu_spec, gpu_link, pcie_link:
        Hardware presets; defaults are the paper's A100-80G setup.
    dram_bytes:
        Host DRAM capacity (1 TB on both testbeds).
    name:
        Identifier used in routes and reports.
    transfer_fastpath:
        Enable the analytic channel-timeline fast path for DMA copies
        (see :class:`~repro.hardware.dma.Transfer` and
        ``docs/performance.md``).  Off by default — the exact
        Resource-FIFO path stays the reference; the fast path is
        semantics-identical and falls back automatically around fault
        schedules.
    """

    def __init__(
        self,
        env,
        n_gpus: int = 2,
        topology: str = "p2p",
        gpu_spec: GPUSpec = A100_80G,
        gpu_link: Optional[LinkSpec] = None,
        pcie_link: LinkSpec = PCIE_GEN4_X16,
        dram_bytes: int = DEFAULT_DRAM_BYTES,
        name: str = "server0",
        transfer_fastpath: bool = False,
    ) -> None:
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        if topology not in ("p2p", "nvswitch"):
            raise ValueError(f"unknown topology {topology!r}")
        if gpu_link is None:
            gpu_link = NVLINK3_P2P if topology == "p2p" else NVSWITCH_A100

        self.env = env
        self.name = name
        self.topology = topology
        self.gpu_link = gpu_link
        self.pcie_link = pcie_link
        self.gpus = [GPU(env, i, gpu_spec, server=self) for i in range(n_gpus)]
        self.dram = HostDRAM(env, dram_bytes, server=self)
        self.interconnect = Interconnect(env)
        self.interconnect.transfer_fastpath = transfer_fastpath
        self.transfer_stats = TransferStats()
        #: Optional :class:`~repro.telemetry.Telemetry` hub; installed by
        #: ``Telemetry.attach_server``.  When set, every completed DMA
        #: copy reports per-channel metrics (and request-scoped spans).
        self.telemetry = None
        self._wire()

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def _wire(self) -> None:
        ic = self.interconnect
        # PCIe: one full-duplex channel pair per GPU towards host DRAM.
        for gpu in self.gpus:
            up = ic.add_channel(f"{self.name}:pcie-up:gpu{gpu.index}", self.pcie_link)
            down = ic.add_channel(f"{self.name}:pcie-down:gpu{gpu.index}", self.pcie_link)
            ic.add_route(gpu, self.dram, [up.name])
            ic.add_route(self.dram, gpu, [down.name])

        if self.topology == "p2p":
            for a in self.gpus:
                for b in self.gpus:
                    if a is b:
                        continue
                    link = ic.add_channel(
                        f"{self.name}:nvlink:gpu{a.index}->gpu{b.index}", self.gpu_link
                    )
                    ic.add_route(a, b, [link.name])
        else:  # nvswitch
            for gpu in self.gpus:
                ic.add_channel(f"{self.name}:nvswitch-egress:gpu{gpu.index}", self.gpu_link)
                ic.add_channel(f"{self.name}:nvswitch-ingress:gpu{gpu.index}", self.gpu_link)
            for a in self.gpus:
                for b in self.gpus:
                    if a is b:
                        continue
                    ic.add_route(
                        a,
                        b,
                        [
                            f"{self.name}:nvswitch-egress:gpu{a.index}",
                            f"{self.name}:nvswitch-ingress:gpu{b.index}",
                        ],
                    )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def transfer(
        self,
        src: Hashable,
        dst: Hashable,
        nbytes: float,
        pieces: int = 1,
        ctx: Optional[int] = None,
    ) -> Generator:
        """Copy ``nbytes`` from ``src`` to ``dst``; yield-from inside a process.

        ``ctx`` is the trace ID of the request the copy serves, if any —
        it ties the DMA hop into the request's causal trace.
        """
        t = Transfer(
            self.env,
            self.interconnect,
            src,
            dst,
            nbytes,
            pieces=pieces,
            stats=self.transfer_stats,
            telemetry=self.telemetry,
            ctx=ctx,
        )
        return (yield from t.run())

    def transfer_time(self, src: Hashable, dst: Hashable, nbytes: float, pieces: int = 1) -> float:
        """Uncontended time for such a copy (no simulation side effects)."""
        t = Transfer(self.env, self.interconnect, src, dst, nbytes, pieces=pieces)
        if nbytes == 0:
            return 0.0
        return t.wire_time(self.interconnect.route(src, dst))

    def gpu_peers(self, gpu: GPU) -> list[GPU]:
        """Other GPUs on this server reachable over the fast interconnect."""
        return [g for g in self.gpus if g is not gpu]

    @property
    def devices(self) -> list[Hashable]:
        return [*self.gpus, self.dram]

    def __repr__(self) -> str:
        return (
            f"<Server {self.name} gpus={len(self.gpus)} "
            f"topology={self.topology}>"
        )
