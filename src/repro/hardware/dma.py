"""DMA transfers over interconnect routes.

A :class:`Transfer` is a simulation process that holds every channel on
its route for the duration of the copy.  Channels are acquired in a
global deterministic order (by channel name) so that two transfers with
overlapping routes can never deadlock.

Copies consume (a little) compute on both endpoint GPUs: while a
transfer is in flight the endpoint GPUs report copy activity, which
dilates concurrent compute kernels by ``GPUSpec.copy_interference``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Hashable, Optional, Sequence

from repro.hardware.gpu import GPU
from repro.hardware.interconnect import Channel, Interconnect, Route
from repro.sim import AllOf, Environment, SleepUntil

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: Observer signature for completed transfers: ``(route_name, channels,
#: nbytes, duration)``.  Every hop carries the full payload, so a
#: listener that sums ``nbytes`` once per channel reconstructs the
#: per-channel ledger exactly (see :mod:`repro.audit`).
TransferListener = Callable[[str, Sequence[Channel], float, float], None]


class TransferError(RuntimeError):
    """A DMA copy could not run because of a hardware fault.

    Base class of the fault-injection error family; callers that want
    blanket handling (retry, re-placement) catch this, while the
    subclasses distinguish transient from fatal conditions.
    """


class TransferStalled(TransferError):
    """A channel on the route has a stalled copy engine.

    Transient: raised at transfer start while a
    :class:`~repro.faults.DmaStall` fault is active.  The right
    response is to retry with backoff — AQUA-LIB does exactly that.
    """


class GpuFailedError(TransferError):
    """An endpoint GPU of the transfer has failed.

    Fatal for the data on that GPU: copies *from* it mean the payload
    is lost (the owner must recompute), copies *to* it are pointless
    until :meth:`~repro.hardware.gpu.GPU.recover`.
    """


@dataclass
class TransferStats:
    """Aggregate statistics of completed transfers (for reports).

    ``bytes_total`` counts each payload once, whatever the hop count of
    its route; the per-channel ``bytes_moved`` ledgers count the payload
    once *per hop*.  Listeners registered in :attr:`listeners` observe
    every completed transfer together with the channels it traversed,
    which is how the conservation audit (:mod:`repro.audit`) keeps an
    independent shadow ledger to reconcile both views against.
    """

    count: int = 0
    bytes_total: float = 0.0
    busy_time: float = 0.0
    per_route: dict[str, float] = field(default_factory=dict)
    listeners: list[TransferListener] = field(default_factory=list)

    def record(
        self,
        route_name: str,
        nbytes: float,
        duration: float,
        channels: Sequence[Channel] = (),
    ) -> None:
        self.count += 1
        self.bytes_total += nbytes
        self.busy_time += duration
        self.per_route[route_name] = self.per_route.get(route_name, 0.0) + nbytes
        for listener in self.listeners:
            listener(route_name, channels, nbytes, duration)


class Transfer:
    """A single DMA copy of ``nbytes`` from ``src`` to ``dst``.

    Parameters
    ----------
    env, interconnect:
        Simulation context and server wiring.
    src, dst:
        Device identifiers known to the interconnect (GPU / HostDRAM).
    nbytes:
        Payload size.  A transfer of zero bytes completes immediately.
    pieces:
        Number of separate buffers the payload is scattered across.
        Each piece pays the route's setup latency — this is how naive
        per-tensor offloading of small KV buffers loses NVLink bandwidth
        (the motivation for AQUA's gather/scatter batching, §5).
    stats:
        Optional aggregate collector.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub; completed
        copies report per-channel bytes/contention and, when ``ctx`` is
        set, per-hop ``dma`` spans and flow steps on ``link:*`` tracks.
    ctx:
        Trace ID of the request this copy serves (``None`` when the
        copy is not request-scoped — producer swaps, cache loads).
    fastpath:
        Per-transfer override of the interconnect's
        :attr:`~repro.hardware.interconnect.Interconnect.transfer_fastpath`
        toggle (``None`` defers to it).  Even when enabled the fast
        path only *engages* when the route is eligible — healthy, no
        fault schedule pending, channels idle or fast-owned — and
        silently falls back to the Resource path otherwise.
    """

    def __init__(
        self,
        env: Environment,
        interconnect: Interconnect,
        src: Hashable,
        dst: Hashable,
        nbytes: float,
        pieces: int = 1,
        stats: Optional[TransferStats] = None,
        telemetry=None,
        ctx: Optional[int] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if pieces < 1:
            raise ValueError(f"pieces must be >= 1, got {pieces}")
        self.env = env
        self.interconnect = interconnect
        self.src = src
        self.dst = dst
        self.nbytes = float(nbytes)
        self.pieces = pieces
        self.stats = stats
        self.telemetry = telemetry
        self.ctx = ctx
        self.fastpath = fastpath
        #: Which path executed this copy: ``"fast"`` (analytic channel
        #: timelines) or ``"resource"`` (the exact FIFO path).  ``None``
        #: until the transfer runs.  Diagnostic only.
        self.path: Optional[str] = None
        self.started_at: Optional[float] = None
        #: When every channel grant was held — ``acquired_at - started_at``
        #: is the link-contention wait this copy paid.
        self.acquired_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def _endpoints(self) -> list[GPU]:
        return [dev for dev in (self.src, self.dst) if isinstance(dev, GPU)]

    def wire_time(self, route: Route) -> float:
        """Uncontended on-the-wire time, accounting for scatter pieces."""
        if self.nbytes == 0:
            return 0.0
        piece = self.nbytes / self.pieces
        return self.pieces * route.transfer_time(piece)

    def _check_health(self, route: Route) -> None:
        """Raise if a fault blocks this copy.

        Health is checked once, at transfer start: copies already on
        the wire when a fault lands run to completion (a degraded
        link only slows *new* transfers; a stall or GPU failure only
        rejects *new* transfers).  This matches how DMA engines drain
        in flight descriptors and keeps the simulation deterministic.
        """
        for gpu in self._endpoints():
            if gpu.failed:
                raise GpuFailedError(f"endpoint {gpu.name} has failed")
        stalled = [ch.name for ch in route.channels if ch.stalled]
        if stalled:
            raise TransferStalled(f"stalled channel(s): {', '.join(stalled)}")

    def _fast_eligible(self, ordered: Sequence[Channel]) -> bool:
        """Whether the analytic fast path may model this copy.

        Beyond the toggle, eligibility demands a route on which the
        closed-form grant rule is *provably* the Resource FIFO's answer:

        * every hop is healthy (full bandwidth, not stalled) with no
          fault schedule pending on it or on an endpoint GPU — a future
          health flip would invalidate the precomputed timeline;
        * every hop's engine is an exclusive (capacity-1) resource whose
          queue is empty and whose only user, if any, is the channel's
          own fast token.  A queued or granted Resource request means a
          generator-path transfer is interleaved on this channel, and
          new arrivals must queue behind it the exact way.
        """
        enabled = self.fastpath
        if enabled is None:
            enabled = self.interconnect.transfer_fastpath
        if not enabled:
            return False
        for ch in ordered:
            if ch.fault_scheduled or not ch.healthy:
                return False
            engine = ch.engine
            if engine.capacity != 1 or engine.queue:
                return False
            if engine.users and not ch.fast_inflight:
                return False
        for gpu in self._endpoints():
            if gpu.fault_scheduled:
                return False
        return True

    def _run_fast(self, route: Route, ordered: list[Channel]) -> Generator:
        """Closed-form copy: one or two events instead of ``hops + 2``.

        The grant instant is the FIFO-consistent maximum over the route
        cursors (hold-while-waiting: a transfer's requests are issued
        atomically at arrival, so per-channel grant order equals arrival
        order and each cursor *is* the completion of the last earlier
        claimant).  Cursors advance to the completion immediately, so
        later arrivals — fast or generator — see this copy's occupancy
        at once, exactly like the Resource path's synchronous
        ``users``/``queue`` bookkeeping.
        """
        env = self.env
        now = env.now
        grant = now
        for ch in ordered:
            if ch.fast_inflight and ch.busy_until > grant:
                grant = ch.busy_until
        duration = self.wire_time(route)
        completion = grant + duration
        for ch in ordered:
            if not ch.fast_inflight:
                # First fast claimant: park the token so generator-path
                # arrivals queue behind the analytic pipeline.
                ch.engine.users.append(ch.fast_token)
            ch.fast_inflight += 1
            ch.busy_until = completion
        endpoints = self._endpoints()
        try:
            if grant > now:
                yield SleepUntil(env, grant)
            self.acquired_at = env.now
            for gpu in endpoints:
                gpu.active_copies += 1
            try:
                # Bare-delay yield, as on the Resource path: same
                # timestamp and tie-break ordering as env.timeout().
                yield duration
            finally:
                for gpu in endpoints:
                    gpu.active_copies -= 1
            for channel in ordered:
                channel.record(self.nbytes)
            self.finished_at = env.now
            if self.stats is not None:
                route_name = f"{getattr(self.src, 'name', self.src)}->" f"{getattr(self.dst, 'name', self.dst)}"
                self.stats.record(route_name, self.nbytes, duration, channels=ordered)
            if self.telemetry is not None:
                self.telemetry.record_transfer(self, ordered)
        finally:
            # On the normal exit this runs at the analytically scheduled
            # completion == each cursor's value, so an emptied channel's
            # cursor never points into the future.  An abnormal exit
            # (interrupt mid-grant-wait) leaves the cursors advanced — a
            # deterministic phantom busy window, conservative and safe —
            # but still surrenders the channels.
            for ch in ordered:
                ch.fast_inflight -= 1
                if not ch.fast_inflight:
                    ch.engine.users.remove(ch.fast_token)
                    ch.engine._grant_next()
        return self

    def run(self) -> Generator:
        """Execute the copy; use as ``yield from transfer.run()``.

        Raises
        ------
        GpuFailedError
            If either endpoint GPU is marked failed at start.
        TransferStalled
            If any channel on the route is stalled at start.
        """
        self.started_at = self.env.now
        if self.nbytes == 0:
            self.acquired_at = self.finished_at = self.env.now
            return self

        route = self.interconnect.route(self.src, self.dst)
        self._check_health(route)
        ordered = route.sorted_channels
        if self._fast_eligible(ordered):
            self.path = "fast"
            return (yield from self._run_fast(route, ordered))
        self.path = "resource"
        # Deadlock-free acquisition: all requests issued together, granted
        # in each channel's FIFO order, and we proceed once all are held.
        requests = [ch.engine.request() for ch in ordered]
        endpoints = self._endpoints()
        try:
            yield AllOf(self.env, requests)
            self.acquired_at = self.env.now
            duration = self.wire_time(route)
            for gpu in endpoints:
                gpu.active_copies += 1
            try:
                # Bare-delay yield: same ordering as env.timeout(duration)
                # without a Timeout allocation per copy.
                yield duration
            finally:
                for gpu in endpoints:
                    gpu.active_copies -= 1
            # Every hop carries the full payload: a 2-hop NVSwitch route
            # moves the bytes over the egress *and* the ingress port, so
            # each channel's ledger gets the whole transfer (splitting it
            # per hop under-counted multi-hop routes).
            for channel in ordered:
                channel.record(self.nbytes)
            self.finished_at = self.env.now
            if self.stats is not None:
                route_name = f"{getattr(self.src, 'name', self.src)}->" f"{getattr(self.dst, 'name', self.dst)}"
                self.stats.record(route_name, self.nbytes, duration, channels=ordered)
            if self.telemetry is not None:
                self.telemetry.record_transfer(self, ordered)
        finally:
            for channel, request in zip(ordered, requests):
                channel.engine.release(request)
        return self


def copy(
    env: Environment,
    interconnect: Interconnect,
    src: Hashable,
    dst: Hashable,
    nbytes: float,
    pieces: int = 1,
    stats: Optional[TransferStats] = None,
    telemetry=None,
    ctx: Optional[int] = None,
) -> Generator:
    """Convenience wrapper: ``yield from copy(env, ic, a, b, n)``.

    Forwards ``telemetry`` and ``ctx`` to the underlying
    :class:`Transfer` so convenience-path copies keep their per-hop
    spans and request attribution (they used to be dropped here).
    """
    transfer = Transfer(
        env, interconnect, src, dst, nbytes,
        pieces=pieces, stats=stats, telemetry=telemetry, ctx=ctx,
    )
    return (yield from transfer.run())
