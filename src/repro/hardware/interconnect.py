"""Interconnect topologies: channels, routes, and path lookup.

A :class:`Channel` is one directed link (e.g. GPU0 -> GPU1 NVLink, or a
GPU's PCIe lane towards host DRAM) guarded by a simulation
:class:`~repro.sim.Resource` so that concurrent transfers sharing the
channel serialize, the way DMA copy engines do.

An :class:`Interconnect` holds the set of channels of one server and
answers ``route(src, dst)`` queries with the ordered list of channels a
transfer must hold.  Two topologies are provided, matching the paper's
two testbeds:

* ``p2p`` — every GPU pair is joined by a dedicated direct NVLink
  (the 2-GPU server).
* ``nvswitch`` — each GPU has one egress and one ingress port into a
  non-blocking switch fabric (the 8-GPU DGX-style server).

Host DRAM is reachable from every GPU over that GPU's PCIe channel pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Hashable

from repro.hardware.specs import LinkSpec
from repro.sim import Environment, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class RoutingError(LookupError):
    """Raised when no route exists between two devices."""


@dataclass
class Channel:
    """One directed link with an exclusive DMA engine.

    Attributes
    ----------
    name:
        Unique channel identifier, e.g. ``"nvlink:gpu0->gpu1"``.
    spec:
        The link's latency/bandwidth cost model.
    engine:
        Simulation resource serializing transfers on this channel.
    bytes_moved:
        Lifetime counter of payload bytes carried (for reports).
    degradation:
        Bandwidth multiplier in ``(0, 1]``; ``1.0`` means healthy.  Set
        by fault injection (:mod:`repro.faults`) and read live by
        :meth:`Route.transfer_time`, so transfers started while a link
        is degraded pay the reduced bandwidth.
    stalled:
        While ``True`` the channel's copy engine accepts no new work:
        transfers whose route includes this channel raise
        :class:`~repro.hardware.dma.TransferStalled` at start.
    busy_until:
        Analytic timeline cursor for the transfer fast path
        (:mod:`repro.hardware.dma`): the simulated time at which every
        fast-path transfer that has claimed this channel will have
        completed.  Meaningful only while :attr:`fast_inflight` is
        non-zero; when the channel is idle the cursor is always
        ``<= env.now`` (a fast transfer's completion *is* the moment
        the cursor was last advanced to).
    fast_inflight:
        Number of fast-path transfers that have claimed this channel
        and not yet completed.  While non-zero the channel's
        :attr:`engine` carries :attr:`fast_token` as its single user so
        generator-path transfers queue behind the analytic pipeline in
        exact FIFO order.
    fault_scheduled:
        Count of fault-schedule entries (:mod:`repro.faults`) currently
        targeting this channel — incremented eagerly at
        :meth:`FaultInjector.install
        <repro.faults.injector.FaultInjector.install>` time, decremented
        when the fault clears.  While non-zero the transfer fast path
        refuses to engage on routes through this channel: analytic
        timelines cannot anticipate a mid-flight health flip, so faulty
        epochs run on the exact Resource path.
    """

    name: str
    spec: LinkSpec
    engine: Resource
    bytes_moved: float = 0.0
    transfer_count: int = 0
    degradation: float = 1.0
    stalled: bool = False
    busy_until: float = 0.0
    fast_inflight: int = 0
    fault_scheduled: int = 0
    #: Placeholder slot-holder parked in ``engine.users`` while fast-path
    #: transfers are in flight (see :attr:`fast_inflight`).
    fast_token: object = field(default_factory=object, repr=False)

    def record(self, nbytes: float) -> None:
        self.bytes_moved += nbytes
        self.transfer_count += 1

    @property
    def effective_bandwidth(self) -> float:
        """Peak bandwidth scaled by the current degradation factor."""
        return self.spec.peak_bandwidth * self.degradation

    @property
    def healthy(self) -> bool:
        """Whether the channel runs at full bandwidth and is not stalled."""
        return self.degradation >= 1.0 and not self.stalled

    def degrade(self, factor: float) -> None:
        """Clamp the channel to ``factor`` of its peak bandwidth.

        ``factor`` must be in ``(0, 1]``; degradations do not stack —
        the most recent call wins, and :meth:`restore` clears it.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0, 1], got {factor}")
        self.degradation = factor

    def restore(self) -> None:
        """Return the channel to full bandwidth."""
        self.degradation = 1.0

    def stall(self) -> None:
        """Freeze the channel's copy engine (a DMA stall fault)."""
        self.stalled = True

    def unstall(self) -> None:
        """Release a DMA stall; queued retries can proceed again."""
        self.stalled = False

    def __repr__(self) -> str:
        return f"<Channel {self.name} ({self.spec.name})>"


@dataclass
class Route:
    """An ordered list of channels a transfer must traverse."""

    channels: list[Channel]

    @cached_property
    def sorted_channels(self) -> list[Channel]:
        """Channels in global acquisition order (by name).

        Transfers grab every hop in this deterministic order so
        overlapping routes can never deadlock; cached because channel
        membership of a route never changes after construction.
        """
        return sorted(self.channels, key=lambda ch: ch.name)

    @property
    def latency(self) -> float:
        """Total setup latency: the per-hop latencies are paid in series."""
        return sum(ch.spec.latency for ch in self.channels)

    @property
    def bottleneck_bandwidth(self) -> float:
        """Effective bandwidth of the slowest hop.

        Honours per-channel :attr:`Channel.degradation`, so a degraded
        NVLink route reports (and delivers) less bandwidth than its
        spec — the signal the AQUA coordinator uses to fail over to
        the PCIe path.
        """
        return min(ch.effective_bandwidth for ch in self.channels)

    @property
    def healthy(self) -> bool:
        """Whether every hop is undegraded and unstalled."""
        return all(ch.healthy for ch in self.channels)

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended seconds to move ``nbytes`` along this route."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bottleneck_bandwidth

    def effective_bandwidth(self, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / self.transfer_time(nbytes)

    def __repr__(self) -> str:
        hops = " -> ".join(ch.name for ch in self.channels)
        return f"<Route {hops}>"


class Interconnect:
    """The wiring of one server: channels between device identifiers.

    Devices are referenced by hashable identifiers (the GPU / DRAM
    objects themselves in practice).  Build the topology with
    :meth:`add_channel` / :meth:`add_route`, or use the classmethod
    constructors for the standard server layouts.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: Opt-in analytic channel-timeline fast path for DMA transfers
        #: (see :class:`~repro.hardware.dma.Transfer`).  Off by default:
        #: the exact Resource-FIFO path remains the reference semantics,
        #: and the fast path is provably (and test-enforced) identical
        #: in grant order, completion times and channel ledgers.
        self.transfer_fastpath = False
        self.channels: dict[str, Channel] = {}
        self._routes: dict[tuple[Hashable, Hashable], list[str]] = {}
        #: Route objects are immutable views over mutable channels, so
        #: they can be cached per endpoint pair instead of rebuilt for
        #: every transfer.  Invalidated by :meth:`add_route`.
        self._route_cache: dict[tuple[Hashable, Hashable], Route] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_channel(self, name: str, spec: LinkSpec) -> Channel:
        """Create (or return an existing) named channel."""
        if name in self.channels:
            return self.channels[name]
        channel = Channel(name=name, spec=spec, engine=Resource(self.env, capacity=1))
        self.channels[name] = channel
        return channel

    def add_route(self, src: Hashable, dst: Hashable, channel_names: list[str]) -> None:
        """Declare that transfers from ``src`` to ``dst`` use these channels."""
        for name in channel_names:
            if name not in self.channels:
                raise KeyError(f"unknown channel {name!r}")
        self._routes[(src, dst)] = list(channel_names)
        self._route_cache.pop((src, dst), None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def route(self, src: Hashable, dst: Hashable) -> Route:
        """Return the route from ``src`` to ``dst``.

        Raises
        ------
        RoutingError
            If the two devices are not connected.
        """
        key = (src, dst)
        route = self._route_cache.get(key)
        if route is not None:
            return route
        if src is dst or src == dst:
            raise RoutingError(f"source and destination are the same device: {src!r}")
        try:
            names = self._routes[key]
        except KeyError:
            raise RoutingError(f"no route from {src!r} to {dst!r}") from None
        route = self._route_cache[key] = Route(
            [self.channels[name] for name in names]
        )
        return route

    def connected(self, src: Hashable, dst: Hashable) -> bool:
        """Whether a route exists from ``src`` to ``dst``."""
        return (src, dst) in self._routes

    def peers(self, device: Hashable) -> list[Hashable]:
        """All devices reachable from ``device``."""
        return [dst for (src, dst) in self._routes if src == device]

    def __repr__(self) -> str:
        return (
            f"<Interconnect channels={len(self.channels)} "
            f"routes={len(self._routes)}>"
        )


@dataclass
class TopologyDescription:
    """Summary of a built topology, useful for logging and tests."""

    kind: str
    n_gpus: int
    gpu_link: LinkSpec
    pcie_link: LinkSpec
    extra: dict = field(default_factory=dict)
