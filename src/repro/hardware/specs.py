"""Hardware specification presets.

All numbers come from public datasheets and the paper's own measurements:

* A100-80G: 80 GiB HBM2e at ~2.0 TB/s, 312 TFLOP/s FP16 (dense).
* NVLink-3 GPU pair: the paper measures ~100 GB/s effective at 2 MB
  transfers, saturating at ~250 GB/s (Figure 3a).  A ``latency +
  size/peak`` model with 12 us latency and 250 GB/s peak reproduces both
  points.
* PCIe 4.0 x16: ~25 GB/s effective (A100 hosts); PCIe 5.0 x16: 64 GB/s
  (quoted in the paper for comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

GiB = 1024**3
GB = 10**9
MB = 10**6
KB = 10**3


@dataclass(frozen=True)
class GPUSpec:
    """Static performance characteristics of one GPU.

    Attributes
    ----------
    name:
        Human-readable identifier.
    hbm_bytes:
        High-bandwidth memory capacity in bytes.
    hbm_bandwidth:
        HBM read/write bandwidth in bytes/s (drives memory-bound kernels).
    fp16_flops:
        Peak dense FP16 throughput in FLOP/s.
    flops_efficiency:
        Fraction of peak FLOP/s achievable by real inference kernels.
    kernel_overhead:
        Fixed per-kernel-launch overhead in seconds.
    copy_interference:
        Fractional slowdown of concurrent compute while this GPU is a
        source or destination of an interconnect copy (Figure 3b shows
        this is <5% in practice).
    """

    name: str
    hbm_bytes: int
    hbm_bandwidth: float
    fp16_flops: float
    flops_efficiency: float = 0.5
    kernel_overhead: float = 30e-6
    copy_interference: float = 0.03

    # cached_property works on a frozen dataclass (it writes straight to
    # ``__dict__``, bypassing the frozen ``__setattr__``); these are read
    # on every roofline evaluation, i.e. every simulated iteration.
    @cached_property
    def effective_flops(self) -> float:
        """Achievable FLOP/s for dense inference kernels."""
        return self.fp16_flops * self.flops_efficiency

    @cached_property
    def effective_hbm_bandwidth(self) -> float:
        """Achievable HBM bandwidth (real kernels reach ~80% of peak)."""
        return self.hbm_bandwidth * 0.8


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point data path with a latency + bandwidth cost model.

    The time to move ``n`` bytes is ``latency + n / peak_bandwidth``;
    the resulting *effective* bandwidth ``n / time`` is tiny for small
    transfers and approaches ``peak_bandwidth`` for large ones, matching
    the measured NVLink curve of Figure 3a.
    """

    name: str
    peak_bandwidth: float  # bytes / second
    latency: float  # seconds of fixed setup cost per transfer

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over this link, uncontended."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.peak_bandwidth

    def effective_bandwidth(self, nbytes: float) -> float:
        """Observed bandwidth (bytes/s) for a transfer of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.transfer_time(nbytes)


def transfer_time(spec: LinkSpec, nbytes: float) -> float:
    """Module-level convenience wrapper for :meth:`LinkSpec.transfer_time`."""
    return spec.transfer_time(nbytes)


def effective_bandwidth(spec: LinkSpec, nbytes: float) -> float:
    """Module-level wrapper for :meth:`LinkSpec.effective_bandwidth`."""
    return spec.effective_bandwidth(nbytes)


# ---------------------------------------------------------------------------
# GPU presets
# ---------------------------------------------------------------------------
A100_80G = GPUSpec(
    name="A100-80G",
    hbm_bytes=80 * GiB,
    hbm_bandwidth=2.0e12,
    fp16_flops=312e12,
)

H100_80G = GPUSpec(
    name="H100-80G",
    hbm_bytes=80 * GiB,
    hbm_bandwidth=3.35e12,
    fp16_flops=990e12,
)


# ---------------------------------------------------------------------------
# Link presets
# ---------------------------------------------------------------------------
#: PCIe 4.0 x16 as seen by an A100 (~25 GB/s effective for large DMA).
PCIE_GEN4_X16 = LinkSpec(name="PCIe-4.0-x16", peak_bandwidth=25 * GB, latency=10e-6)

#: PCIe 5.0 x16 (64 GB/s, quoted by the paper for newer hosts).
PCIE_GEN5_X16 = LinkSpec(name="PCIe-5.0-x16", peak_bandwidth=64 * GB, latency=8e-6)

#: Direct NVLink-3 between two A100s.  Calibrated against Figure 3a:
#: effective bandwidth is ~100 GB/s at 2 MB and saturates near 250 GB/s.
NVLINK3_P2P = LinkSpec(name="NVLink-3-P2P", peak_bandwidth=250 * GB, latency=12e-6)

#: NVLink-4 between two H100s (~450 GB/s per direction).
NVLINK4_P2P = LinkSpec(name="NVLink-4-P2P", peak_bandwidth=450 * GB, latency=10e-6)

#: Per-GPU port into an A100 NVSwitch fabric (300 GB/s per direction
#: nominal; slightly higher latency than a direct link).
NVSWITCH_A100 = LinkSpec(name="NVSwitch-A100", peak_bandwidth=270 * GB, latency=15e-6)
