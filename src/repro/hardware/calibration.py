"""Calibrate link models from measured bandwidth points.

The NVLink preset in :mod:`repro.hardware.specs` was derived from the
paper's two published measurements (Figure 3a): ~100 GB/s effective at
2 MB transfers and ~250 GB/s at saturation.  This module makes that
derivation a first-class tool: given any set of ``(transfer_size,
observed_bandwidth)`` points from a real machine (e.g. the output of
``nccl-tests`` or ``p2pBandwidthLatencyTest``), it fits the
``latency + size/peak`` model and returns a :class:`LinkSpec`, so the
simulator can be re-calibrated to new hardware without code changes.

The model ``t(s) = L + s/P`` is linear in ``(1, s)``, so the fit is an
ordinary least-squares on transfer *times* ``t_i = s_i / bw_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.specs import LinkSpec


class CalibrationError(ValueError):
    """Raised when the measurements cannot produce a sane link model."""


@dataclass(frozen=True)
class BandwidthPoint:
    """One measurement: ``nbytes`` transfers observed at ``bandwidth`` B/s."""

    nbytes: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.nbytes <= 0 or self.bandwidth <= 0:
            raise CalibrationError(
                f"measurement must be positive, got {self.nbytes}B @ {self.bandwidth}B/s"
            )

    @property
    def transfer_time(self) -> float:
        return self.nbytes / self.bandwidth


def fit_link(
    points: Sequence[BandwidthPoint], name: str = "calibrated-link"
) -> LinkSpec:
    """Least-squares fit of a :class:`LinkSpec` to measured points.

    Requires at least two measurements at distinct transfer sizes.

    Raises
    ------
    CalibrationError
        If the fit produces a non-positive peak bandwidth or negative
        latency (inconsistent measurements).
    """
    if len(points) < 2:
        raise CalibrationError("need at least two measurements to fit a link")
    sizes = np.array([p.nbytes for p in points], dtype=float)
    if len(set(sizes)) < 2:
        raise CalibrationError("measurements must span at least two transfer sizes")
    times = np.array([p.transfer_time for p in points], dtype=float)
    design = np.column_stack([np.ones_like(sizes), sizes])
    (latency, inv_peak), *_ = np.linalg.lstsq(design, times, rcond=None)
    if inv_peak <= 0:
        raise CalibrationError(
            "fitted peak bandwidth is not positive; measurements are inconsistent "
            "with a latency+bandwidth model"
        )
    latency = max(0.0, float(latency))
    return LinkSpec(name=name, peak_bandwidth=float(1.0 / inv_peak), latency=latency)


def fit_link_from_pairs(
    pairs: Sequence[tuple[float, float]], name: str = "calibrated-link"
) -> LinkSpec:
    """Convenience wrapper taking raw ``(nbytes, bandwidth)`` tuples."""
    return fit_link([BandwidthPoint(n, bw) for n, bw in pairs], name=name)


def residuals(spec: LinkSpec, points: Sequence[BandwidthPoint]) -> list[float]:
    """Relative bandwidth error of the model at each measured point."""
    out = []
    for p in points:
        predicted = spec.effective_bandwidth(p.nbytes)
        out.append((predicted - p.bandwidth) / p.bandwidth)
    return out


def paper_fig3a_points() -> list[BandwidthPoint]:
    """The two anchor measurements the paper reports for an A100 pair."""
    GB = 10**9
    MB = 10**6
    return [
        BandwidthPoint(2 * MB, 100 * GB),
        BandwidthPoint(1024 * MB, 247 * GB),
    ]
