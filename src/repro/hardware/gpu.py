"""Devices: GPUs with HBM accounting and compute, and host DRAM."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

from repro.hardware.specs import GPUSpec
from repro.sim import Environment, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.server import Server


class OutOfDeviceMemory(MemoryError):
    """Raised when a reservation exceeds the free capacity of a pool."""


@dataclass
class MemoryPool:
    """Byte-granularity accounting for a device memory.

    The pool tracks named reservations so tests and reports can see who
    holds memory; fine-grained (block) allocation for KV caches is
    layered on top in :mod:`repro.memory`.
    """

    capacity: int
    reservations: dict[str, int] = field(default_factory=dict)
    #: High-water mark of :attr:`used` over the pool's lifetime —
    #: exported as ``aqua_pool_peak_bytes`` by the telemetry layer.
    peak: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        self.peak = max(self.peak, self.used)

    @property
    def used(self) -> int:
        return sum(self.reservations.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def reserve(self, tag: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``tag`` (tags accumulate)."""
        if nbytes < 0:
            raise ValueError(f"negative reservation {nbytes}")
        if nbytes > self.free:
            raise OutOfDeviceMemory(
                f"cannot reserve {nbytes} bytes under {tag!r}: "
                f"only {self.free} of {self.capacity} free"
            )
        self.reservations[tag] = self.reservations.get(tag, 0) + nbytes
        if self.used > self.peak:
            self.peak = self.used

    def release(self, tag: str, nbytes: Optional[int] = None) -> int:
        """Release ``nbytes`` (default: all) held under ``tag``.

        Returns the number of bytes actually released.
        """
        held = self.reservations.get(tag, 0)
        if nbytes is None:
            nbytes = held
        if nbytes < 0:
            raise ValueError(f"negative release {nbytes}")
        if nbytes > held:
            raise ValueError(
                f"cannot release {nbytes} bytes from {tag!r}: only {held} held"
            )
        remaining = held - nbytes
        if remaining:
            self.reservations[tag] = remaining
        else:
            self.reservations.pop(tag, None)
        return nbytes

    def held(self, tag: str) -> int:
        """Bytes currently held under ``tag``."""
        return self.reservations.get(tag, 0)

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the reservation table.

        Used by the conservation audit (:mod:`repro.audit`) so invariant
        checks iterate a stable view even if a monitor callback runs
        concurrently with pool mutation.
        """
        return dict(self.reservations)


class GPU:
    """One simulated GPU: HBM pool, a compute queue, and copy bookkeeping.

    Compute work is modelled as exclusive occupancy of the GPU for a
    duration derived from the model performance rooflines; concurrent
    interconnect copies touching this GPU dilate compute slightly
    (``spec.copy_interference``), matching the paper's Figure 3b finding
    that memory donation costs producers <5% throughput.
    """

    def __init__(
        self,
        env: Environment,
        index: int,
        spec: GPUSpec,
        server: Optional["Server"] = None,
    ) -> None:
        self.env = env
        self.index = index
        self.spec = spec
        self.server = server
        self.hbm = MemoryPool(capacity=spec.hbm_bytes)
        self.compute = Resource(env, capacity=1)
        self.active_copies = 0
        self.busy_time = 0.0
        #: Health flag set by fault injection (:mod:`repro.faults`).
        #: While ``True``, new DMA transfers touching this GPU raise
        #: :class:`~repro.hardware.dma.GpuFailedError` and the memory
        #: it held is considered lost by anyone who offloaded to it.
        self.failed = False
        #: Count of fault-schedule entries currently targeting this GPU
        #: (incremented at ``FaultInjector.install``, decremented when
        #: the fault clears).  While non-zero the DMA transfer fast path
        #: falls back to the exact Resource path for copies touching
        #: this GPU — see :attr:`Channel.fault_scheduled
        #: <repro.hardware.interconnect.Channel.fault_scheduled>`.
        self.fault_scheduled = 0

    def fail(self) -> None:
        """Mark the GPU failed: its HBM contents are gone.

        The accounting pools are left untouched — owners of the data
        (AQUA tensors, engines) discover the loss when their next
        transfer raises and release their reservations themselves,
        mirroring how a real driver reports ECC/Xid errors lazily.
        """
        self.failed = True

    def recover(self) -> None:
        """Bring the GPU back (empty — lost data does not return)."""
        self.failed = False

    @property
    def name(self) -> str:
        prefix = self.server.name if self.server is not None else "gpu"
        return f"{prefix}/gpu{self.index}"

    @property
    def free_hbm(self) -> int:
        """Free HBM bytes."""
        return self.hbm.free

    def dilation(self) -> float:
        """Current compute slow-down factor due to active copies."""
        if self.active_copies > 0:
            return 1.0 + self.spec.copy_interference
        return 1.0

    def compute_op(self, duration: float) -> Generator:
        """Run an exclusive compute kernel of ``duration`` seconds.

        Usage (inside a simulation process)::

            yield from gpu.compute_op(0.016)
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        with self.compute.request() as req:
            yield req
            dilated = duration * self.dilation()
            self.busy_time += dilated
            # Bare-delay yield: identical ordering to env.timeout(dilated)
            # without allocating a Timeout per compute kernel.
            yield dilated

    def __repr__(self) -> str:
        return f"<GPU {self.name} free={self.free_hbm / 2**30:.1f}GiB>"

    # GPUs are used as dict keys / route endpoints: identity semantics.
    __hash__ = object.__hash__


class HostDRAM:
    """Host memory: a large pool reachable over PCIe."""

    def __init__(self, env: Environment, capacity: int, server: Optional["Server"] = None) -> None:
        self.env = env
        self.pool = MemoryPool(capacity=capacity)
        self.server = server

    @property
    def name(self) -> str:
        prefix = self.server.name if self.server is not None else "host"
        return f"{prefix}/dram"

    @property
    def free(self) -> int:
        return self.pool.free

    def __repr__(self) -> str:
        return f"<HostDRAM free={self.pool.free / 2**30:.0f}GiB>"

    __hash__ = object.__hash__
