"""``python -m repro.benchmarks`` == ``aqua-repro bench``."""

import sys

from repro.benchmarks.runner import main

sys.exit(main())
