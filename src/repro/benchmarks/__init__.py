"""Persistent benchmark harness for the simulator (``aqua-repro bench``).

See :mod:`repro.benchmarks.scenarios` for what is measured and
:mod:`repro.benchmarks.runner` for the BENCH JSON artifact format and
the regression gate.  ``docs/performance.md`` documents the workflow.
"""

from repro.benchmarks.runner import (
    BENCH_INDEX,
    PRIMARY_METRIC,
    RECORDED_BASELINE,
    SCHEMA,
    compare_bench,
    load_bench,
    peak_rss_bytes,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.benchmarks.scenarios import SCENARIOS, kernel_event_count

__all__ = [
    "BENCH_INDEX",
    "PRIMARY_METRIC",
    "RECORDED_BASELINE",
    "SCENARIOS",
    "SCHEMA",
    "compare_bench",
    "kernel_event_count",
    "load_bench",
    "peak_rss_bytes",
    "run_bench",
    "validate_bench",
    "write_bench",
]
