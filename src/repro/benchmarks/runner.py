"""Run benchmark scenarios, persist BENCH JSON, gate regressions.

The persistent artifact is ``BENCH_<n>.json`` at the repo root (one per
PR index, so the trajectory of the repo's performance is readable from
the checked-in files).  Schema, loosely::

    {
      "schema": "aqua-repro-bench/v1",
      "bench_index": 5,
      "quick": false,
      "jobs": 1,
      "python": "3.11.x",
      "platform": "Linux-...",
      "baseline": {"kernel_events_per_s": 531646, "source": "..."},
      "scenarios": {"kernel": {"events_per_s": ...}, ...},
      "cache": {"hits": 0, "misses": 8},
      "peak_rss_bytes": 123456789
    }

``jobs`` is the ``--jobs`` value the harness ran with and ``cache``
aggregates run-cache hit/miss counts across scenarios (today only
``runall_parallel`` exercises the cache) — both recorded so an artifact
is interpretable without knowing the command line that produced it.

``baseline`` records the *pre-PR* kernel throughput this PR's fast path
is measured against; it is data carried in the file, not recomputed.
``compare_bench`` gates a fresh run against a previously written file
(the ``--baseline`` flag), flagging any scenario whose primary metric
regressed by more than the tolerance.
"""

from __future__ import annotations

import inspect
import json
import platform
import resource
import sys
from typing import Iterable, Optional

from repro.benchmarks.scenarios import SCENARIOS

SCHEMA = "aqua-repro-bench/v1"

#: Index of the current BENCH artifact; names the default output
#: file (``BENCH_7.json``).
BENCH_INDEX = 7

#: The kernel throughput recorded immediately before the fast-path PR,
#: measured by the then-current ``benchmarks/test_simulator_performance.py``
#: (same 200-process x 200-hop microbenchmark, ``env.timeout`` workers)
#: at commit 43b88d4 on this machine.  Carried into every BENCH file so
#: the speedup is computable from the artifact alone.
RECORDED_BASELINE = {
    "kernel_events_per_s": 531_646,
    "source": (
        "benchmarks/test_simulator_performance.py at 43b88d4 "
        "(pre fast-path kernel, env.timeout workers)"
    ),
}

#: The headline metric per scenario — what ``compare_bench`` gates on.
#: Bigger is better for all of them.
PRIMARY_METRIC = {
    "kernel": "events_per_s",
    "vllm_e2e": "sim_s_per_wall_s",
    "flexgen_e2e": "sim_s_per_wall_s",
    "flexgen_e2e_fastpath": "sim_s_per_wall_s",
    "cluster": "sim_s_per_wall_s",
    "cluster_fastpath": "sim_s_per_wall_s",
    # Modeled transfers retired per wall second on the DMA hot loop
    # (BENCH_7); the events-per-transfer reduction rides alongside.
    "transfer": "transfers_per_s",
    # Cold-vs-warm-cache speedup: nearly hardware-independent, unlike
    # the core-count-bounded parallel ``speedup`` reported alongside.
    "runall_parallel": "warm_speedup",
}


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is KiB on Linux (bytes on macOS, where this would
    overstate by 1024x — acceptable for a relative gate, and the
    harness runs in Linux CI).
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_bench(
    names: Optional[Iterable[str]] = None,
    quick: bool = False,
    jobs: int = 1,
    scheduler: str = "heap",
    transfer_fastpath: bool = False,
) -> dict:
    """Run the named scenarios (default: all) and return the BENCH doc.

    ``jobs`` is forwarded to every scenario that declares a ``jobs``
    parameter (the kernel repeat loop and the experiment fan-out); the
    default of 1 keeps timed regions uncontended.  ``scheduler``
    selects the kernel schedule backend for every scenario that
    declares a ``scheduler`` parameter (see ``--scheduler`` on the
    CLI); scenario metrics record which backend produced them, and
    :func:`compare_bench` refuses to gate across mismatched backends.
    ``transfer_fastpath`` likewise flows to every scenario declaring
    the parameter (the e2e rigs and the ``transfer`` A/B) — recorded
    per scenario and never gated across a toggle mismatch.  The
    artifact records ``jobs`` plus aggregate run-cache hit/miss counts.
    """
    selected = list(names) if names else list(SCENARIOS)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise KeyError(
            f"unknown scenario(s) {unknown}; available: {sorted(SCENARIOS)}"
        )
    doc = {
        "schema": SCHEMA,
        "bench_index": BENCH_INDEX,
        "quick": quick,
        "jobs": jobs,
        "scheduler": scheduler,
        "transfer_fastpath": transfer_fastpath,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "baseline": dict(RECORDED_BASELINE),
        "scenarios": {},
    }
    for name in selected:
        fn = SCENARIOS[name]
        kwargs = {"quick": quick}
        params = inspect.signature(fn).parameters
        if "jobs" in params:
            kwargs["jobs"] = jobs
        if "scheduler" in params:
            kwargs["scheduler"] = scheduler
        if "transfer_fastpath" in params:
            kwargs["transfer_fastpath"] = transfer_fastpath
        doc["scenarios"][name] = fn(**kwargs)
    doc["cache"] = {
        "hits": sum(
            m.get("cache_hits", 0) for m in doc["scenarios"].values()
        ),
        "misses": sum(
            m.get("cache_misses", 0) for m in doc["scenarios"].values()
        ),
    }
    doc["peak_rss_bytes"] = peak_rss_bytes()
    return doc


def validate_bench(doc: dict) -> None:
    """Raise ``ValueError`` listing every schema problem in ``doc``."""
    problems = []
    if not isinstance(doc, dict):
        raise ValueError(f"BENCH document must be a dict, got {type(doc).__name__}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("bench_index"), int):
        problems.append("bench_index must be an int")
    baseline = doc.get("baseline")
    if not isinstance(baseline, dict):
        problems.append("baseline must be a dict")
    else:
        kps = baseline.get("kernel_events_per_s")
        if not isinstance(kps, (int, float)) or kps <= 0:
            problems.append("baseline.kernel_events_per_s must be a positive number")
        if not isinstance(baseline.get("source"), str):
            problems.append("baseline.source must be a string")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("scenarios must be a non-empty dict")
    else:
        for name, metrics in scenarios.items():
            if not isinstance(metrics, dict):
                problems.append(f"scenarios[{name!r}] must be a dict")
                continue
            primary = PRIMARY_METRIC.get(name)
            if primary is None:
                continue  # user-defined scenario; no gate metric required
            value = metrics.get(primary)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"scenarios[{name!r}].{primary} must be a positive number"
                )
    rss = doc.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss <= 0:
        problems.append("peak_rss_bytes must be a positive int")
    if problems:
        raise ValueError("invalid BENCH document:\n  " + "\n  ".join(problems))


def compare_bench(
    current: dict, baseline: dict, tolerance: float = 0.10
) -> tuple[list[str], list[str]]:
    """Compare two BENCH docs scenario by scenario.

    Returns ``(regressions, report_lines)``: a regression is a scenario
    whose primary metric fell more than ``tolerance`` (fractional) below
    the baseline document's value.  Scenarios present in only one
    document are reported but never gate.

    The gate only compares like-for-like: a scenario measured under a
    different schedule backend than the baseline's (the recorded
    ``scheduler`` field; absent means the historical ``"heap"``) is
    reported but never gated, since raw events/s across backends is an
    A/B comparison, not a regression signal.  Likewise the coarsened
    companion metrics (``token_steps_per_s`` etc.) are informational —
    only the raw primary metric gates.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    regressions: list[str] = []
    lines: list[str] = []
    base_scenarios = baseline.get("scenarios", {})
    for name, metrics in current.get("scenarios", {}).items():
        primary = PRIMARY_METRIC.get(name)
        if primary is None or primary not in metrics:
            continue
        base_metrics = base_scenarios.get(name)
        if not base_metrics or primary not in base_metrics:
            lines.append(f"{name}: no baseline value (new scenario)")
            continue
        cur_sched = metrics.get("scheduler") or "heap"
        base_sched = base_metrics.get("scheduler") or "heap"
        if cur_sched != base_sched:
            lines.append(
                f"{name}: scheduler {cur_sched!r} vs baseline "
                f"{base_sched!r} — not like-for-like, not gated"
            )
            continue
        # Same rule for the transfer fast path (absent means the
        # historical Resource path): the toggle changes the event
        # economics, so cross-toggle numbers are an A/B, not a gate.
        cur_fast = bool(metrics.get("transfer_fastpath", False))
        base_fast = bool(base_metrics.get("transfer_fastpath", False))
        if cur_fast != base_fast:
            lines.append(
                f"{name}: transfer_fastpath {cur_fast} vs baseline "
                f"{base_fast} — not like-for-like, not gated"
            )
            continue
        cur, base = metrics[primary], base_metrics[primary]
        ratio = cur / base if base else float("inf")
        line = f"{name}: {primary} {cur:,.0f} vs baseline {base:,.0f} ({ratio:.2f}x)"
        if cur < base * (1.0 - tolerance):
            regressions.append(line)
            lines.append(line + "  <-- REGRESSION")
        else:
            lines.append(line)
    for name in base_scenarios:
        if name not in current.get("scenarios", {}):
            lines.append(f"{name}: in baseline but not in this run")
    return regressions, lines


def write_bench(doc: dict, path: str) -> None:
    validate_bench(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_bench(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    validate_bench(doc)
    return doc


def main(argv=None) -> int:  # pragma: no cover - thin wrapper, CLI-tested
    """Entry point for ``python -m repro.benchmarks``."""
    from repro.cli import main as cli_main

    return cli_main(["bench"] + list(argv if argv is not None else sys.argv[1:]))
