"""Benchmark scenarios: what the ``aqua-repro bench`` harness measures.

Each scenario is a plain function ``fn(quick: bool) -> dict`` returning
a flat metrics dict.  Three layers of the stack are covered:

* ``kernel`` — the simulation kernel alone: a pure process/sleep
  microbenchmark whose events/second is the repo's headline speed
  number (tracked against the recorded pre-fast-path baseline).
* ``vllm_e2e`` / ``flexgen_e2e`` — loaded serving engines, measuring
  how much faster than realtime a full rig simulates.
* ``cluster`` — the 8-GPU NVSwitch stress rig (four consumer/producer
  pairs sharing one fabric), the heaviest standard configuration.
* ``transfer`` — the DMA/offload hot loop alone, A/B'd across the
  Resource path and the analytic channel-timeline fast path (BENCH_7;
  ``flexgen_e2e_fastpath`` / ``cluster_fastpath`` are the e2e rigs
  with the fast path pinned on).
* ``runall_parallel`` — the experiment layer: a fixed subset of
  independent simulation cells run serially, fanned out over the
  process pool, and replayed from a warm run cache (PR 5; see
  ``docs/parallelism.md``).

Methodology notes
-----------------
* The kernel scenario reports the **best** of several repeats: on a
  noisy machine the minimum wall time is the least-contaminated
  estimate of the true cost, and the per-repeat spread is reported so
  regressions can be told apart from noise.
* Delays are precomputed per process so the generator body is nothing
  but the yield — the benchmark measures the kernel, not arithmetic.
* Workers use bare-delay yields (``yield d``) when the kernel supports
  them and fall back to ``yield env.timeout(d)`` on kernels that
  predate the fast path, so one harness can A/B both.
* GC stays enabled: disabling it flatters allocation-heavy code, and
  real runs (pytest, the CLI) keep it on.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.sim import core as sim_core
from repro.sim import Environment

#: Registry of scenario name -> fn(quick) -> metrics dict.  Order is
#: the order ``aqua-repro bench`` runs and reports them in.
SCENARIOS: dict[str, Callable[[bool], dict]] = {}


def scenario(fn: Callable[[bool], dict]) -> Callable[[bool], dict]:
    SCENARIOS[fn.__name__] = fn
    return fn


# ---------------------------------------------------------------------------
# Kernel microbenchmark
# ---------------------------------------------------------------------------
def _kernel_round(
    n_processes: int, hops: int, scheduler: str = "heap", coarsen: int = 1
) -> float:
    """One timed run of the process/sleep microbenchmark; returns wall s.

    ``scheduler`` selects the kernel schedule backend.  ``coarsen > 1``
    is the microbenchmark analogue of time-warp decode coarsening: each
    worker still models ``hops`` per-token steps of simulated time, but
    fuses every ``coarsen`` consecutive delays into one aggregate sleep
    — same simulated horizon, ~``coarsen``x fewer kernel events.
    """
    try:
        env = Environment(scheduler=scheduler)
    except TypeError:  # pre-pluggable kernels (A/B harness support)
        env = Environment()
    bare = getattr(sim_core, "SUPPORTS_BARE_DELAY", False)

    # Precompute each worker's delay sequence (7 distinct values keeps
    # the schedule honest without putting arithmetic on the timed path).
    all_delays = [
        tuple(0.001 * ((i + step) % 7 + 1) for step in range(hops))
        for i in range(n_processes)
    ]
    if coarsen > 1:
        all_delays = [
            tuple(
                sum(delays[j : j + coarsen])
                for j in range(0, len(delays), coarsen)
            )
            for delays in all_delays
        ]

    if bare:

        def worker(delays):
            for d in delays:
                yield d

    else:

        def worker(delays):
            timeout = env.timeout
            for d in delays:
                yield timeout(d)

    for delays in all_delays:
        env.process(worker(delays))
    started = time.perf_counter()
    env.run()
    return time.perf_counter() - started


def kernel_event_count(n_processes: int, hops: int) -> int:
    """Events the microbenchmark schedules, counted analytically.

    Per process: one Initialize, one sleep per hop, one process-completion
    event.  Analytic so the same number applies to kernels with and
    without an ``events_processed`` counter.
    """
    return n_processes * (hops + 2)


#: Aggregation window for the kernel scenario's coarsened companion run
#: (the time-warp analogue: same modeled token-steps, ~8x fewer events).
KERNEL_COARSEN = 8


@scenario
def kernel(quick: bool = False, jobs: int = 1, scheduler: str = "heap") -> dict:
    n_processes, hops = (100, 60) if quick else (200, 200)
    repeats = 3 if quick else 7
    # One untimed warm-up round: the first run in a fresh process pays
    # import-cold caches and allocator growth that no steady-state
    # caller of the kernel pays.
    _kernel_round(n_processes, hops, scheduler=scheduler)
    # The repeat loop submits through the experiment pool; ``jobs=1``
    # (the bench default) is the historical inline loop, ``jobs>1``
    # gives each repeat its own core.  Each round times itself, so the
    # best-of-N statistic survives fan-out as long as cores are not
    # oversubscribed.
    from repro.experiments.pool import RunSpec, run_specs

    def rounds(coarsen: int) -> list[float]:
        specs = [
            RunSpec(
                task=f"{__name__}:_kernel_round",
                kwargs={
                    "n_processes": n_processes,
                    "hops": hops,
                    "scheduler": scheduler,
                    "coarsen": coarsen,
                },
                label=f"kernel round {i} (coarsen={coarsen})",
            )
            for i in range(repeats)
        ]
        return [r.value for r in run_specs(specs, jobs=jobs)]

    # Exact pass: one event per modeled step — the raw events/s number,
    # like-for-like with every earlier BENCH artifact.
    walls = rounds(coarsen=1)
    events = kernel_event_count(n_processes, hops)
    best = min(walls)

    # Coarsened companion: identical modeled work (``token_steps``
    # per-token steps of simulated time), aggregated KERNEL_COARSEN
    # steps per event.  ``token_steps_per_s`` is the modeled-throughput
    # metric decode coarsening buys; ``events_per_s`` above stays the
    # raw kernel number so the regression gate compares like-for-like.
    coarse_hops = -(-hops // KERNEL_COARSEN)  # ceil
    coarse_walls = rounds(coarsen=KERNEL_COARSEN)
    coarse_events = kernel_event_count(n_processes, coarse_hops)
    coarse_best = min(coarse_walls)
    token_steps = n_processes * hops

    return {
        "events_per_s": events / best,
        "events_per_s_median": events / sorted(walls)[len(walls) // 2],
        "events": events,
        "wall_s_best": best,
        "wall_s_spread": max(walls) - best,
        "repeats": repeats,
        "bare_delay_yields": getattr(sim_core, "SUPPORTS_BARE_DELAY", False),
        "scheduler": scheduler,
        "token_steps": token_steps,
        "token_steps_per_s": token_steps / coarse_best,
        "coarsen": KERNEL_COARSEN,
        "coarse_events": coarse_events,
        "coarse_events_per_s": coarse_events / coarse_best,
        "coarse_wall_s_best": coarse_best,
    }


# ---------------------------------------------------------------------------
# End-to-end serving rigs
# ---------------------------------------------------------------------------
#: Repeats for the e2e scenarios.  The sims are deterministic, so every
#: repeat models identical work and the minimum wall time is the least
#: noise-contaminated estimate — the same best-of methodology as the
#: kernel scenario, extended here because single-shot e2e walls (tens
#: to hundreds of ms) made the regression gate flap on busy machines.
E2E_REPEATS = 5


def _best_of(run_once: Callable[[], tuple], repeats: int = E2E_REPEATS) -> tuple:
    """Run ``run_once() -> (env, wall_s, tokens)`` ``repeats`` times;
    return ``(env, best_wall, spread, tokens)`` from the fastest run."""
    walls = []
    env = tokens = None
    for _ in range(repeats):
        env, wall, tokens = run_once()
        walls.append(wall)
    best = min(walls)
    return env, best, max(walls) - best, tokens


def _e2e_metrics(
    env: Environment, sim_s: float, wall_s: float, transfer_fastpath: bool = False
) -> dict:
    out = {
        "sim_s": sim_s,
        "wall_s": wall_s,
        "sim_s_per_wall_s": sim_s / wall_s,
    }
    processed = getattr(env, "events_processed", None)
    if processed is not None:
        # Raw kernel events: deflated by design under decode coarsening
        # (that is the point), so BENCH artifacts carry modeled tokens
        # alongside and the regression gate never compares events/s
        # across different coarsening or scheduler settings.
        out["events"] = processed
        out["events_per_s"] = processed / wall_s
    out["scheduler"] = getattr(env, "scheduler", "heap")
    out["transfer_fastpath"] = transfer_fastpath
    return out


@scenario
def vllm_e2e(quick: bool = False, scheduler: str = "heap") -> dict:
    """A loaded vLLM engine on one GPU (continuous batching hot loop)."""
    from repro.hardware import Server
    from repro.models import MISTRAL_7B
    from repro.serving import VLLMEngine
    from repro.workloads import sharegpt_requests
    from repro.workloads.arrivals import submit_all

    duration, count = (30.0, 50) if quick else (120.0, 200)

    def once():
        env = Environment(scheduler=scheduler)
        server = Server(env, n_gpus=1)
        engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
        engine.start()
        submit_all(env, engine, sharegpt_requests(rate=5.0, count=count, seed=0))
        started = time.perf_counter()
        env.run(until=duration)
        wall = time.perf_counter() - started
        return env, wall, engine.metrics.tokens_generated

    env, wall, spread, tokens = _best_of(once)
    out = _e2e_metrics(env, duration, wall)
    out["wall_s_spread"] = spread
    out["tokens"] = tokens
    out["tokens_per_wall_s"] = tokens / wall
    return out


@scenario
def flexgen_e2e(
    quick: bool = False, scheduler: str = "heap", transfer_fastpath: bool = False
) -> dict:
    """The offloading rig of the determinism golden: FlexGen consumer +
    LLM producer over AQUA, long-prompt and ShareGPT traffic."""
    from repro.experiments.harness import build_consumer_rig
    from repro.models import LLAMA2_13B, OPT_30B
    from repro.workloads.arrivals import submit_all
    from repro.workloads.longprompt import long_prompt_requests
    from repro.workloads.sharegpt import sharegpt_requests

    duration = 10.0 if quick else 30.0

    def once():
        rig = build_consumer_rig(
            "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True,
            scheduler=scheduler, transfer_fastpath=transfer_fastpath,
        )
        rig.start()
        submit_all(rig.env, rig.consumer_engine, long_prompt_requests(start=2.0))
        submit_all(
            rig.env, rig.producer_engine,
            sharegpt_requests(rate=3.0, count=40, seed=7),
        )
        started = time.perf_counter()
        rig.env.run(until=duration)
        wall = time.perf_counter() - started
        return rig.env, wall, rig.consumer_engine.metrics.tokens_generated

    env, wall, spread, tokens = _best_of(once)
    out = _e2e_metrics(env, duration, wall, transfer_fastpath=transfer_fastpath)
    out["wall_s_spread"] = spread
    out["tokens"] = tokens
    out["tokens_per_wall_s"] = tokens / wall
    return out


@scenario
def flexgen_e2e_fastpath(quick: bool = False, scheduler: str = "heap") -> dict:
    """``flexgen_e2e`` with the analytic transfer fast path pinned on.

    Same modeled behaviour (the golden-digest tests prove it bit-equal);
    only the per-copy event count drops.  Recorded as its own scenario
    so BENCH artifacts carry the on/off pair side by side and the
    regression gate never crosses the toggle.
    """
    return flexgen_e2e(quick=quick, scheduler=scheduler, transfer_fastpath=True)


@scenario
def cluster(
    quick: bool = False, scheduler: str = "heap", transfer_fastpath: bool = False
) -> dict:
    """8-GPU NVSwitch stress: four consumer/producer pairs, one fabric."""
    from repro.aqua import Coordinator
    from repro.experiments.harness import build_consumer_rig
    from repro.hardware import Server
    from repro.models import AUDIOGEN, KANDINSKY, OPT_30B, SD_15, SD_XL
    from repro.workloads.arrivals import submit_all
    from repro.workloads.longprompt import long_prompt_requests

    duration = 5.0 if quick else 20.0

    def once():
        env = Environment(scheduler=scheduler)
        server = Server(
            env, n_gpus=8, topology="nvswitch",
            transfer_fastpath=transfer_fastpath,
        )
        coordinator = Coordinator()
        rigs = []
        for i, producer_model in enumerate((SD_15, SD_XL, KANDINSKY, AUDIOGEN)):
            rigs.append(
                build_consumer_rig(
                    "flexgen",
                    OPT_30B,
                    producer_model=producer_model,
                    use_aqua=True,
                    env=env,
                    server=server,
                    consumer_gpu=i,
                    producer_gpu=4 + i,
                    coordinator=coordinator,
                    name_prefix=f"pair{i}-",
                ).start()
            )
        env.run(until=1.0)  # producers donate before the workload starts
        for rig in rigs:
            submit_all(env, rig.consumer_engine, long_prompt_requests(start=1.0))
        started = time.perf_counter()
        env.run(until=1.0 + duration)
        wall = time.perf_counter() - started
        tokens = sum(r.consumer_engine.metrics.tokens_generated for r in rigs)
        return env, wall, tokens

    env, wall, spread, tokens = _best_of(once)
    out = _e2e_metrics(env, duration, wall, transfer_fastpath=transfer_fastpath)
    out["wall_s_spread"] = spread
    out["tokens"] = tokens
    out["tokens_per_wall_s"] = tokens / wall
    return out


@scenario
def cluster_fastpath(quick: bool = False, scheduler: str = "heap") -> dict:
    """``cluster`` with the analytic transfer fast path pinned on — the
    configuration whose copy bookkeeping dominated before this PR."""
    return cluster(quick=quick, scheduler=scheduler, transfer_fastpath=True)


# ---------------------------------------------------------------------------
# The DMA hot loop itself (BENCH_7)
# ---------------------------------------------------------------------------
def _transfer_storm(transfer_fastpath: bool, rounds: int) -> tuple:
    """Offload-heavy pure-transfer workload on the 8-GPU NVSwitch fabric.

    Four consumer/producer pairs ping-pong gather/fetch payloads over
    the switch (2-hop routes: the expensive case for the Resource path,
    at 4 events per copy) with periodic PCIe spills, while a second
    process per pair hammers the same route so a realistic fraction of
    copies is *contended* (fast-path cost 2 events instead of 1).
    Returns ``(env, wall_s, stats_fingerprint, transfers)``.
    """
    from repro.hardware import Server

    MiB = float(2**20)
    env = Environment()
    server = Server(
        env, n_gpus=8, topology="nvswitch", transfer_fastpath=transfer_fastpath
    )

    def pair_traffic(consumer, producer):
        for i in range(rounds):
            # Gather/scatter offload batch to the producer, fetch back.
            yield from server.transfer(consumer, producer, 64 * MiB, pieces=2)
            yield from server.transfer(producer, consumer, 48 * MiB)
            if i % 4 == 0:  # occasional DRAM spill over PCIe (1-hop)
                yield from server.transfer(consumer, server.dram, 16 * MiB)

    def contender(consumer, producer):
        # Same route as the pair's main traffic: these copies queue
        # behind it, exercising the analytic grant-wait (SleepUntil).
        for _ in range(rounds // 2):
            yield from server.transfer(consumer, producer, 8 * MiB)

    for i in range(4):
        env.process(pair_traffic(server.gpus[i], server.gpus[4 + i]))
        env.process(contender(server.gpus[i], server.gpus[4 + i]))

    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    stats = server.transfer_stats
    fingerprint = (
        stats.count,
        stats.bytes_total,
        repr(stats.busy_time),
        tuple(sorted(stats.per_route.items())),
        tuple(
            (name, ch.bytes_moved, ch.transfer_count)
            for name, ch in sorted(server.interconnect.channels.items())
        ),
        repr(env.now),
    )
    return env, wall, fingerprint, stats.count


@scenario
def transfer(quick: bool = False, transfer_fastpath: bool = False) -> dict:
    """The DMA/offload hot loop, A/B'd across both transfer paths.

    Runs the same deterministic transfer storm under the Resource path
    and under the analytic fast path, asserting the two runs agree on
    every aggregate (count, bytes, busy time, per-route and per-channel
    ledgers, final clock) before reporting.  ``event_reduction`` is the
    events-per-completed-transfer ratio (the ≥2x BENCH_7 headline);
    ``transfers_per_s`` — the gated primary metric — is modeled
    transfers retired per wall second under the mode selected by
    ``transfer_fastpath`` (the harness toggle), so the regression gate
    stays like-for-like with the artifact's recorded toggle.
    """
    rounds = 250 if quick else 1500
    repeats = 3 if quick else E2E_REPEATS

    def measure(fastpath: bool) -> tuple:
        best_wall, env, fingerprint, transfers = None, None, None, None
        for _ in range(repeats):
            env, wall, fingerprint, transfers = _transfer_storm(fastpath, rounds)
            if best_wall is None or wall < best_wall:
                best_wall = wall
        return env, best_wall, fingerprint, transfers

    env_off, wall_off, fp_off, transfers_off = measure(False)
    env_on, wall_on, fp_on, transfers_on = measure(True)
    identical = fp_off == fp_on
    if not identical:  # pragma: no cover - the equivalence tests pin this
        raise AssertionError(
            "transfer fast path diverged from the Resource path on the "
            f"bench workload:\n  off {fp_off}\n  on  {fp_on}"
        )
    events_off = env_off.events_processed
    events_on = env_on.events_processed
    per_off = events_off / transfers_off
    per_on = events_on / transfers_on
    wall = wall_on if transfer_fastpath else wall_off
    return {
        "transfers": transfers_off,
        "transfers_per_s": transfers_off / wall,
        "transfers_per_s_off": transfers_off / wall_off,
        "transfers_per_s_on": transfers_on / wall_on,
        "wall_s_off": wall_off,
        "wall_s_on": wall_on,
        "speedup": wall_off / wall_on,
        "events_off": events_off,
        "events_on": events_on,
        "events_per_transfer_off": per_off,
        "events_per_transfer_on": per_on,
        "event_reduction": per_off / per_on,
        "identical": identical,
        "repeats": repeats,
        "transfer_fastpath": transfer_fastpath,
    }


# ---------------------------------------------------------------------------
# Experiment-layer fan-out + run cache (PR 5)
# ---------------------------------------------------------------------------
def _runall_cell(seed: int = 0, duration: float = 120.0, count: int = 400) -> dict:
    """One experiment cell: the golden offloading rig, seeded traffic.

    Module-level and JSON-kwargs only, so it fans out through the
    experiment pool and memoises in the run cache.  Distinct seeds make
    distinct cells — the shape of a figure ensemble without its cost.
    """
    from repro.experiments.harness import build_consumer_rig
    from repro.models import LLAMA2_13B, OPT_30B
    from repro.workloads.arrivals import submit_all
    from repro.workloads.longprompt import long_prompt_requests
    from repro.workloads.sharegpt import sharegpt_requests

    rig = build_consumer_rig(
        "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True
    )
    rig.start()
    submit_all(rig.env, rig.consumer_engine, long_prompt_requests(start=2.0))
    submit_all(
        rig.env,
        rig.producer_engine,
        sharegpt_requests(rate=5.0, count=count, seed=seed),
    )
    rig.env.run(until=duration)
    return {
        "seed": seed,
        "tokens": rig.consumer_engine.metrics.tokens_generated,
        "producer_tokens": rig.producer_engine.metrics.tokens_generated,
    }


@scenario
def runall_parallel(quick: bool = False, jobs: int = 0) -> dict:
    """Experiment fan-out: a fixed cell subset, serial vs pool vs cache.

    Three passes over the same cells: ``--jobs 1`` serial (the
    pre-PR-5 execution model), ``--jobs N`` cold through the process
    pool, and ``--jobs N`` again against the warm content-addressed
    cache.  ``speedup`` is parallel-vs-serial wall clock (bounded by
    the machine's core count — ``cpus`` is recorded alongside so a
    1-core container's ~1x is interpretable); ``warm_speedup`` is
    cold-vs-warm and is the regression-gated primary metric because it
    is nearly hardware-independent.  The three passes must agree
    byte-for-byte (``digests_match``).
    """
    import hashlib
    import json
    import os
    import shutil
    import tempfile

    from repro.experiments.pool import RunCache, RunSpec, derive_seed, run_specs

    cells, duration, count = (4, 60.0, 200) if quick else (8, 120.0, 400)
    parallel_jobs = jobs if jobs and jobs > 1 else 4
    specs = [
        RunSpec(
            task=f"{__name__}:_runall_cell",
            kwargs={"duration": duration, "count": count},
            seed=derive_seed("runall_parallel", i),
            label=f"cell {i}",
        )
        for i in range(cells)
    ]

    def digest(results) -> str:
        payload = json.dumps([r.value for r in results], sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    started = time.perf_counter()
    serial = run_specs(specs, jobs=1)
    serial_wall = time.perf_counter() - started

    cache_dir = tempfile.mkdtemp(prefix="aqua-bench-cache-")
    try:
        cache = RunCache(cache_dir)
        started = time.perf_counter()
        cold = run_specs(specs, jobs=parallel_jobs, cache=cache)
        cold_wall = time.perf_counter() - started

        # The warm wall is ~milliseconds (pure cache replay), so a
        # single-shot measurement is dominated by scheduler jitter on a
        # busy host; replay several times and gate on the best, the
        # same best-of-N methodology the kernel scenario uses.
        warm_repeats = 5
        warm_walls = []
        for _ in range(warm_repeats):
            started = time.perf_counter()
            warm = run_specs(specs, jobs=parallel_jobs, cache=cache)
            warm_walls.append(time.perf_counter() - started)
        warm_wall = min(warm_walls)
        hits, misses = cache.stats.hits, cache.stats.misses
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "cells": cells,
        "jobs": parallel_jobs,
        "cpus": os.cpu_count() or 1,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": cold_wall,
        "speedup": serial_wall / cold_wall,
        "warm_wall_s": warm_wall,
        "warm_repeats": warm_repeats,
        "warm_speedup": cold_wall / warm_wall,
        "warm_over_cold_fraction": warm_wall / cold_wall,
        "cache_hits": hits,
        "cache_misses": misses,
        "all_cells_hit_warm": hits == cells * warm_repeats,
        "digests_match": digest(serial) == digest(cold) == digest(warm),
    }
