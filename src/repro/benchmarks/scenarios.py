"""Benchmark scenarios: what the ``aqua-repro bench`` harness measures.

Each scenario is a plain function ``fn(quick: bool) -> dict`` returning
a flat metrics dict.  Three layers of the stack are covered:

* ``kernel`` — the simulation kernel alone: a pure process/sleep
  microbenchmark whose events/second is the repo's headline speed
  number (tracked against the recorded pre-fast-path baseline).
* ``vllm_e2e`` / ``flexgen_e2e`` — loaded serving engines, measuring
  how much faster than realtime a full rig simulates.
* ``cluster`` — the 8-GPU NVSwitch stress rig (four consumer/producer
  pairs sharing one fabric), the heaviest standard configuration.

Methodology notes
-----------------
* The kernel scenario reports the **best** of several repeats: on a
  noisy machine the minimum wall time is the least-contaminated
  estimate of the true cost, and the per-repeat spread is reported so
  regressions can be told apart from noise.
* Delays are precomputed per process so the generator body is nothing
  but the yield — the benchmark measures the kernel, not arithmetic.
* Workers use bare-delay yields (``yield d``) when the kernel supports
  them and fall back to ``yield env.timeout(d)`` on kernels that
  predate the fast path, so one harness can A/B both.
* GC stays enabled: disabling it flatters allocation-heavy code, and
  real runs (pytest, the CLI) keep it on.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.sim import core as sim_core
from repro.sim import Environment

#: Registry of scenario name -> fn(quick) -> metrics dict.  Order is
#: the order ``aqua-repro bench`` runs and reports them in.
SCENARIOS: dict[str, Callable[[bool], dict]] = {}


def scenario(fn: Callable[[bool], dict]) -> Callable[[bool], dict]:
    SCENARIOS[fn.__name__] = fn
    return fn


# ---------------------------------------------------------------------------
# Kernel microbenchmark
# ---------------------------------------------------------------------------
def _kernel_round(n_processes: int, hops: int) -> float:
    """One timed run of the process/sleep microbenchmark; returns wall s."""
    env = Environment()
    bare = getattr(sim_core, "SUPPORTS_BARE_DELAY", False)

    # Precompute each worker's delay sequence (7 distinct values keeps
    # the heap honest without putting arithmetic on the timed path).
    all_delays = [
        tuple(0.001 * ((i + step) % 7 + 1) for step in range(hops))
        for i in range(n_processes)
    ]

    if bare:

        def worker(delays):
            for d in delays:
                yield d

    else:

        def worker(delays):
            timeout = env.timeout
            for d in delays:
                yield timeout(d)

    for delays in all_delays:
        env.process(worker(delays))
    started = time.perf_counter()
    env.run()
    return time.perf_counter() - started


def kernel_event_count(n_processes: int, hops: int) -> int:
    """Events the microbenchmark schedules, counted analytically.

    Per process: one Initialize, one sleep per hop, one process-completion
    event.  Analytic so the same number applies to kernels with and
    without an ``events_processed`` counter.
    """
    return n_processes * (hops + 2)


@scenario
def kernel(quick: bool = False) -> dict:
    n_processes, hops = (100, 60) if quick else (200, 200)
    repeats = 3 if quick else 7
    # One untimed warm-up round: the first run in a fresh process pays
    # import-cold caches and allocator growth that no steady-state
    # caller of the kernel pays.
    _kernel_round(n_processes, hops)
    walls = [_kernel_round(n_processes, hops) for _ in range(repeats)]
    events = kernel_event_count(n_processes, hops)
    best = min(walls)
    return {
        "events_per_s": events / best,
        "events_per_s_median": events / sorted(walls)[len(walls) // 2],
        "events": events,
        "wall_s_best": best,
        "wall_s_spread": max(walls) - best,
        "repeats": repeats,
        "bare_delay_yields": getattr(sim_core, "SUPPORTS_BARE_DELAY", False),
    }


# ---------------------------------------------------------------------------
# End-to-end serving rigs
# ---------------------------------------------------------------------------
def _e2e_metrics(env: Environment, sim_s: float, wall_s: float) -> dict:
    out = {
        "sim_s": sim_s,
        "wall_s": wall_s,
        "sim_s_per_wall_s": sim_s / wall_s,
    }
    processed = getattr(env, "events_processed", None)
    if processed is not None:
        out["events"] = processed
        out["events_per_s"] = processed / wall_s
    return out


@scenario
def vllm_e2e(quick: bool = False) -> dict:
    """A loaded vLLM engine on one GPU (continuous batching hot loop)."""
    from repro.hardware import Server
    from repro.models import MISTRAL_7B
    from repro.serving import VLLMEngine
    from repro.workloads import sharegpt_requests
    from repro.workloads.arrivals import submit_all

    duration, count = (30.0, 50) if quick else (120.0, 200)
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.start()
    submit_all(env, engine, sharegpt_requests(rate=5.0, count=count, seed=0))
    started = time.perf_counter()
    env.run(until=duration)
    wall = time.perf_counter() - started
    out = _e2e_metrics(env, duration, wall)
    out["tokens"] = engine.metrics.tokens_generated
    return out


@scenario
def flexgen_e2e(quick: bool = False) -> dict:
    """The offloading rig of the determinism golden: FlexGen consumer +
    LLM producer over AQUA, long-prompt and ShareGPT traffic."""
    from repro.experiments.harness import build_consumer_rig
    from repro.models import LLAMA2_13B, OPT_30B
    from repro.workloads.arrivals import submit_all
    from repro.workloads.longprompt import long_prompt_requests
    from repro.workloads.sharegpt import sharegpt_requests

    duration = 10.0 if quick else 30.0
    rig = build_consumer_rig(
        "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True
    )
    rig.start()
    submit_all(rig.env, rig.consumer_engine, long_prompt_requests(start=2.0))
    submit_all(
        rig.env, rig.producer_engine, sharegpt_requests(rate=3.0, count=40, seed=7)
    )
    started = time.perf_counter()
    rig.env.run(until=duration)
    wall = time.perf_counter() - started
    out = _e2e_metrics(rig.env, duration, wall)
    out["tokens"] = rig.consumer_engine.metrics.tokens_generated
    return out


@scenario
def cluster(quick: bool = False) -> dict:
    """8-GPU NVSwitch stress: four consumer/producer pairs, one fabric."""
    from repro.aqua import Coordinator
    from repro.experiments.harness import build_consumer_rig
    from repro.hardware import Server
    from repro.models import AUDIOGEN, KANDINSKY, OPT_30B, SD_15, SD_XL
    from repro.workloads.arrivals import submit_all
    from repro.workloads.longprompt import long_prompt_requests

    duration = 5.0 if quick else 20.0
    env = Environment()
    server = Server(env, n_gpus=8, topology="nvswitch")
    coordinator = Coordinator()
    rigs = []
    for i, producer_model in enumerate((SD_15, SD_XL, KANDINSKY, AUDIOGEN)):
        rigs.append(
            build_consumer_rig(
                "flexgen",
                OPT_30B,
                producer_model=producer_model,
                use_aqua=True,
                env=env,
                server=server,
                consumer_gpu=i,
                producer_gpu=4 + i,
                coordinator=coordinator,
                name_prefix=f"pair{i}-",
            ).start()
        )
    env.run(until=1.0)  # producers donate before the workload starts
    for rig in rigs:
        submit_all(env, rig.consumer_engine, long_prompt_requests(start=1.0))
    started = time.perf_counter()
    env.run(until=1.0 + duration)
    wall = time.perf_counter() - started
    out = _e2e_metrics(env, duration, wall)
    out["tokens"] = sum(r.consumer_engine.metrics.tokens_generated for r in rigs)
    return out
