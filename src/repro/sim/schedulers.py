"""Pluggable schedule backends for the simulation kernel.

The :class:`~repro.sim.core.Environment` owns a *schedule*: a priority
queue of ``(time, seq, event)`` entries popped in ``(time, seq)`` order
(``seq`` folds the URGENT/NORMAL tie-break and the FIFO insertion
counter into one integer — see ``core._SEQ_STRIDE``).  Two backends
implement that contract:

``"heap"`` (the default)
    A plain ``list`` driven by :func:`heapq.heappush` /
    :func:`heapq.heappop`.  This is the original kernel schedule,
    byte-identical to every release before the scheduler became
    pluggable, and the fastest choice at the event densities the
    standard rigs produce (the C heap does O(log n) with a very small
    constant).

``"calendar"``
    A :class:`CalendarQueue` — a bucketed (calendar-queue style)
    schedule tuned for *high event density*: pushes are an O(1) list
    append into a time bucket, and ordering cost is paid once per
    bucket as a single C-level ``list.sort`` when the bucket is
    promoted for draining.  At the million-pending-event scales of the
    cluster-frontier sweeps (ROADMAP item 1) this amortises far better
    than per-event heap sifting; at small scales the heap wins.

Both backends MUST pop in the identical order — the contract is pinned
by ``tests/test_sim_ordering.py`` (Hypothesis adversarial entry mixes)
and, end to end, by the golden audit digest reproducing bit-for-bit
under ``Environment(scheduler="calendar")``
(``tests/test_determinism_golden.py``).

Custom backends are accepted as instances: any object with ``push`` /
``pop`` methods, ``__len__``/``__bool__``, and head indexing
(``queue[0]``) can be passed as ``Environment(scheduler=instance)``.
``pop`` on an empty schedule must raise :class:`IndexError` (matching
``heappop`` on an empty list).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Tuple

#: Names accepted by ``Environment(scheduler=...)`` and the CLI's
#: ``--scheduler`` flag.
SCHEDULER_NAMES = ("heap", "calendar")

_NEG_INF = float("-inf")


class CalendarQueue:
    """A bucketed event schedule (calendar-queue family).

    Entries are hashed by time into fixed-width buckets (``dict`` keyed
    on ``floor(time / bucket_width)``), kept *unsorted* on push.  A
    small binary heap orders the bucket keys; when the schedule runs
    dry of already-sorted work, the earliest bucket is *promoted*: its
    list is sorted once (C ``list.sort`` over entry tuples, which
    compare by ``(time, seq)`` exactly like the heap backend) and then
    drained by index.  Pushes that land in the bucket currently being
    drained are insorted into the pending region, so zero-delay wakeups
    and same-timestamp races order identically to the heap.

    Complexity per event: O(1) push + amortised O(log b) for the
    per-*bucket* key heap (b = occupied buckets, not pending events)
    plus the amortised share of one sort.  The win over a binary heap
    grows with events-per-bucket, i.e. with event density.

    Parameters
    ----------
    bucket_width:
        Simulated seconds covered by one bucket.  The default of 1 ms
        matches the kernel's dominant delay scale (decode steps, DMA
        hops); density-heavy rigs may tune it.
    """

    __slots__ = ("bucket_width", "_buckets", "_keys", "_drain", "_di",
                 "_drain_key", "_size")

    name = "calendar"

    def __init__(self, bucket_width: float = 0.001) -> None:
        if not bucket_width > 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        self.bucket_width = bucket_width
        #: key -> unsorted list of entries not yet promoted.
        self._buckets: dict[int, list] = {}
        #: heap of bucket keys present in ``_buckets``.
        self._keys: list[int] = []
        #: the promoted (sorted) bucket currently being drained …
        self._drain: list = []
        #: … its next-entry index, and its key.
        self._di = 0
        self._drain_key: Any = _NEG_INF
        self._size = 0

    # -- schedule contract -------------------------------------------------
    def push(self, entry: Tuple[float, int, Any]) -> None:
        """Insert ``entry = (time, seq, event)``.

        Simulation time is monotone, so ``time`` is never earlier than
        the last popped entry; a push into the bucket being drained is
        insorted into its pending region (``lo=_di``), which keeps the
        pop order identical to the heap backend even for zero-delay
        entries racing already-scheduled ones.
        """
        key = int(entry[0] // self.bucket_width)
        if key <= self._drain_key:
            insort(self._drain, entry, lo=self._di)
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heappush(self._keys, key)
            else:
                bucket.append(entry)
        self._size += 1

    def pop(self) -> Tuple[float, int, Any]:
        """Remove and return the earliest entry.

        Raises
        ------
        IndexError
            If the schedule is empty (mirrors ``heappop`` on an empty
            list, which :meth:`Environment.step` relies on).
        """
        di = self._di
        if di >= len(self._drain):
            self._promote()
            di = 0
        entry = self._drain[di]
        self._di = di + 1
        self._size -= 1
        return entry

    def _promote(self) -> None:
        """Sort the earliest bucket and make it the drain."""
        if not self._keys:
            raise IndexError("pop from an empty calendar queue")
        key = heappop(self._keys)
        drain = self._buckets.pop(key)
        drain.sort()
        self._drain = drain
        self._di = 0
        self._drain_key = key

    def __getitem__(self, index: int) -> Tuple[float, int, Any]:
        """Head peek (``queue[0]``), promoting a bucket if needed."""
        if index != 0:
            raise IndexError("a calendar queue only exposes its head entry")
        if self._di >= len(self._drain):
            self._promote()
        return self._drain[self._di]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue pending={self._size} "
            f"buckets={len(self._buckets)} width={self.bucket_width}>"
        )


def resolve_scheduler(spec: Any) -> Tuple[Any, Callable, Callable, str]:
    """Resolve a scheduler spec to ``(queue, push, pop, name)``.

    ``push``/``pop`` use the uniform calling convention
    ``push(queue, entry)`` / ``pop(queue)`` so the heap backend binds
    the C :func:`heapq.heappush`/:func:`heapq.heappop` directly — the
    default path stays instruction-identical to the pre-pluggable
    kernel — while class backends bind their unbound methods.
    """
    if spec is None or spec == "heap":
        return [], heappush, heappop, "heap"
    if spec == "calendar":
        queue = CalendarQueue()
        return queue, CalendarQueue.push, CalendarQueue.pop, "calendar"
    if isinstance(spec, str):
        raise ValueError(
            f"unknown scheduler {spec!r}; expected one of {SCHEDULER_NAMES} "
            "or a backend instance"
        )
    cls = type(spec)
    push = getattr(cls, "push", None)
    pop = getattr(cls, "pop", None)
    if not (callable(push) and callable(pop)):
        raise TypeError(
            f"scheduler backend {spec!r} must define push(entry) and pop()"
        )
    return spec, push, pop, getattr(spec, "name", cls.__name__)
