"""Discrete-event simulation kernel.

This package provides a small, self-contained discrete-event simulator in
the style of SimPy: an :class:`Environment` advances a virtual clock by
processing scheduled events, and *processes* (Python generators) model
concurrent activities by yielding events they want to wait for.

The rest of the repository builds GPUs, interconnects, serving engines and
the AQUA control plane on top of this kernel, so that the paper's
experiments run deterministically and in milliseconds instead of requiring
an 8-GPU NVLink server.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from repro.sim.core import Environment
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    SleepUntil,
    Timeout,
)
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.schedulers import SCHEDULER_NAMES, CalendarQueue

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "SCHEDULER_NAMES",
    "SimulationError",
    "SleepUntil",
    "Store",
    "Timeout",
]
