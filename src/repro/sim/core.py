"""The event loop at the heart of the simulation kernel.

Performance notes
-----------------
Everything the reproduction measures is bottlenecked by how many events
this loop can retire per wall-clock second, so :meth:`Environment.run`
inlines the pop/dispatch cycle instead of calling :meth:`step` per
event (one method call, one ``try``/``except`` and one :meth:`peek`
saved per event adds up to ~30% at this call rate).  :meth:`step` keeps
the one-event-at-a-time semantics for direct callers and must stay
behaviourally identical to one iteration of the inlined loop.

The schedule holds ``(time, seq, event)`` entries where
``seq = priority * _SEQ_STRIDE + eid`` folds the URGENT/NORMAL
tie-break and the FIFO insertion counter into one integer: URGENT
events sort before NORMAL events at the same timestamp, and within a
priority class insertion order wins.  ``_SEQ_STRIDE`` (2**52) is
unreachable by any real event count, and the packed entry is one
element smaller (and one comparison cheaper) than the previous
``(time, priority, eid, event)`` tuple.  :class:`~repro.sim.events.Timeout`
and ``Event.succeed`` push entries inline with the same layout.

The schedule *backend* is pluggable (``Environment(scheduler=...)``,
see :mod:`repro.sim.schedulers`): the default ``"heap"`` keeps the
original binary heap — ``_push``/``_pop`` bind the C
:func:`heapq.heappush`/:func:`heapq.heappop` directly, so the default
path executes the exact same instructions as before the backend became
selectable — while ``"calendar"`` swaps in a bucketed calendar queue
for high-event-density rigs.  Every push site (here and the inlined
ones in :mod:`repro.sim.events`) goes through ``env._push(env._queue,
entry)``; both backends pop in the identical ``(time, seq)`` order.

A process may ``yield`` a bare ``float`` instead of an
:class:`~repro.sim.events.Timeout` — an anonymous sleep that schedules
the process's bound resume callback directly on the heap, skipping the
Timeout allocation and its callback list entirely.  Ordering is
bit-identical to ``yield env.timeout(delay)`` (same eid consumption,
same timestamp, NORMAL priority); the only semantic difference is that
a bare-sleeping process cannot be interrupted.  The dispatch loops
recognise these entries by ``type(entry) is MethodType``.

Monitors (:meth:`add_monitor`) cost a single truthiness check per event
when none are registered.  Event ordering is locked down by
``tests/test_sim_ordering.py`` and, end to end, by the golden audit
digest in ``tests/test_determinism_golden.py``.
"""

from __future__ import annotations

from functools import partial
from types import MethodType
from typing import Any, Callable, Optional

from repro.sim.schedulers import resolve_scheduler
from repro.sim.events import (
    PROCESSED,
    Event,
    Process,
    SimulationError,
    Timeout,
    _OK_NONE,
    _timeout_factory,
)

#: Scheduling priorities.  URGENT events (process initialisation,
#: interrupts) run before NORMAL events scheduled for the same time.
URGENT = 0
NORMAL = 1

#: Priority stride for the packed heap-entry sequence number (see module
#: docstring).  ``events._NORMAL_SEQ`` must equal ``NORMAL * _SEQ_STRIDE``.
_SEQ_STRIDE = 1 << 52

_INF = float("inf")

#: Feature probe for harnesses that must run on older kernels too (the
#: benchmark suite A/B-tests against pre-fast-path checkouts, where
#: ``getattr(core, "SUPPORTS_BARE_DELAY", False)`` is False and workers
#: fall back to ``env.timeout``).
SUPPORTS_BARE_DELAY = True


class EmptySchedule(Exception):
    """Internal: raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    The environment owns the virtual clock (:attr:`now`) and the event
    queue.  Use :meth:`process` to start processes, :meth:`timeout` to
    create delays and :meth:`run` to execute the simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock, in seconds.
    scheduler:
        Schedule backend: ``"heap"`` (default — the original binary
        heap, byte-identical behaviour and performance), ``"calendar"``
        (bucketed calendar queue for high event density), or a backend
        instance (see :mod:`repro.sim.schedulers`).

    Notes
    -----
    The event factories are instance attributes bound in ``__init__``
    rather than methods:

    * ``env.event()`` — create a new untriggered :class:`Event`;
    * ``env.timeout(delay, value=None)`` — an event that triggers
      ``delay`` seconds from now;
    * ``env.process(generator)`` — start a :class:`Process` from a
      generator and return it.

    A ``functools.partial`` over the event class costs one Python frame
    less per call than a method, and ``__slots__`` below makes the
    per-event ``_now``/``_eid``/``_active_process`` stores slot writes
    instead of dict writes.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_push",
        "_pop",
        "_scheduler_name",
        "_eid",
        "_events_processed",
        "_active_process",
        "_monitors",
        "event",
        "timeout",
        "process",
    )

    def __init__(self, initial_time: float = 0.0, scheduler: Any = "heap") -> None:
        self._now = float(initial_time)
        # ``_push(queue, entry)`` / ``_pop(queue)``: for the default
        # heap backend these are the C heappush/heappop, so the hot
        # loops below execute exactly what they did when the heap was
        # hard-wired.  Must be bound before ``_timeout_factory``, which
        # captures ``_push`` and ``_queue`` once.
        self._queue, self._push, self._pop, self._scheduler_name = (
            resolve_scheduler(scheduler)
        )
        self._eid = 0
        self._events_processed = 0
        self._active_process: Optional[Process] = None
        #: Per-event observers (see :meth:`add_monitor`).  Empty in the
        #: common case, so the event loop pays one truthiness check.
        self._monitors: list[Callable[[float], None]] = []
        # Event factories (see class docstring): ``partial`` / the
        # timeout closure skip one Python frame per event created,
        # which is material at benchmark rates.
        self.event = partial(Event, self)
        self.timeout = _timeout_factory(self)
        self.process = partial(Process, self)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduler(self) -> str:
        """Name of the schedule backend (``"heap"``, ``"calendar"``, …)."""
        return self._scheduler_name

    @property
    def events_processed(self) -> int:
        """Lifetime count of events this environment has retired.

        An explicit counter maintained by the event loop.  (It was
        previously derived as ``_eid - len(self._queue)``, which
        overcounts cancelled/defused events that were never popped and
        assumes the schedule is the builtin list — wrong on both counts
        under a pluggable backend.)  The hot loops in :meth:`run`
        accumulate it in a local and flush in a ``finally`` block, so
        the value is only guaranteed current between :meth:`run` /
        :meth:`step` calls — which is when the benchmark harness
        (:mod:`repro.benchmarks`) reads it to report kernel events/sec.
        """
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        self._eid = eid = self._eid + 1
        self._push(
            self._queue, (self._now + delay, priority * _SEQ_STRIDE + eid, event)
        )

    def add_monitor(self, fn: Callable[[float], None]) -> None:
        """Register an observer invoked after every processed event.

        Monitors receive the current simulation time.  They must not
        schedule events or mutate simulation state — they exist for
        invariant checkers (:mod:`repro.audit`) that want to inspect the
        world at every quiescent point of the event loop.
        """
        self._monitors.append(fn)

    def remove_monitor(self, fn: Callable[[float], None]) -> None:
        """Unregister a monitor added with :meth:`add_monitor`."""
        if fn in self._monitors:
            self._monitors.remove(fn)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, event = self._pop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._events_processed += 1

        if event.__class__ is MethodType:
            # Bare-delay sleep: the entry is the process's resume
            # callback itself (see ``Process._resume``).
            event(_OK_NONE)
            if self._monitors:
                for monitor in self._monitors:
                    monitor(self._now)
            return

        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        event._state = PROCESSED

        if self._monitors:
            for monitor in self._monitors:
                monitor(self._now)

        if not event._ok and not event._defused:
            # A failure nobody waited for: surface it to the caller of run().
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until no events remain.  A number runs until the
            clock reaches that time.  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_event: Event | None = None
        stop_time = _INF
        if isinstance(until, Event):
            stop_event = until
            if stop_event._state == PROCESSED:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not be before now ({self._now})"
                )

        # The hot loops: one iteration per event, everything localised,
        # specialised per stop condition so the common cases pay no dead
        # checks.  Each must stay behaviourally identical to
        # `while True: self.step()` plus the docstring's stop checks.
        queue = self._queue
        pop = self._pop
        monitors = self._monitors  # mutated in place, never rebound
        processed = PROCESSED
        mtype = MethodType
        ok_none = _OK_NONE
        # The retirement counter accumulates in a local (one int add per
        # event instead of an attribute RMW) and flushes in ``finally``
        # so it stays exact even when a callback raises out of the loop.
        n_done = self._events_processed

        if stop_event is None and stop_time == _INF:
            # Run until the schedule drains.
            try:
                while queue:
                    self._now, _, event = pop(queue)
                    n_done += 1
                    if event.__class__ is mtype:
                        # Bare-delay sleep: the entry is the process's
                        # resume callback itself.
                        event(ok_none)
                        if monitors:
                            now = self._now
                            for monitor in monitors:
                                monitor(now)
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:  # single waiter: skip iterator setup
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    event._state = processed
                    if monitors:
                        now = self._now
                        for monitor in monitors:
                            monitor(now)
                    if not event._ok and not event._defused:
                        # A failure nobody waited for: surface it to the caller.
                        raise event._value
            finally:
                self._events_processed = n_done
            return None

        if stop_event is None:
            # Run until the clock reaches ``stop_time``.
            try:
                while queue and queue[0][0] <= stop_time:
                    self._now, _, event = pop(queue)
                    n_done += 1
                    if event.__class__ is mtype:
                        # Bare-delay sleep: the entry is the process's
                        # resume callback itself.
                        event(ok_none)
                        if monitors:
                            now = self._now
                            for monitor in monitors:
                                monitor(now)
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:  # single waiter: skip iterator setup
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    event._state = processed
                    if monitors:
                        now = self._now
                        for monitor in monitors:
                            monitor(now)
                    if not event._ok and not event._defused:
                        raise event._value
            finally:
                self._events_processed = n_done
            self._now = stop_time
            return None

        # Run until ``stop_event`` has been processed.
        try:
            while True:
                if not queue:
                    raise SimulationError(
                        "simulation ended before the awaited event triggered"
                    ) from None
                self._now, _, event = pop(queue)
                n_done += 1
                if event.__class__ is mtype:
                    # Bare-delay sleep: cannot process ``stop_event``, so the
                    # end-of-loop stop check is safely skipped too.
                    event(ok_none)
                    if monitors:
                        now = self._now
                        for monitor in monitors:
                            monitor(now)
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:  # single waiter: skip iterator setup
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                event._state = processed
                if monitors:
                    now = self._now
                    for monitor in monitors:
                        monitor(now)
                if not event._ok and not event._defused:
                    raise event._value
                if stop_event._state == processed:
                    if not stop_event._ok:
                        raise stop_event._value
                    return stop_event._value
        finally:
            self._events_processed = n_done

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
