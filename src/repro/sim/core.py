"""The event loop at the heart of the simulation kernel."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event, Process, SimulationError, Timeout

#: Scheduling priorities.  URGENT events (process initialisation,
#: interrupts) run before NORMAL events scheduled for the same time.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Internal: raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    The environment owns the virtual clock (:attr:`now`) and the event
    queue.  Use :meth:`process` to start processes, :meth:`timeout` to
    create delays and :meth:`run` to execute the simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Per-event observers (see :meth:`add_monitor`).  Empty in the
        #: common case, so :meth:`step` pays one truthiness check.
        self._monitors: list[Callable[[float], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Any, Any, Any]) -> Process:
        """Start a new process from a generator and return it."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def add_monitor(self, fn: Callable[[float], None]) -> None:
        """Register an observer invoked after every processed event.

        Monitors receive the current simulation time.  They must not
        schedule events or mutate simulation state — they exist for
        invariant checkers (:mod:`repro.audit`) that want to inspect the
        world at every quiescent point of the event loop.
        """
        self._monitors.append(fn)

    def remove_monitor(self, fn: Callable[[float], None]) -> None:
        """Unregister a monitor added with :meth:`add_monitor`."""
        if fn in self._monitors:
            self._monitors.remove(fn)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        event._state = "processed"

        if self._monitors:
            for monitor in self._monitors:
                monitor(self._now)

        if not event._ok and not event._defused:
            # A failure nobody waited for: surface it to the caller of run().
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until no events remain.  A number runs until the
            clock reaches that time.  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not be before now ({self._now})"
                )

        while True:
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            try:
                self.step()
            except EmptySchedule:
                if stop_event is not None:
                    raise SimulationError(
                        "simulation ended before the awaited event triggered"
                    ) from None
                if stop_time != float("inf"):
                    self._now = stop_time
                return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
