"""Shared-resource primitives built on the simulation kernel.

These model contention: a :class:`Resource` is a pool of identical slots
(e.g. a DMA copy engine with one channel), a :class:`PriorityResource`
serves lower-priority-number requests first, and a :class:`Store` is a
FIFO queue of items (e.g. a request queue feeding a serving engine).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ...  # the slot is held here
    """

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = resource._order_counter
        resource._order_counter += 1
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A pool of ``capacity`` identical slots with FIFO granting."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._order_counter = 0

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot.  The returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``.

        Releasing an ungranted request cancels it instead; releasing an
        unrelated request is a no-op, which makes the context-manager
        form safe even if the wait was interrupted.
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._cancel(request)

    # ------------------------------------------------------------------
    def _sort_key(self, request: Request) -> tuple[float, int]:
        return (request.priority, request._order)

    def _request(self, request: Request) -> None:
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            request.succeed()
        else:
            queue = self.queue
            if queue and request.priority < queue[-1].priority:
                # Out-of-order priority: re-sort (stable, so FIFO ties
                # are preserved).  Equal/default priorities — the common
                # case for DMA channels — append in FIFO position
                # already and skip the sort entirely.
                queue.append(request)
                queue.sort(key=self._sort_key)
            else:
                queue.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} users={len(self.users)}/{self.capacity} "
            f"queued={len(self.queue)}>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` that grants waiting requests by priority.

    Lower ``priority`` values are served first; ties break FIFO.
    """


class StorePut(Event):
    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put(self)


class StoreGet(Event):
    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get(self)


class Store:
    """An unbounded-or-bounded FIFO buffer of items."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event triggers once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove the oldest item; the event triggers with the item."""
        return StoreGet(self)

    def cancel_get(self, get_event: StoreGet) -> None:
        """Withdraw a pending get (used when a waiter is interrupted)."""
        try:
            self._getters.remove(get_event)
        except ValueError:
            pass

    @property
    def size(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------------
    def _put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._match()
        else:
            self._putters.append(event)

    def _get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._match()

    def _match(self) -> None:
        while self._getters and self.items:
            getter = self._getters.pop(0)
            getter.succeed(self.items.pop(0))
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.pop(0)
                self.items.append(putter.item)
                putter.succeed()

    def __repr__(self) -> str:
        return f"<Store items={len(self.items)} getters={len(self._getters)}>"
