"""Event primitives for the discrete-event simulation kernel.

Events are one-shot synchronisation objects.  A process waits on an event
by yielding it; when the event is *triggered* (succeeded or failed) the
environment resumes every waiting process with the event's value (or
raises its exception inside the process).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as :attr:`cause` and as
    ``exc.args[0]``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


# Event lifecycle states.
PENDING = "pending"
TRIGGERED = "triggered"  # scheduled, callbacks not yet run
PROCESSED = "processed"  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._ok: bool | None = None
        self._state = PENDING
        #: Whether a failure was delivered to at least one waiter.  Used to
        #: emulate "unhandled failure" detection: a failed event nobody
        #: waits on is re-raised by :meth:`Environment.step`.
        self._defused = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has succeeded or failed."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """``True`` once all callbacks have been executed."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._state == PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._state == PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Every waiting process will see ``exception`` raised at its yield
        point.  If no process waits on the event, the exception propagates
        out of :meth:`Environment.run`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x} state={self._state}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._state = TRIGGERED
        env._schedule(self, priority=0)


class Process(Event):
    """A running process: wraps a generator that yields events.

    A process is itself an event that triggers when the generator returns
    (successfully, with the generator's return value) or raises (failing
    with the exception).
    """

    def __init__(self, env: "Environment", generator: Generator[Any, Any, Any]) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return self._state == PENDING

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Raise an :class:`Interrupt` inside the process.

        The interrupt is delivered asynchronously (as an immediately
        scheduled event) so the caller keeps running first.  Interrupting
        a finished process is an error; interrupting a process that is
        waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._state = TRIGGERED
        event.callbacks = [self._resume_interrupt]
        self.env._schedule(event, priority=0)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        # Detach from whatever we were waiting on and deliver the interrupt.
        if not self.is_alive:  # finished in the meantime: drop silently
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            if event._ok:
                try:
                    target = self._generator.send(event._value)
                except StopIteration as stop:
                    self._finish(ok=True, value=stop.value)
                    break
                except BaseException as exc:
                    self._finish(ok=False, value=exc)
                    break
            else:
                event._defused = True
                try:
                    target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._finish(ok=True, value=stop.value)
                    break
                except BaseException as exc:
                    if exc is event._value:
                        # The process did not handle the failure: it simply
                        # propagated.  Keep the original traceback.
                        self._finish(ok=False, value=exc)
                        break
                    self._finish(ok=False, value=exc)
                    break

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                event._state = TRIGGERED
                continue
            if target.env is not self.env:
                raise SimulationError("cannot wait on an event from another environment")
            if target.callbacks is not None:
                # Target not yet processed: wait for it.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Target already processed: continue immediately with its state.
            event = target

        self.env._active_process = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        self._state = TRIGGERED
        if not ok and isinstance(value, BaseException):
            # Will be re-raised by the environment if nobody waits on us.
            self._defused = bool(self.callbacks)
        self.env._schedule(self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) state={self._state}>"


class Condition(Event):
    """Base for events composed of several sub-events."""

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not self.env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        # Only events whose callbacks have already run count as "happened";
        # Timeouts are born in the triggered state, so checking _state alone
        # would wrongly include timeouts that have not fired yet.
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Succeeds once *all* sub-events have succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Succeeds once *any* sub-event has succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= 1, events)
