"""Event primitives for the discrete-event simulation kernel.

Events are one-shot synchronisation objects.  A process waits on an event
by yielding it; when the event is *triggered* (succeeded or failed) the
environment resumes every waiting process with the event's value (or
raises its exception inside the process).

Performance notes
-----------------
This module is the hottest code in the repository: every simulated DMA
transfer, decode iteration and retry timer allocates events here, and
benchmarks (``aqua-repro bench``, scenario ``kernel``) retire hundreds
of thousands of them per wall-clock second.  Three deliberate choices
keep it fast, locked down by ``tests/test_determinism_golden.py`` and
``tests/test_sim_ordering.py``:

* every event class declares ``__slots__`` (no per-instance dict);
* :class:`Timeout` — the single most-allocated type — initialises its
  slots directly and pushes itself onto the environment's heap inline
  instead of chaining ``Event.__init__`` + ``Environment._schedule``;
* :meth:`Process._resume` keeps the generator trampoline flat, with the
  pending-target wait as the first branch.

The inlined scheduling writes ``env._eid``/``env._queue`` directly via
``env._push`` (the schedule backend's push, bound once in
``Environment.__init__`` — the C ``heappush`` for the default heap
backend, so nothing is lost over calling it directly); the entry layout
is owned by :mod:`repro.sim.core` (see ``_SEQ_STRIDE`` there) and must
stay in sync.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as :attr:`cause` and as
    ``exc.args[0]``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


# Event lifecycle states.
PENDING = "pending"
TRIGGERED = "triggered"  # scheduled, callbacks not yet run
PROCESSED = "processed"  # callbacks have run

#: NORMAL-priority bias for inlined heap pushes; must equal
#: ``core.NORMAL * core._SEQ_STRIDE``.
_NORMAL_SEQ = 1 << 52

#: Sentinel stored in ``Process._target`` while the process sleeps on a
#: bare-delay yield (``yield 0.004``).  Such sleeps have no Timeout
#: object to detach a callback from, so they are not interruptible.
_BARE_SLEEP = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._ok: bool | None = None
        self._state = PENDING
        # Whether a failure was delivered to at least one waiter.  Used to
        # emulate "unhandled failure" detection: a failed event nobody
        # waits on is re-raised by the environment's event loop.
        self._defused = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has succeeded or failed."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """``True`` once all callbacks have been executed."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._state == PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._state == PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env = self.env
        env._eid = eid = env._eid + 1
        env._push(env._queue, (env._now, _NORMAL_SEQ + eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Every waiting process will see ``exception`` raised at its yield
        point.  If no process waits on the event, the exception propagates
        out of :meth:`Environment.run`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._state != PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x} state={self._state}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Flat initialisation: a Timeout is born triggered, so skip
        # Event.__init__ and push straight onto the schedule.  ``_defused``
        # is deliberately left unset: it is only ever read behind an
        # ``event._ok`` check, and a Timeout's ``_ok`` is always True.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self.delay = delay
        env._eid = eid = env._eid + 1
        env._push(env._queue, (env._now + delay, _NORMAL_SEQ + eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class SleepUntil(Event):
    """An event that triggers at an *absolute* simulated time.

    ``yield SleepUntil(env, at)`` differs from ``yield env.timeout(at -
    env.now)`` in exactly one way: the wake-up lands at ``at`` itself,
    not at ``env.now + (at - env.now)``, which can drift by one ulp when
    ``at`` was computed analytically.  The DMA transfer fast path
    (:mod:`repro.hardware.dma`) relies on this to wake at precisely the
    grant time the channel-timeline cursors predicted, so its completion
    timestamps are bit-identical to the Resource-FIFO path's.
    """

    __slots__ = ("at",)

    def __init__(self, env: "Environment", at: float, value: Any = None) -> None:
        if at < env._now:
            raise ValueError(f"cannot sleep until {at} in the past (now={env._now})")
        # Flat initialisation, mirroring Timeout: born triggered,
        # ``_defused`` deliberately unset (``_ok`` is always True).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self.at = at
        env._eid = eid = env._eid + 1
        env._push(env._queue, (at, _NORMAL_SEQ + eid, self))

    def __repr__(self) -> str:
        return f"<SleepUntil at={self.at}>"


def _timeout_factory(env: "Environment") -> Callable[..., Timeout]:
    """Build the ``env.timeout`` fast path.

    Must stay store-for-store identical to :meth:`Timeout.__init__`
    (which remains the path for direct ``Timeout(env, ...)``
    construction): a closure over the environment's queue skips the
    ``partial`` → ``type.__call__`` → ``__init__`` dispatch chain,
    which is one Python frame and two C calls per simulated delay.
    """
    queue = env._queue  # bound once; Environment never rebinds it
    tnew = Timeout.__new__
    cls = Timeout
    push = env._push  # backend push; heappush for the default heap
    nseq = _NORMAL_SEQ
    triggered = TRIGGERED

    def timeout(delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = tnew(cls)
        t.env = env
        t.callbacks = []
        t._value = value
        t._ok = True
        t._state = triggered
        t.delay = delay
        env._eid = eid = env._eid + 1
        push(queue, (env._now + delay, nseq + eid, t))
        return t

    return timeout


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._state = TRIGGERED
        self._defused = False
        env._schedule(self, priority=0)


class Process(Event):
    """A running process: wraps a generator that yields events.

    A process is itself an event that triggers when the generator returns
    (successfully, with the generator's return value) or raises (failing
    with the exception).
    """

    __slots__ = ("_generator", "_target", "_resume_cb", "_send")

    def __init__(self, env: "Environment", generator: Generator[Any, Any, Any]) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bind once per process, not once per yield: registering a wait
        # is a list append and advancing the generator is a plain call,
        # with no method-object allocation on the hot path.
        self._resume_cb = self._resume
        self._send = generator.send
        self._target: Event | None = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return self._state == PENDING

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for.

        ``None`` while the process is running, finished, or sleeping on
        a bare-delay yield (which has no event object).
        """
        target = self._target
        return None if target is _BARE_SLEEP else target

    def interrupt(self, cause: Any = None) -> None:
        """Raise an :class:`Interrupt` inside the process.

        The interrupt is delivered asynchronously (as an immediately
        scheduled event) so the caller keeps running first.  Interrupting
        a finished process is an error; interrupting a process that is
        waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        if self._target is _BARE_SLEEP:
            raise SimulationError(
                "cannot interrupt a process sleeping on a bare-delay yield; "
                "use `yield env.timeout(delay)` in interruptible processes"
            )
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._state = TRIGGERED
        event.callbacks = [self._resume_interrupt]
        self.env._schedule(event, priority=0)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        # Detach from whatever we were waiting on and deliver the interrupt.
        if not self.is_alive:  # finished in the meantime: drop silently
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        send = self._send
        while True:
            if event._ok:
                try:
                    target = send(event._value)
                except StopIteration as stop:
                    self._finish(ok=True, value=stop.value)
                    break
                except BaseException as exc:
                    self._finish(ok=False, value=exc)
                    break
            else:
                event._defused = True
                try:
                    target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._finish(ok=True, value=stop.value)
                    break
                except BaseException as exc:
                    # When the process did not handle the failure (exc is
                    # event._value) it simply propagated; either way the
                    # process fails with the exception, original traceback
                    # preserved.
                    self._finish(ok=False, value=exc)
                    break

            if target.__class__ is float:
                # Bare-delay sleep: ``yield 0.004`` schedules this
                # process's resume directly — no Timeout object, no
                # callbacks list, no per-hop allocations beyond the heap
                # entry.  Ordering is identical to ``yield
                # env.timeout(0.004)``: same timestamp, same NORMAL
                # priority, same insertion-counter tie-break.
                if target < 0:
                    exc = ValueError(f"negative delay {target}")
                    event = Event(env)
                    event._ok = False
                    event._value = exc
                    event._state = TRIGGERED
                    continue
                env._eid = eid = env._eid + 1
                env._push(
                    env._queue, (env._now + target, _NORMAL_SEQ + eid, self._resume_cb)
                )
                self._target = _BARE_SLEEP
                break
            try:
                callbacks = target.callbacks
                target_env = target.env
            except AttributeError:
                exc = SimulationError(f"process yielded a non-event: {target!r}")
                event = Event(env)
                event._ok = False
                event._value = exc
                event._state = TRIGGERED
                continue
            if target_env is not env:
                raise SimulationError(
                    "cannot wait on an event from another environment"
                )
            if callbacks is not None:
                # Target not yet processed: wait for it.
                callbacks.append(self._resume_cb)
                self._target = target
                break
            # Target already processed: continue immediately with its state.
            event = target

        env._active_process = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        self._state = TRIGGERED
        if not ok and isinstance(value, BaseException):
            # Will be re-raised by the environment if nobody waits on us.
            self._defused = bool(self.callbacks)
        self.env._schedule(self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) state={self._state}>"


#: Shared immutable "succeeded with None" event handed to a process
#: resumed from a bare-delay sleep.  Never mutated; every reader only
#: inspects ``_ok`` / ``_value``.
_OK_NONE = Event.__new__(Event)
_OK_NONE.env = None  # type: ignore[assignment]
_OK_NONE.callbacks = None
_OK_NONE._value = None
_OK_NONE._ok = True
_OK_NONE._state = PROCESSED
_OK_NONE._defused = True


class Condition(Event):
    """Base for events composed of several sub-events."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not self.env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        # Only events whose callbacks have already run count as "happened";
        # Timeouts are born in the triggered state, so checking _state alone
        # would wrongly include timeouts that have not fired yet.
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Succeeds once *all* sub-events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Succeeds once *any* sub-event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= 1, events)
