"""A vLLM-style serving engine: continuous batching over paged KV.

The scheduler mirrors vLLM's default behaviour, which is what makes the
paper's motivation reproducible: a new prompt is *admitted* only when
the paged KV cache has room for it, so under bursty load late arrivals
sit in the waiting queue making zero progress (Figure 1a / Figure 9's
RCT jumps at ~20 requests).  Decode runs one token per iteration for
every running sequence; when KV space runs out mid-generation the most
recent sequence is preempted and recomputed later, as vLLM does.

The engine can simultaneously serve and act as an AQUA memory producer
(the paper's modified vLLM, §B.1): spare KV blocks are donated via the
``llm-informer`` and taken back when the queue builds up.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.serving.engine import LLMEngineBase
from repro.serving.lora_manager import LoRACache
from repro.serving.request import Request


class VLLMEngine(LLMEngineBase):
    """Continuous-batching engine with admission control.

    Parameters (beyond :class:`LLMEngineBase`)
    ----------
    max_batch:
        Upper bound on concurrently running sequences (vLLM's
        ``max_num_seqs``).
    lora_cache:
        Optional adapter cache; requests naming an adapter block until
        it is GPU-resident.
    sample_every:
        Iterations between free-memory samples (0 disables).
    preemption_mode:
        What happens to a victim when KV space runs out mid-decode:
        ``"recompute"`` (vLLM's default: drop the blocks, re-prefill the
        whole context later) or ``"swap"`` (page the KV to host DRAM
        over PCIe and bring it back when space frees up).
    chunked_prefill_tokens:
        When set, prompts prefill in chunks of at most this many tokens,
        fused with a decode step for the running batch each iteration —
        the DeepSpeed-FastGen behaviour the paper cites [22], which
        keeps decode latency smooth while long prompts ingest.  ``None``
        keeps whole-prompt prefill.
    """

    def __init__(
        self,
        gpu,
        server,
        model,
        max_batch: int = 64,
        lora_cache: Optional[LoRACache] = None,
        sample_every: int = 0,
        preemption_mode: str = "recompute",
        chunked_prefill_tokens: Optional[int] = None,
        name: str = "vllm",
        **kwargs,
    ) -> None:
        super().__init__(gpu, server, model, name=name, **kwargs)
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if preemption_mode not in ("recompute", "swap"):
            raise ValueError(f"unknown preemption mode {preemption_mode!r}")
        if chunked_prefill_tokens is not None and chunked_prefill_tokens < 1:
            raise ValueError(
                f"chunked_prefill_tokens must be >= 1, got {chunked_prefill_tokens}"
            )
        self.max_batch = max_batch
        self.lora_cache = lora_cache
        self.sample_every = sample_every
        self.preemption_mode = preemption_mode
        self.chunked_prefill_tokens = chunked_prefill_tokens
        self.preemptions = 0
        self.rejected: list[Request] = []
        #: Sequences swapped out to host DRAM (preemption_mode="swap").
        self.swapped_out: list[Request] = []
        #: (request, tokens_left_to_prefill) under chunked prefill.
        self.prefilling: list[list] = []

    # ------------------------------------------------------------------
    def _admit(self) -> list[Request]:
        """Admit waiting requests while KV memory and batch slots allow."""
        admitted = []
        while (
            self.waiting
            and len(self.running) + len(self.prefilling) + len(admitted)
            < self.max_batch
            and self.kv.can_admit(self.waiting[0].total_tokens)
        ):
            request = self.waiting.popleft()
            self.kv.admit(request.req_id, request.total_tokens)
            admitted.append(request)
        return admitted

    def _prefill(self, admitted: list[Request]) -> Generator:
        """Run prefill for newly admitted requests (adapter loads first)."""
        self.attr_mark(admitted, "queueing")
        if self.lora_cache is not None:
            for request in admitted:
                if request.adapter is not None:
                    yield from self.lora_cache.ensure(request.adapter)
        tokens = sum(r.total_tokens for r in admitted)
        started = self.env.now
        yield from self.gpu.compute_op(self.model.prefill_time(self.gpu.spec, tokens))
        self.trace_span("prefill", started, requests=len(admitted), tokens=tokens)
        self.attr_mark(admitted, "prefill_compute")
        self.flow_step(admitted, time=started)
        for request in admitted:
            # Prefill emits the first token; preempted sequences resuming
            # via recompute have already reported theirs.
            self._finish_token(request)
            if request.done:
                self.kv.release(request.req_id)
            else:
                self.running.append(request)

    def _decode_step(self) -> Generator:
        """One decode iteration for the whole running batch.

        With ``decode_coarsen > 1`` this becomes a *time-warp window*:
        up to ``decode_coarsen`` iterations of the frozen batch are
        charged as ONE aggregate compute event (the duration is the
        exact sum of the per-step roofline times, so the clock advances
        identically), and the per-token bookkeeping — KV appends,
        preemptions, aborts, completions — is replayed at the window
        end (*lazy repair*).  The window is clamped by
        :meth:`LLMEngineBase._decode_window_len` so no sequence can
        finish mid-window and no producer/sample boundary is skipped.
        """
        batch = list(self.running)
        k = 1 if self.decode_coarsen == 1 else self._decode_window_len(batch)
        if k == 1:
            context = sum(r.total_tokens for r in batch)
            step = self.model.decode_step_time(self.gpu.spec, len(batch), context)
            started = self.env.now
            yield from self.gpu.compute_op(step)
            self.trace_span("decode", started, batch=len(batch))
            if self.telemetry is not None:
                self.telemetry.decode_batch(self.name, len(batch))
                self.attr_mark(batch, "decode_hbm")
            yield from self._decode_bookkeeping(batch)
            return

        n = len(batch)
        context = sum(r.total_tokens for r in batch)
        spec = self.gpu.spec
        step_time = self.model.decode_step_time
        duration = 0.0
        for s in range(k):
            # Each modelled step grows every sequence's context by one.
            duration += step_time(spec, n, context + s * n)
        started = self.env.now
        yield from self.gpu.compute_op(duration)
        self.trace_span("decode-window", started, batch=n, steps=k)
        if self.telemetry is not None:
            for _ in range(k):
                self.telemetry.decode_batch(self.name, n)
            self.attr_mark(batch, "decode_hbm")
        for _ in range(k):
            yield from self._decode_bookkeeping(batch)
        # The window stood in for k scheduler iterations; _serve's own
        # increment accounts for the last one.
        self.iteration += k - 1

    def _decode_bookkeeping(self, batch: list[Request]) -> Generator:
        """Account one generated token for every sequence in ``batch``."""
        for request in batch:
            if request not in self.running:
                continue  # preempted by an earlier sequence this step
            if not self.kv.can_append(request.req_id):
                yield from self._preempt_for(request)
            if not self.kv.can_append(request.req_id):
                # Still no room (nothing left to preempt): end the
                # sequence here, as a context-length abort would.
                request.max_new_tokens = request.generated_tokens + 1
                self._finish_token(request)
                self.running.remove(request)
                self.kv.release(request.req_id)
                continue
            self.kv.append_token(request.req_id)
            self._finish_token(request)
            if request.done:
                self.running.remove(request)
                self.kv.release(request.req_id)

    def _preempt_for(self, needy: Request) -> Generator:
        """Free KV space by preempting the youngest sequence.

        ``recompute`` releases the victim's blocks and re-prefills its
        whole context later; ``swap`` pages the victim's KV to host
        DRAM (paying the PCIe write now and the read at swap-in).
        """
        victims = [r for r in self.running if r is not needy]
        if not victims:
            return
        victim = max(victims, key=lambda r: r.arrival_time)
        self.running.remove(victim)
        self.preemptions += 1
        if self.telemetry is not None:
            self.telemetry.preemption(self.name)
        if self.preemption_mode == "swap":
            nbytes = self.kv.swap_out(victim.req_id)
            self.server.dram.pool.reserve(f"{self.name}:swap{victim.req_id}", nbytes)
            yield from self.server.transfer(self.gpu, self.server.dram, nbytes)
            self.swapped_out.append(victim)
        else:
            self.kv.release(victim.req_id)
            self.waiting.appendleft(victim)

    def _abort_stuck_swapped(self) -> None:
        """End a swapped sequence that can no longer fit the KV cache
        (it grew, or the region shrank), as a context abort would."""
        victim = self.swapped_out.pop(0)
        victim.max_new_tokens = victim.generated_tokens + 1
        self._finish_token(victim)
        self.kv.release(victim.req_id)
        self.server.dram.pool.release(f"{self.name}:swap{victim.req_id}")

    def _swap_in_ready(self) -> Generator:
        """Bring back swapped sequences when KV space allows (FIFO)."""
        while (
            self.swapped_out
            and len(self.running) < self.max_batch
            and self.kv.can_swap_in(self.swapped_out[0].req_id)
        ):
            request = self.swapped_out.pop(0)
            nbytes = self.kv.swap_in(request.req_id)
            yield from self.server.transfer(self.server.dram, self.gpu, nbytes)
            self.server.dram.pool.release(f"{self.name}:swap{request.req_id}")
            self.running.append(request)

    def _prefill_chunk_step(self) -> Generator:
        """One fused iteration: a prefill chunk plus a decode step.

        The chunk's compute and the running batch's decode run as one
        kernel schedule; finished prompts emit their first token and
        join the running batch.
        """
        request, remaining = self.prefilling[0]
        chunk = min(remaining, self.chunked_prefill_tokens)
        duration = self.model.prefill_time(self.gpu.spec, chunk)
        batch = list(self.running)
        if batch:
            context = sum(r.total_tokens for r in batch)
            duration += self.model.decode_step_time(self.gpu.spec, len(batch), context)
        started = self.env.now
        yield from self.gpu.compute_op(duration)
        self.trace_span("chunked-prefill", started, chunk=chunk, batch=len(batch))
        self.attr_mark([request], "prefill_compute")
        if batch:
            self.attr_mark(batch, "decode_hbm")
            yield from self._decode_bookkeeping(batch)
        self.prefilling[0][1] -= chunk
        if self.prefilling[0][1] <= 0:
            self.prefilling.pop(0)
            self.flow_step([request], time=started)
            self._finish_token(request)
            if request.done:
                self.kv.release(request.req_id)
            else:
                self.running.append(request)

    def _start_chunked_prefill(self, admitted: list[Request]) -> Generator:
        self.attr_mark(admitted, "queueing")
        if self.lora_cache is not None:
            for request in admitted:
                if request.adapter is not None:
                    yield from self.lora_cache.ensure(request.adapter)
        for request in admitted:
            self.prefilling.append([request, request.total_tokens])

    def _serve(self) -> Generator:
        while True:
            if self.swapped_out:
                yield from self._swap_in_ready()
            admitted = self._admit()
            if self.chunked_prefill_tokens is not None:
                if admitted:
                    yield from self._start_chunked_prefill(admitted)
                if self.prefilling:
                    yield from self._prefill_chunk_step()
                elif self.running:
                    yield from self._decode_step()
                elif self.waiting:
                    self.rejected.append(self.waiting.popleft())
                elif self.swapped_out:
                    self._abort_stuck_swapped()
                else:
                    yield from self._wait_for_arrival()
                self.iteration += 1
                if self.aqua_lib is not None and self.iteration % self.inform_every == 0:
                    yield from self.producer_tick()
                if self.sample_every and self.iteration % self.sample_every == 0:
                    self.sample_memory()
                continue
            if admitted:
                yield from self._prefill(admitted)
            elif self.running:
                yield from self._decode_step()
            elif self.waiting:
                # Nothing is running yet the head still does not fit: the
                # prompt exceeds the whole KV cache.  Reject it, as vLLM
                # rejects prompts beyond the context capacity.
                self.rejected.append(self.waiting.popleft())
            elif self.swapped_out:
                self._abort_stuck_swapped()
            else:
                yield from self._wait_for_arrival()
            self.iteration += 1
            if self.aqua_lib is not None and self.iteration % self.inform_every == 0:
                yield from self.producer_tick()
            if self.sample_every and self.iteration % self.sample_every == 0:
                self.sample_memory()
