"""Metric collection: per-request latencies and time series."""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.serving.request import Request


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]).

    Empty input is a *programming error* here and raises; the
    :class:`MetricsCollector` aggregates built on top return NaN for
    "no traffic yet" instead (see the contract note there).

    Raises
    ------
    ValueError
        On an empty input or ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass(slots=True)
class TimeSeries:
    """A named sequence of (time, value) samples."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Append one sample; ``time`` must not precede the last sample.

        Equal timestamps are legal (several samplers can fire in one
        event).  Going backwards raises rather than clamps: the binary
        searches in :meth:`window_sum` silently return wrong windows on
        an unsorted series, so a non-monotonic append is always a bug
        worth surfacing at the call site.
        """
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic append to time series {self.name!r}: "
                f"t={time} precedes last sample t={self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window_sum(self, start: float, end: float) -> float:
        """Sum of values sampled in the half-open window ``[start, end)``.

        Boundary semantics are exact: samples at ``t == start`` are
        included, samples at ``t == end`` are excluded, so adjacent
        windows ``[a, b)`` and ``[b, c)`` partition the series with no
        double counting (pinned by regression tests in
        ``tests/test_metrics.py``).

        ``append`` enforces time order, so the window is located with
        two binary searches instead of scanning the whole series —
        goodput samplers call this every simulated second.
        """
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end, lo=lo)
        return sum(self.values[lo:hi])


class MetricsCollector:
    """Aggregates completed requests and running counters for one engine."""

    def __init__(self, name: str = "engine") -> None:
        self.name = name
        self.completed: list[Request] = []
        self.tokens_generated = 0
        self.token_times: list[float] = []
        self.series: dict[str, TimeSeries] = {}
        #: Times at which in-flight requests were re-queued after a
        #: fault (recovery metric; see ``LLMEngineBase.requeue``).
        self.requeue_times: list[float] = []

    # ------------------------------------------------------------------
    def record_token(self, now: float, n: int = 1) -> None:
        self.tokens_generated += n
        if n == 1:  # the per-decode-step fast path: no throwaway list
            self.token_times.append(now)
        else:
            self.token_times.extend([now] * n)

    def record_completion(self, request: Request) -> None:
        self.completed.append(request)

    def record_requeue(self, now: float) -> None:
        """Count one fault-driven re-queue of an in-flight request."""
        self.requeue_times.append(now)

    @property
    def requeues(self) -> int:
        """Total fault-driven re-queues recorded so far."""
        return len(self.requeue_times)

    def sample(self, series: str, time: float, value: float) -> None:
        ts = self.series.get(series)
        if ts is None:  # setdefault would build a TimeSeries per call
            ts = self.series[series] = TimeSeries(series)
        ts.append(time, value)

    # ------------------------------------------------------------------
    @property
    def ttfts(self) -> list[float]:
        return [r.ttft for r in self.completed if r.ttft is not None]

    @property
    def rcts(self) -> list[float]:
        return [r.rct for r in self.completed if r.rct is not None]

    # Empty-input contract: every latency aggregate on this collector
    # (means *and* percentiles) returns NaN when no request has
    # completed, so callers can compute summaries unconditionally and
    # filter with ``math.isnan``.  The standalone :func:`percentile`
    # utility keeps its strict ValueError — an empty sequence there is a
    # programming error, not an "engine saw no traffic yet" state.
    def ttft_percentile(self, q: float) -> float:
        """TTFT percentile; NaN when no request has completed."""
        values = self.ttfts
        return percentile(values, q) if values else float("nan")

    def rct_percentile(self, q: float) -> float:
        """RCT percentile; NaN when no request has completed."""
        values = self.rcts
        return percentile(values, q) if values else float("nan")

    def mean_ttft(self) -> float:
        """Mean TTFT; NaN when no request has completed."""
        values = self.ttfts
        return sum(values) / len(values) if values else float("nan")

    def mean_rct(self) -> float:
        """Mean RCT; NaN when no request has completed."""
        values = self.rcts
        return sum(values) / len(values) if values else float("nan")

    def tokens_in_window(self, start: float, end: float) -> int:
        return sum(1 for t in self.token_times if start <= t < end)

    def throughput(self, start: float, end: float) -> float:
        """Generated tokens per second over a window."""
        if end <= start:
            raise ValueError("window end must be after start")
        return self.tokens_in_window(start, end) / (end - start)

    def sorted_rcts(self) -> list[float]:
        """RCTs in ascending order (the paper's Figures 8, 11, 12)."""
        return sorted(self.rcts)

    def summary(self) -> dict:
        """A compact report of this engine's run."""
        out = {
            "name": self.name,
            "completed": len(self.completed),
            "tokens": self.tokens_generated,
        }
        if self.ttfts:
            out["ttft_mean"] = self.mean_ttft()
            out["ttft_p50"] = self.ttft_percentile(50)
            out["ttft_p95"] = self.ttft_percentile(95)
        if self.rcts:
            out["rct_mean"] = self.mean_rct()
            out["rct_p50"] = self.rct_percentile(50)
            out["rct_p95"] = self.rct_percentile(95)
        if self.requeue_times:
            out["requeues"] = self.requeues
        return out
