"""FlexGen-style offloaded long-prompt inference.

FlexGen targets throughput on prompts whose inference context exceeds
GPU memory: the KV cache lives *off* the GPU and is streamed through it
layer-by-layer at every decode step, overlapping I/O with compute via
double buffering.  Each generated token therefore re-reads the entire
KV cache over the offload path, which makes the engine bandwidth-bound:
over PCIe to host DRAM it crawls, over NVLink to a producer GPU's HBM
(AQUA TENSORS) it speeds up by roughly the bandwidth ratio — the 6x of
Figure 7.

The engine always allocates its context through AQUA-LIB; without a
paired producer the library falls back to DRAM, which *is* the FlexGen
baseline ("just like previous work", §3).
"""

from __future__ import annotations

from typing import Generator

from repro.aqua.tensor import TensorLostError
from repro.serving.engine import LLMEngineBase
from repro.serving.request import Request
from repro.sim import AllOf


class FlexGenEngine(LLMEngineBase):
    """Sequential long-prompt engine with streamed, offloaded KV.

    Parameters (beyond :class:`LLMEngineBase`)
    ----------
    respond_every:
        Generated tokens between ``aqua.respond()`` calls — the control
        loop boundary where AQUA may migrate the context (§B).
    """

    def __init__(
        self,
        gpu,
        server,
        model,
        respond_every: int = 16,
        alloc_horizon_tokens: int = 16384,
        name: str = "flexgen",
        **kwargs,
    ) -> None:
        super().__init__(gpu, server, model, name=name, **kwargs)
        if self.aqua_lib is None:
            raise ValueError("FlexGenEngine requires an aqua_lib (DRAM fallback is automatic)")
        if alloc_horizon_tokens < 1:
            raise ValueError(f"alloc_horizon_tokens must be >= 1, got {alloc_horizon_tokens}")
        self.respond_every = respond_every
        #: KV buffers are sized for at most this many generated tokens
        #: (FlexGen pre-allocates per-layer KV buffers of bounded length);
        #: open-ended duration-measured jobs stop here.
        self.alloc_horizon_tokens = alloc_horizon_tokens

    # ------------------------------------------------------------------
    def _stream_pieces(self) -> int:
        """FlexGen stores per-layer K and V tensors: 2 per layer."""
        return 2 * self.model.n_layers

    def _io_step(self, tensor, nbytes: int) -> Generator:
        yield from tensor.fetch(nbytes=nbytes, pieces=self._stream_pieces())

    def _io_window(self, tensor, total: int, k: int) -> Generator:
        """The I/O leg of a coarsened window: ``k`` sequential context
        re-reads, each identical to the per-token path's (same piece
        count, same per-read clamp to the tensor size), issued inside
        one process so the window costs one io∥compute barrier."""
        kv_bytes = self.model.kv_bytes
        for s in range(1, k + 1):
            yield from self._io_step(tensor, kv_bytes(total + s))

    def _compute_step(self, duration: float | None = None) -> Generator:
        # Streaming the weights through HBM dominates single-sequence
        # decode compute; attention math runs against the KV window that
        # is being DMA'd in concurrently.
        if duration is None:
            duration = self.model.decode_step_time(self.gpu.spec, 1, 0)
        yield from self.gpu.compute_op(duration)

    def _stamped(self, gen: Generator, sink: dict, key: str) -> Generator:
        """Run ``gen`` and note its completion time (timing-neutral)."""
        yield from gen
        sink[key] = self.env.now

    def _infer(self, request: Request) -> Generator:
        budget = min(request.max_new_tokens, self.alloc_horizon_tokens)
        max_total = request.prompt_tokens + budget
        self.attr_mark([request], "queueing")
        tensor = self.aqua_lib.to_responsive_tensor(
            self.model.kv_bytes(max_total),
            pieces=self._stream_pieces(),
            tag=f"flexgen-ctx-{request.req_id}",
            ctx=request.req_id,
        )
        try:
            # Prefill: compute the context, stream its KV out to the tensor.
            # On a first run the context is just the prompt; a re-queued
            # request (fault recovery) recomputes everything generated so
            # far — progress is kept, the lost KV is re-derived.
            context_tokens = min(request.total_tokens, max_total - 1)
            prefill = self.model.prefill_time(self.gpu.spec, context_tokens)
            started = self.env.now
            yield from self.gpu.compute_op(prefill)
            self.trace_span("prefill", started, tokens=context_tokens)
            self.attr_mark([request], "prefill_compute")
            self.flow_step([request], time=started)
            yield from tensor.flush(
                nbytes=self.model.kv_bytes(context_tokens),
                pieces=self._stream_pieces(),
            )
            self.attr_mark([request], "offload_fetch")
            self._finish_token(request)

            # Decode: every token re-reads the whole context (plus writes
            # one token of fresh KV, folded into the same stream).
            if self.decode_coarsen > 1:
                yield from self._decode_stream_window(request, tensor, max_total)
                return
            while not request.done and request.total_tokens < max_total:
                io_bytes = self.model.kv_bytes(request.total_tokens + 1)
                if self.telemetry is None:
                    io = self.env.process(self._io_step(tensor, io_bytes))
                    compute = self.env.process(self._compute_step())
                    yield AllOf(self.env, [io, compute])
                else:
                    # Attribute the overlapped step to whichever side
                    # bound it: the fetch stream if I/O finished last,
                    # the GPU otherwise.  The stamping wrapper only
                    # records finish times — timing is identical.
                    finished: dict[str, float] = {}
                    io = self.env.process(
                        self._stamped(self._io_step(tensor, io_bytes), finished, "io")
                    )
                    compute = self.env.process(
                        self._stamped(self._compute_step(), finished, "compute")
                    )
                    yield AllOf(self.env, [io, compute])
                    bound = (
                        "offload_fetch"
                        if finished["io"] >= finished["compute"]
                        else "decode_hbm"
                    )
                    self.attr_mark([request], bound)
                self._finish_token(request)
                if request.generated_tokens % self.respond_every == 0:
                    yield from self.aqua_lib.respond()
                    self.attr_mark([request], "offload_fetch")
        finally:
            tensor.free()

    def _decode_stream_window(self, request: Request, tensor, max_total: int) -> Generator:
        """Time-warp coarsening of the streamed decode loop.

        Up to ``decode_coarsen`` per-token io∥compute rounds are fused
        into ONE overlapped window: the I/O leg replays the ``k``
        per-token context re-reads back to back inside a single process
        (:meth:`_io_window` — byte- and piece-identical to the exact
        path, so its elapsed time is the exact sum) and the compute leg
        is ``k`` roofline decode steps in one op.  Windows are clamped
        to end exactly on ``respond_every`` boundaries, so the AQUA
        control-loop cadence — where migrations land — is identical to
        the exact path.  Lazy repair is conservative: a
        :class:`~repro.aqua.tensor.TensorLostError` mid-window unwinds
        the *whole* window (no tokens recorded), and the requeued
        request recomputes from its last committed token.
        """
        step = self.model.decode_step_time(self.gpu.spec, 1, 0)
        while not request.done and request.total_tokens < max_total:
            generated = request.generated_tokens
            k = min(
                self.decode_coarsen,
                request.max_new_tokens - generated,
                max_total - request.total_tokens,
                self.respond_every - generated % self.respond_every,
            )
            total = request.total_tokens
            if self.telemetry is None:
                io = self.env.process(self._io_window(tensor, total, k))
                compute = self.env.process(self._compute_step(k * step))
                yield AllOf(self.env, [io, compute])
            else:
                finished: dict[str, float] = {}
                io = self.env.process(
                    self._stamped(
                        self._io_window(tensor, total, k), finished, "io"
                    )
                )
                compute = self.env.process(
                    self._stamped(self._compute_step(k * step), finished, "compute")
                )
                yield AllOf(self.env, [io, compute])
                bound = (
                    "offload_fetch"
                    if finished["io"] >= finished["compute"]
                    else "decode_hbm"
                )
                self.attr_mark([request], bound)
            for _ in range(k):
                self._finish_token(request)
            if request.generated_tokens % self.respond_every == 0:
                yield from self.aqua_lib.respond()
                self.attr_mark([request], "offload_fetch")

    def _serve(self) -> Generator:
        while True:
            if not self.waiting:
                yield from self._wait_for_arrival()
                yield from self.aqua_lib.respond()
                continue
            request = self.waiting.popleft()
            self.running = [request]
            try:
                yield from self._infer(request)
            except TensorLostError:
                # The device holding this request's context failed: the
                # KV is gone, the request is not.  Re-queue it; the next
                # run recomputes the context at whatever location the
                # coordinator now assigns (DRAM while the GPU is down).
                self.requeue(request)
            self.running = []
            self.iteration += 1
