"""Orca-style serving: iteration-level batching without paged KV (§9).

Orca introduced batching new prompts into ongoing iterations; vLLM kept
that scheduler and added paged attention.  The operative difference is
memory: Orca-era engines reserve each sequence's KV for its *maximum
possible length* up front (contiguous allocation), so memory admission
is gated by worst-case sizes and most of the reservation sits unused.
This engine reproduces that: same continuous-batching loop as
:class:`VLLMEngine`, but admission charges ``prompt + max_new_tokens``
immediately and generation never allocates again.

Comparing it with vLLM on the same burst shows paged attention's
concurrency win — and why AQUA builds on the paged engine.
"""

from __future__ import annotations

from typing import Generator

from repro.serving.request import Request
from repro.serving.vllm_engine import VLLMEngine


class OrcaEngine(VLLMEngine):
    """Continuous batching with worst-case (max-length) KV reservations."""

    def __init__(self, gpu, server, model, name: str = "orca", **kwargs) -> None:
        kwargs.pop("preemption_mode", None)  # nothing to preempt: memory
        kwargs.pop("chunked_prefill_tokens", None)  # is reserved up front
        super().__init__(gpu, server, model, name=name, **kwargs)

    def _max_tokens(self, request: Request) -> int:
        return request.prompt_tokens + request.max_new_tokens

    def _admit(self) -> list[Request]:
        admitted = []
        while (
            self.waiting
            and len(self.running) + len(admitted) < self.max_batch
            and self.kv.can_admit(self._max_tokens(self.waiting[0]))
        ):
            request = self.waiting.popleft()
            # Reserve for the worst case; blocks never grow afterwards.
            self.kv.admit(request.req_id, self._max_tokens(request))
            admitted.append(request)
        return admitted

    def _decode_step(self) -> Generator:
        batch = list(self.running)
        # Time-warp coarsening (see VLLMEngine._decode_step): k modelled
        # iterations charged as one aggregate event.  With worst-case
        # reservations there is nothing to repair lazily — no appends,
        # no preemptions — so only the token bookkeeping replays.
        k = 1 if self.decode_coarsen == 1 else self._decode_window_len(batch)
        n = len(batch)
        context = sum(r.total_tokens for r in batch)
        if k == 1:
            step = self.model.decode_step_time(self.gpu.spec, n, context)
        else:
            step_time = self.model.decode_step_time
            spec = self.gpu.spec
            step = 0.0
            for s in range(k):
                step += step_time(spec, n, context + s * n)
        started = self.env.now
        yield from self.gpu.compute_op(step)
        if k == 1:
            self.trace_span("decode", started, batch=n)
        else:
            self.trace_span("decode-window", started, batch=n, steps=k)
        if self.telemetry is not None:
            for _ in range(k):
                self.telemetry.decode_batch(self.name, n)
            self.attr_mark(batch, "decode_hbm")
        for _ in range(k):
            for request in batch:
                if request.done:
                    continue
                # The reservation already covers this token: no allocation,
                # no possibility of mid-generation OOM (that is the one
                # thing worst-case reservation buys).
                self._finish_token(request)
                if request.done:
                    self.running.remove(request)
                    self.kv.release(request.req_id)
        self.iteration += k - 1

    @property
    def reserved_unused_bytes(self) -> int:
        """KV bytes reserved but not yet (and possibly never) used."""
        used = sum(
            self.model.kv_bytes(r.total_tokens) for r in self.running
        )
        return max(0, self.kv_used_bytes - used)
