"""LoRA adapter caching and loading (§6 "AQUA's effect on LoRA", §7).

A serving engine caches a bounded set of adapters in GPU memory; a
request naming an uncached adapter blocks until the adapter is loaded.
Where the adapter comes from is the experiment:

* **baseline** — host DRAM over PCIe, and vLLM's stock implementation
  loads each per-layer A/B matrix separately ("multiple small data
  transfers", §B.1), wasting link bandwidth;
* **AQUA** — the adapter store lives in a producer GPU's HBM as AQUA
  TENSORS, copied whole over NVLink and only then scattered into the
  per-layer weights locally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Generator, Optional

from repro.models.lora import LoRAAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aqua.lib import AquaLib
    from repro.hardware.gpu import GPU
    from repro.hardware.server import Server


class LoRACache:
    """LRU cache of GPU-resident adapters with simulated load paths.

    Parameters
    ----------
    gpu, server:
        The consumer GPU the adapters are loaded into.
    capacity_bytes:
        GPU memory reserved for cached adapters (the paper uses 10
        adapters in §6 and a 10 GB reservation in §7).
    aqua_lib:
        When given, adapters load from AQUA TENSORS (producer GPU over
        NVLink, DRAM fallback); otherwise from host DRAM over PCIe.
    whole_copy:
        Copy each adapter as one buffer (AQUA's vLLM modification).
        When ``False`` the stock path moves each per-layer/per-module
        A/B matrix separately.
    pieces_per_adapter:
        Scatter granularity of the stock path (~2 matrices x 7 target
        modules x 16-32 layers in real adapters).
    host_bandwidth_fraction:
        The stock loader copies from *pageable* host memory, which
        reaches only a fraction of PCIe's DMA bandwidth; AQUA's
        offload store (GPU HBM or pinned staging) pays no such penalty.
    per_piece_overhead:
        CPU-side cost (Python dispatch + kernel launch + sync) per
        small copy on the stock path.
    """

    def __init__(
        self,
        gpu: "GPU",
        server: "Server",
        capacity_bytes: int,
        aqua_lib: Optional["AquaLib"] = None,
        whole_copy: bool = True,
        pieces_per_adapter: int = 224,
        host_bandwidth_fraction: float = 0.2,
        per_piece_overhead: float = 0.15e-3,
        name: str = "lora-cache",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.env = server.env
        self.gpu = gpu
        self.server = server
        self.capacity_bytes = capacity_bytes
        self.aqua_lib = aqua_lib
        if not 0 < host_bandwidth_fraction <= 1:
            raise ValueError(
                f"host_bandwidth_fraction must be in (0, 1], got {host_bandwidth_fraction}"
            )
        self.whole_copy = whole_copy
        self.pieces_per_adapter = pieces_per_adapter
        self.host_bandwidth_fraction = host_bandwidth_fraction
        self.per_piece_overhead = per_piece_overhead
        self.name = name
        gpu.hbm.reserve(f"{name}:region", capacity_bytes)
        self._resident: OrderedDict[str, int] = OrderedDict()
        self._store: dict[str, object] = {}  # adapter name -> AquaTensor
        self.hits = 0
        self.misses = 0
        self.bytes_loaded = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(self._resident.values())

    def is_resident(self, adapter: LoRAAdapter) -> bool:
        return adapter.name in self._resident

    def register(self, adapter: LoRAAdapter) -> None:
        """Stage an adapter in the offload store (AQUA mode only).

        In AQUA mode every known adapter is kept as an AQUA TENSOR on
        the paired producer GPU (DRAM when the lease is full), the way
        the paper pre-stages the 30-200 synthesized adapters.
        """
        if self.aqua_lib is None or adapter.name in self._store:
            return
        self._store[adapter.name] = self.aqua_lib.to_responsive_tensor(
            adapter.nbytes, pieces=self.pieces_per_adapter, tag=f"lora-{adapter.name}"
        )

    def ensure(self, adapter: LoRAAdapter) -> Generator:
        """Make ``adapter`` GPU-resident, loading (and evicting) if needed."""
        if adapter.nbytes > self.capacity_bytes:
            raise ValueError(
                f"adapter {adapter.name} ({adapter.nbytes}B) exceeds the "
                f"cache capacity ({self.capacity_bytes}B)"
            )
        if adapter.name in self._resident:
            self._resident.move_to_end(adapter.name)
            self.hits += 1
            return
        self.misses += 1
        while self.used_bytes + adapter.nbytes > self.capacity_bytes:
            self._resident.popitem(last=False)
        yield from self._load(adapter)
        self._resident[adapter.name] = adapter.nbytes
        self.bytes_loaded += adapter.nbytes

    def _load(self, adapter: LoRAAdapter) -> Generator:
        if self.aqua_lib is not None:
            self.register(adapter)
            tensor = self._store[adapter.name]
            pieces = None if self.whole_copy else self.pieces_per_adapter
            if self.whole_copy:
                # One whole-adapter copy, then a local scatter into the
                # per-layer weights (two HBM passes).
                yield from tensor.fetch(pieces=1)
                scatter = 2 * adapter.nbytes / self.gpu.spec.effective_hbm_bandwidth
                yield self.env.timeout(scatter)
            else:
                yield from tensor.fetch(pieces=pieces)
        else:
            pieces = 1 if self.whole_copy else self.pieces_per_adapter
            yield from self.server.transfer(
                self.server.dram, self.gpu, adapter.nbytes, pieces=pieces
            )
            # Pageable-host penalty: the stock loader's source buffers are
            # not pinned, so DMA runs well below PCIe peak...
            peak = self.server.pcie_link.peak_bandwidth
            slowdown = adapter.nbytes / (peak * self.host_bandwidth_fraction) - (
                adapter.nbytes / peak
            )
            # ...and each per-module copy pays CPU dispatch overhead.
            slowdown += pieces * self.per_piece_overhead
            yield self.env.timeout(slowdown)

    def drop_all(self) -> None:
        """Evict every resident adapter (tests / reconfiguration)."""
        self._resident.clear()

    def __repr__(self) -> str:
        return (
            f"<LoRACache {len(self._resident)} resident, "
            f"{self.used_bytes}/{self.capacity_bytes}B, "
            f"hits={self.hits} misses={self.misses}>"
        )
