"""Weighted completely fair scheduling (extension of §5).

Linux's CFS supports per-task *weights* (nice levels): a task's virtual
runtime advances inversely to its weight, so heavier tasks receive a
proportionally larger share of the CPU.  The same generalization drops
straight into AQUA's prompt scheduler: a prompt's virtual progress is
``generated_tokens / weight``, so a weight-2 tenant's prompts get
roughly twice the decode slices of a weight-1 tenant under contention
— differentiated service classes for multi-tenant inference, with the
same AQUA TENSORS context switching underneath.
"""

from __future__ import annotations

from repro.serving.cfs import CFSEngine
from repro.serving.request import Request


class WeightedCFSEngine(CFSEngine):
    """CFS with per-request service weights (``Request.weight``).

    Everything else — slicing, context switching over AQUA TENSORS or
    DRAM, admission — is inherited from :class:`CFSEngine`; only the
    virtual-runtime ordering changes.
    """

    def __init__(self, gpu, server, model, name: str = "wcfs", **kwargs) -> None:
        super().__init__(gpu, server, model, name=name, **kwargs)

    def _vruntime(self, request: Request) -> float:
        return request.generated_tokens / request.weight
