"""Chat context caching in offloaded memory (extension).

Multi-turn chat resends the whole conversation every turn, so each turn
re-prefills everything the model already ingested (§8's workload).  A
natural use of AQUA TENSORS is to *keep* a finished conversation's KV
cache offloaded — parked in the producer GPU's donated HBM — and pull
it back over NVLink when the user's next turn arrives, prefilling only
the new text.

This trades cheap remote memory for repeated prefill compute: restoring
N cached tokens costs an NVLink read of their KV instead of quadratic
attention recompute.  The cache is LRU over users with a byte budget;
entries are invalidated on restore (the conversation immediately grows
past them).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Generator, Optional

from repro.hardware.specs import GiB
from repro.models.llm import LLMSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aqua.lib import AquaLib
    from repro.aqua.tensor import AquaTensor


class ChatContextCache:
    """Per-user store of finished conversations' KV contexts.

    Parameters
    ----------
    aqua_lib:
        The consumer GPU's AQUA-LIB; cached contexts live wherever it
        places them (paired producer GPU, DRAM fallback).
    model:
        The served LLM (sizes the KV bytes).
    max_bytes:
        Total budget for cached contexts; least-recently-used users are
        evicted beyond it.
    """

    def __init__(
        self, aqua_lib: "AquaLib", model: LLMSpec, max_bytes: int = 20 * GiB
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.aqua_lib = aqua_lib
        self.model = model
        self.max_bytes = max_bytes
        self._entries: OrderedDict[int, tuple[int, "AquaTensor"]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.tokens_restored = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(tensor.nbytes for _, tensor in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def cached_tokens(self, user: Optional[int], prompt_tokens: int) -> int:
        """Reusable prefix length for a new prompt from ``user``.

        The chat turn's prompt embeds the prior conversation, so the
        cached context is usable iff it is a prefix (not longer than the
        new prompt).
        """
        if user is None:
            return 0
        entry = self._entries.get(user)
        if entry is None:
            return 0
        tokens, _ = entry
        return tokens if tokens <= prompt_tokens else 0

    # ------------------------------------------------------------------
    def save(self, user: Optional[int], tokens: int) -> Generator:
        """Park a finished conversation's KV (called before its blocks
        are released on the GPU).  Evicts LRU users over budget."""
        if user is None or tokens <= 0:
            return
        self.drop(user)  # a newer turn supersedes any stale entry
        nbytes = self.model.kv_bytes(tokens)
        if nbytes > self.max_bytes:
            return  # conversation too large to be worth caching
        while self._entries and self.used_bytes + nbytes > self.max_bytes:
            _, (_, victim) = self._entries.popitem(last=False)
            victim.free()
            self.evictions += 1
        tensor = self.aqua_lib.to_responsive_tensor(
            nbytes, pieces=2 * self.model.n_layers, tag=f"chat-ctx-u{user}"
        )
        yield from tensor.flush()
        self._entries[user] = (tokens, tensor)

    def restore(self, user: int) -> Generator:
        """Bring a user's cached context back into the GPU.

        Returns the number of tokens restored; the entry is consumed
        (the conversation immediately grows past it).
        """
        entry = self._entries.pop(user, None)
        if entry is None:
            self.misses += 1
            return 0
        tokens, tensor = entry
        yield from tensor.fetch()
        tensor.free()
        self.hits += 1
        self.tokens_restored += tokens
        return tokens

    def drop(self, user: int) -> None:
        entry = self._entries.pop(user, None)
        if entry is not None:
            entry[1].free()

    def clear(self) -> None:
        for user in list(self._entries):
            self.drop(user)

    def __repr__(self) -> str:
        return (
            f"<ChatContextCache users={len(self._entries)} "
            f"{self.used_bytes / 2**30:.1f}GiB hits={self.hits}>"
        )
