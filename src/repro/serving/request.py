"""Inference requests and their per-request metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.models.lora import LoRAAdapter

_REQUEST_IDS = count()


@dataclass
class Request:
    """One inference query against a hosted model.

    Attributes
    ----------
    arrival_time:
        Simulation time the request was submitted.
    prompt_tokens:
        Length of the prompt (drives prefill time and KV size).
    max_new_tokens:
        Tokens to generate before the request completes (taken from the
        dataset's reference response length, as vLLM's benchmarks do).
    adapter:
        Optional LoRA adapter that must be GPU-resident before inference.
    user:
        Optional user identifier (multi-turn chat workloads).
    weight:
        Scheduling weight for weighted-fair scheduling (like a Linux
        nice level): a weight-2 request accrues virtual progress at
        half speed, so it receives roughly twice the service under
        contention.  Plain CFS ignores it.
    """

    arrival_time: float
    prompt_tokens: int
    max_new_tokens: int
    adapter: Optional[LoRAAdapter] = None
    user: Optional[int] = None
    weight: float = 1.0
    req_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    # Runtime state, owned by the serving engine.
    generated_tokens: int = 0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    #: Optional simulation event triggered on completion (closed-loop
    #: workloads wait on this to send their next turn).
    on_finish: Optional[object] = None

    def __post_init__(self) -> None:
        if self.prompt_tokens < 1:
            raise ValueError(f"prompt must have >= 1 token, got {self.prompt_tokens}")
        if self.max_new_tokens < 1:
            raise ValueError(
                f"must generate >= 1 token, got {self.max_new_tokens}"
            )
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens (the KV-cache footprint)."""
        return self.prompt_tokens + self.generated_tokens

    @property
    def done(self) -> bool:
        return self.generated_tokens >= self.max_new_tokens

    @property
    def ttft(self) -> Optional[float]:
        """Time to first token: responsiveness (Figure 1a)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def rct(self) -> Optional[float]:
        """Request completion time: throughput (Figure 1b)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def record_token(self, now: float) -> None:
        """Account one generated token at simulation time ``now``."""
        if self.first_token_time is None:
            self.first_token_time = now
        self.generated_tokens += 1
        if self.done and self.finish_time is None:
            self.finish_time = now
            if self.on_finish is not None and not self.on_finish.triggered:
                self.on_finish.succeed(self)

    def __repr__(self) -> str:
        return (
            f"<Request #{self.req_id} prompt={self.prompt_tokens} "
            f"gen={self.generated_tokens}/{self.max_new_tokens}>"
        )
