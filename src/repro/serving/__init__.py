"""Inference serving engines.

This package reproduces the serving stacks the paper evaluates on:

* :class:`VLLMEngine` — continuous batching with a paged KV cache.
  Its default scheduler admits a prompt only when KV memory is
  available, which starves late arrivals under load (Figure 1/9); it
  can also act as an AQUA *producer*, donating spare KV memory.
* :class:`CFSEngine` — the completely fair scheduler of §5: prompts get
  token time-slices and their contexts are swapped in/out through AQUA
  TENSORS (fast) or host DRAM (baseline).
* :class:`FlexGenEngine` — offloaded long-prompt inference in the style
  of FlexGen: the whole KV cache lives off-GPU and is streamed through
  the GPU layer-by-layer each step.
* :class:`BatchEngine` — fixed-batch compute-bound serving for image
  and audio generators (the memory producers of Table 3).
* :class:`LoRACache` — an adapter cache whose misses load adapters over
  PCIe (baseline) or NVLink (AQUA), Figures 8 and 12.
"""

from repro.serving.baselines import DeepSpeedEngine, UVMEngine
from repro.serving.batch_engine import BatchEngine
from repro.serving.cfs import CFSEngine
from repro.serving.context_cache import ChatContextCache
from repro.serving.flexgen_engine import FlexGenEngine
from repro.serving.lora_manager import LoRACache
from repro.serving.metrics import MetricsCollector, TimeSeries, percentile
from repro.serving.orca_engine import OrcaEngine
from repro.serving.request import Request
from repro.serving.vllm_engine import VLLMEngine
from repro.serving.weighted_cfs import WeightedCFSEngine

__all__ = [
    "BatchEngine",
    "CFSEngine",
    "ChatContextCache",
    "DeepSpeedEngine",
    "FlexGenEngine",
    "UVMEngine",
    "LoRACache",
    "MetricsCollector",
    "OrcaEngine",
    "Request",
    "TimeSeries",
    "VLLMEngine",
    "WeightedCFSEngine",
    "percentile",
]
