"""Fixed-batch serving for compute-bound image and audio generators.

These engines (HuggingFace diffusers for StableDiffusion/SD-XL/
Kandinsky, a PyTorch engine for AudioGen/MusicGen) serve at the batch
size where throughput plateaus (Figure 2) and never need more memory —
they are the natural AQUA memory *producers* of Table 3.  After each
batch the ``batch-informer`` donates whatever HBM is free; donating
costs them almost nothing because transfers barely touch their compute
(Figure 3b).
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional, Union

from repro.aqua.informers import EngineStats
from repro.models.audio import AudioModelSpec
from repro.models.diffusion import DiffusionSpec
from repro.serving.metrics import MetricsCollector
from repro.serving.request import Request
from repro.sim import AnyOf

ProducerModel = Union[DiffusionSpec, AudioModelSpec]


class BatchEngine:
    """Serves image/audio requests in fixed-size batches.

    Parameters
    ----------
    gpu, server:
        Placement.
    model:
        A :class:`DiffusionSpec` or :class:`AudioModelSpec`.
    batch_size:
        Samples per batch; defaults to the model's peak-throughput
        batch on this GPU.
    aqua_lib:
        Optional producer-side AQUA-LIB (attach a
        :class:`~repro.aqua.informers.BatchInformer` to it).
    decode_coarsen:
        Aggregate-event window (default 1 = off).  When the backlog
        holds several *full* batches, up to this many of them are
        charged as one compute event and their completions replayed at
        the window end — the producer-side analogue of the engines'
        time-warp decode coarsening.  Producer ``_inform`` duties still
        run once per modelled batch (at the window-end timestamp), so
        donation volume is unchanged.
    """

    def __init__(
        self,
        gpu,
        server,
        model: ProducerModel,
        batch_size: Optional[int] = None,
        aqua_lib=None,
        name: str = "batch-engine",
        decode_coarsen: int = 1,
    ) -> None:
        self.env = server.env
        self.gpu = gpu
        self.server = server
        self.model = model
        self.aqua_lib = aqua_lib
        self.name = name
        self.batch_size = (
            batch_size
            if batch_size is not None
            else model.peak_throughput_batch(gpu.spec)
        )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if decode_coarsen < 1:
            raise ValueError(f"decode_coarsen must be >= 1, got {decode_coarsen}")
        self.decode_coarsen = decode_coarsen
        gpu.hbm.reserve(f"{name}:weights", model.weight_bytes)
        gpu.hbm.reserve(
            f"{name}:activations",
            self.batch_size * self._activation_bytes_per_sample(),
        )
        self.metrics = MetricsCollector(name)
        self.waiting: deque[Request] = deque()
        self.batches_run = 0
        self._arrival_event = self.env.event()
        self._process = None

    def _activation_bytes_per_sample(self) -> int:
        if isinstance(self.model, DiffusionSpec):
            return self.model.activation_bytes_per_image
        return self.model.activation_bytes_per_sample

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        self.waiting.append(request)
        if not self._arrival_event.triggered:
            self._arrival_event.succeed()

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError(f"{self.name} already started")
        self._process = self.env.process(self._serve())

    # ------------------------------------------------------------------
    def _inform(self) -> None:
        """Producer duty: report free memory after a batch (§B.1)."""
        if self.aqua_lib is None:
            return
        stats = EngineStats(
            now=self.env.now,
            pending_requests=len(self.waiting),
            offerable_bytes=self.gpu.hbm.free,
        )
        delta = self.aqua_lib.inform_stats(stats)
        if delta < 0:
            # The memory is genuinely free HBM: lease it immediately.
            self.aqua_lib.complete_offer(-delta)

    def _serve(self) -> Generator:
        while True:
            if not self.waiting:
                if self._arrival_event.triggered:
                    self._arrival_event = self.env.event()
                yield AnyOf(
                    self.env, [self._arrival_event, self.env.timeout(0.25)]
                )
                self._inform()
                continue
            if self.decode_coarsen > 1 and len(self.waiting) >= 2 * self.batch_size:
                # Aggregate window: the backlog holds several full
                # batches whose compute time is identical, so charge m
                # of them as ONE event and replay the per-batch
                # bookkeeping (completions + producer informs) at the
                # window end.
                m = min(self.decode_coarsen, len(self.waiting) // self.batch_size)
                duration = self.model.batch_time(self.gpu.spec, self.batch_size)
                yield from self.gpu.compute_op(m * duration)
                for _ in range(m):
                    batch = [self.waiting.popleft() for _ in range(self.batch_size)]
                    for request in batch:
                        request.record_token(self.env.now)
                        self.metrics.record_token(self.env.now)
                        self.metrics.record_completion(request)
                    self.batches_run += 1
                    self._inform()
                continue
            batch = [
                self.waiting.popleft()
                for _ in range(min(self.batch_size, len(self.waiting)))
            ]
            duration = self.model.batch_time(self.gpu.spec, len(batch))
            yield from self.gpu.compute_op(duration)
            for request in batch:
                request.record_token(self.env.now)
                self.metrics.record_token(self.env.now)
                self.metrics.record_completion(request)
            self.batches_run += 1
            self._inform()

    @property
    def throughput_so_far(self) -> float:
        """Completed samples per second since time zero."""
        if self.env.now <= 0:
            return 0.0
        return len(self.metrics.completed) / self.env.now

    def __repr__(self) -> str:
        return (
            f"<BatchEngine {self.name} model={self.model.name} "
            f"batch={self.batch_size} waiting={len(self.waiting)}>"
        )
