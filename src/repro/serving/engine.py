"""Shared machinery for LLM serving engines.

:class:`LLMEngineBase` owns what every LLM engine needs: the weight and
workspace reservations, the paged KV cache sized like a real engine
(``gpu_memory_utilization`` budget), the waiting queue, metrics, and the
producer-side AQUA duties (periodic ``inform_stats`` with donate/grow
handling).  Concrete schedulers (continuous batching, CFS, FlexGen-style
streaming) subclass it.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator, Optional

from repro.aqua.informers import EngineStats
from repro.memory.allocator import BlockAllocator
from repro.memory.kv_cache import PagedKVCache
from repro.models.llm import LLMSpec
from repro.serving.metrics import MetricsCollector
from repro.serving.request import Request
from repro.sim import AnyOf, Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aqua.lib import AquaLib
    from repro.hardware.gpu import GPU
    from repro.hardware.server import Server


class LLMEngineBase:
    """Common state and producer duties for LLM serving engines.

    Parameters
    ----------
    gpu, server:
        Where the engine runs.
    model:
        The hosted LLM.
    block_tokens:
        Paged-attention block size in tokens.
    utilization:
        Fraction of HBM the engine may use (vLLM's
        ``gpu_memory_utilization``, default 0.9).
    workspace_tokens:
        Prefill chunk the activation workspace is sized for.
    aqua_lib:
        Optional AQUA-LIB instance.  With an informer attached the
        engine acts as a *producer*: every ``inform_every`` iterations
        it reports stats and donates / takes back KV memory.
    inform_every:
        Iterations between ``inform_stats`` calls.
    decode_coarsen:
        Time-warp decode coarsening window (default 1 = off).  When
        ``k > 1``, engines that support it model up to ``k`` decode
        steps of a frozen batch as ONE aggregate simulation event whose
        duration is the exact sum of the per-step roofline times, then
        replay the per-token bookkeeping at the window end.  This cuts
        kernel event count by ~``k``× for decode-bound rigs (the
        Revati-style coarsening move, see ``docs/performance.md``) at
        the cost of intra-window timestamp fidelity: tokens inside a
        window are recorded at the window-end time, and interrupts
        (faults, preemptions, AQUA migrations) landing mid-window take
        effect at the window boundary (*lazy repair*).  Aggregate
        metrics (tokens, completions, byte conservation) are unchanged;
        per-token latency time series are coarsened.  Window length is
        always clamped so no request would finish mid-window and no
        producer/inform boundary is skipped.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub.  When set the
        engine reports request/token/requeue counters, latency
        attribution marks and flow events; when ``None`` (the default)
        every hook is a single ``None`` check.
    """

    def __init__(
        self,
        gpu: "GPU",
        server: "Server",
        model: LLMSpec,
        block_tokens: int = 16,
        utilization: float = 0.9,
        workspace_tokens: int = 2048,
        aqua_lib: Optional["AquaLib"] = None,
        inform_every: int = 8,
        name: str = "llm-engine",
        tracer=None,
        telemetry=None,
        decode_coarsen: int = 1,
    ) -> None:
        if not 0 < utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        if decode_coarsen < 1:
            raise ValueError(f"decode_coarsen must be >= 1, got {decode_coarsen}")
        self.env: Environment = server.env
        self.gpu = gpu
        self.server = server
        self.model = model
        self.aqua_lib = aqua_lib
        self.inform_every = inform_every
        self.decode_coarsen = decode_coarsen
        self.name = name
        self.telemetry = telemetry
        if tracer is None and telemetry is not None:
            tracer = telemetry.tracer
        self.tracer = tracer
        self.metrics = MetricsCollector(name)

        pre_reserved = gpu.hbm.used  # e.g. a LoRA cache region
        gpu.hbm.reserve(f"{name}:weights", model.weight_bytes)
        gpu.hbm.reserve(
            f"{name}:workspace", model.activation_workspace_bytes(workspace_tokens)
        )
        kv_budget = (
            model.free_kv_bytes(
                gpu.spec, workspace_tokens=workspace_tokens, utilization=utilization
            )
            - pre_reserved
        )
        block_bytes = model.kv_bytes_per_token * block_tokens
        n_blocks = max(0, kv_budget) // block_bytes
        self.allocator = BlockAllocator(
            n_blocks=int(n_blocks),
            block_bytes=block_bytes,
            pool=gpu.hbm,
            tag=f"{name}:kv-region",
        )
        self.kv = PagedKVCache(model, self.allocator, block_tokens=block_tokens)

        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.total_submitted = 0
        self.iteration = 0
        self._arrival_event = self.env.event()
        self._process = None

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue a request for inference."""
        self.waiting.append(request)
        self.total_submitted += 1
        if self.telemetry is not None:
            self.telemetry.request_submitted(self.name, request)
        if not self._arrival_event.triggered:
            self._arrival_event.succeed()

    def start(self) -> None:
        """Begin serving (spawns the engine's simulation process)."""
        if self._process is not None:
            raise RuntimeError(f"{self.name} already started")
        self._process = self.env.process(self._serve())

    def _serve(self) -> Generator:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _wait_for_arrival(self, max_wait: float = 0.25) -> Generator:
        """Sleep until a request arrives or ``max_wait`` elapses.

        The timeout keeps producer duties ticking while idle (an idle
        LLM is exactly when it has memory to donate, Figure 10).
        """
        if self.waiting:
            return
        if self._arrival_event.triggered:
            self._arrival_event = self.env.event()
        yield AnyOf(self.env, [self._arrival_event, self.env.timeout(max_wait)])

    def _finish_token(self, request: Request) -> None:
        """Record one generated token, completing the request if done."""
        request.record_token(self.env.now)
        self.metrics.record_token(self.env.now)
        if self.telemetry is not None:
            self.telemetry.token_generated(self.name, request)
        if request.done:
            self.metrics.record_completion(request)

    def _decode_window_len(self, batch) -> int:
        """Length of the next time-warp decode window for ``batch``.

        Clamped so the aggregate event cannot paper over a boundary the
        exact path would have observed: no request in the frozen batch
        may reach ``max_new_tokens`` before the final modelled step, and
        the window may not cross a producer-inform or memory-sample
        iteration boundary (``_serve`` counts a window as its modelled
        number of iterations).
        """
        k = min(self.decode_coarsen,
                min(r.max_new_tokens - r.generated_tokens for r in batch))
        if self.aqua_lib is not None:
            k = min(k, self.inform_every - self.iteration % self.inform_every)
        sample_every = getattr(self, "sample_every", 0)
        if sample_every:
            k = min(k, sample_every - self.iteration % sample_every)
        return max(1, k)

    def requeue(self, request: Request) -> None:
        """Return an in-flight request to the head of the waiting queue.

        Graceful degradation: when a fault costs a request its inference
        context (e.g. :class:`~repro.aqua.TensorLostError` after a
        producer GPU failure), the engine re-queues the request instead
        of dropping it.  The request keeps its generated-token progress;
        the engine recomputes the lost context when the request next
        runs, which is the recovery cost the resilience experiment
        measures.
        """
        if request in self.running:
            self.running.remove(request)
        self.waiting.appendleft(request)
        self.metrics.record_requeue(self.env.now)
        if self.telemetry is not None:
            self.telemetry.request_requeued(self.name)
        if self.tracer is not None:
            self.tracer.add_instant(
                "requeue", self.name, time=self.env.now, request=request.req_id
            )

    @property
    def kv_used_bytes(self) -> int:
        return self.allocator.used_blocks * self.allocator.block_bytes

    @property
    def kv_capacity_bytes(self) -> int:
        return self.allocator.n_blocks * self.allocator.block_bytes

    @property
    def kv_free_bytes(self) -> int:
        return self.allocator.free_blocks * self.allocator.block_bytes

    def engine_stats(self) -> EngineStats:
        return EngineStats(
            now=self.env.now,
            pending_requests=len(self.waiting),
            running_requests=len(self.running),
            kv_used_bytes=self.kv_used_bytes,
            kv_capacity_bytes=self.kv_capacity_bytes,
            offerable_bytes=self.kv_free_bytes,
            arrived_total=self.total_submitted,
        )

    # ------------------------------------------------------------------
    # Producer duties (§B.1: vLLM as an AQUA memory producer)
    # ------------------------------------------------------------------
    def producer_tick(self) -> Generator:
        """Report stats to AQUA-LIB and apply the returned memory delta.

        Donations shrink the KV region (after a compaction pass that
        copies scattered live blocks out of the way, as the paper's
        vLLM integration does); reclaims grow it back.
        """
        if self.aqua_lib is None:
            return
        delta = self.aqua_lib.inform_stats(self.engine_stats())
        if delta < 0:
            blocks = min(-delta // self.allocator.block_bytes, self.allocator.free_blocks)
            if blocks <= 0:
                return
            moved = min(self.kv_used_bytes, blocks * self.allocator.block_bytes)
            if moved > 0:
                compaction = 2 * moved / self.gpu.spec.effective_hbm_bandwidth
                yield from self.gpu.compute_op(compaction)
            removed = self.allocator.shrink_any(blocks)
            if removed > 0:
                accepted = self.aqua_lib.complete_offer(
                    removed * self.allocator.block_bytes
                )
                if accepted == 0:
                    # Coordinator refused (reclaim in flight or this GPU
                    # quarantined): take the blocks back, don't strand them.
                    self.allocator.grow(removed)
        elif delta > 0:
            self.allocator.grow(delta // self.allocator.block_bytes)

    def maybe_producer_tick(self) -> Generator:
        if self.aqua_lib is not None and self.iteration % self.inform_every == 0:
            yield from self.producer_tick()

    def trace_span(self, name: str, start: float, **args) -> None:
        """Record a span from ``start`` to now on this engine's track."""
        if self.tracer is not None:
            self.tracer.add_span(name, self.name, start, self.env.now, **args)

    def attr_mark(self, requests, component: str) -> None:
        """Attribute each request's time since its last mark to ``component``.

        One line at every scheduling boundary; see
        :class:`~repro.telemetry.attribution.LatencyAttributor` for the
        telescoping-segments model this feeds.
        """
        if self.telemetry is None:
            return
        now = self.env.now
        for request in requests:
            self.telemetry.attribution.mark(request, component, now)

    def flow_step(self, requests, time=None) -> None:
        """Add a flow-chain step on this engine's track for each request."""
        if self.telemetry is None:
            return
        for request in requests:
            self.telemetry.flow(request.req_id, self.name, time=time)

    def sample_memory(self) -> None:
        """Record the GPU's free-memory time series (Figure 10a)."""
        self.metrics.sample("free_hbm", self.env.now, self.gpu.free_hbm)
        self.metrics.sample("kv_free", self.env.now, self.kv_free_bytes)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} model={self.model.name} "
            f"waiting={len(self.waiting)} running={len(self.running)}>"
        )
