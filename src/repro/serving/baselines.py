"""Additional offloading baselines from the paper's related work (§9).

* :class:`DeepSpeedEngine` — DeepSpeed ZeRO-Inference-style offloading.
  FlexGen's evaluation found DeepSpeed slower because of its less
  efficient offloading strategy; the operative difference for a
  single-stream long prompt is that its context I/O is *synchronous*
  (no double buffering), so token time is I/O **plus** compute instead
  of their max.  The paper argues AQUA's benefits "can extend to
  Deepspeed" — pairing this engine with a producer shows exactly that.

* :class:`UVMEngine` — CUDA Unified Virtual Memory as the offload
  mechanism.  The paper notes UVM's page-fault handler is "another
  abstraction AQUA can rely on", but it is a tight closed-source
  driver integration; mechanically, oversubscribed memory migrates on
  demand in small pages, so every context read pays per-page fault
  overheads instead of one large explicit copy.  This engine models
  that: 2 MiB pages, a fault service cost per page, and page-sized
  transfers that never reach the link's large-transfer bandwidth.
"""

from __future__ import annotations

import math
from typing import Generator

from repro.serving.flexgen_engine import FlexGenEngine

#: UVM migrates in 2 MiB large pages on modern drivers.
UVM_PAGE_BYTES = 2 * 1024 * 1024

#: CPU-side cost to service one GPU page fault (driver round trip).
UVM_FAULT_SECONDS = 25e-6


class DeepSpeedEngine(FlexGenEngine):
    """ZeRO-Inference-style long-prompt engine: synchronous context I/O."""

    def __init__(self, gpu, server, model, name: str = "deepspeed", **kwargs) -> None:
        super().__init__(gpu, server, model, name=name, **kwargs)

    def _infer(self, request) -> Generator:
        # Identical to FlexGen except decode does not overlap the KV
        # stream with compute: the fetch completes, then the kernels run.
        budget = min(request.max_new_tokens, self.alloc_horizon_tokens)
        max_total = request.prompt_tokens + budget
        tensor = self.aqua_lib.to_responsive_tensor(
            self.model.kv_bytes(max_total),
            pieces=self._stream_pieces(),
            tag=f"deepspeed-ctx-{request.req_id}",
        )
        try:
            prefill = self.model.prefill_time(self.gpu.spec, request.prompt_tokens)
            yield from self.gpu.compute_op(prefill)
            yield from tensor.flush(
                nbytes=self.model.kv_bytes(request.prompt_tokens),
                pieces=self._stream_pieces(),
            )
            self._finish_token(request)
            while not request.done and request.total_tokens < max_total:
                io_bytes = self.model.kv_bytes(request.total_tokens + 1)
                yield from self._io_step(tensor, io_bytes)
                yield from self._compute_step()
                self._finish_token(request)
                if request.generated_tokens % self.respond_every == 0:
                    yield from self.aqua_lib.respond()
        finally:
            tensor.free()


class UVMEngine(FlexGenEngine):
    """Long-prompt engine whose context lives in UVM-managed memory.

    The KV cache is oversubscribed: each decode step's context reads
    fault pages in on demand, paying a driver round trip per 2 MiB page
    plus a page-sized transfer — which is why UVM never sees NVLink's
    large-transfer bandwidth even when the backing store is a peer GPU.
    """

    def __init__(self, gpu, server, model, name: str = "uvm", **kwargs) -> None:
        super().__init__(gpu, server, model, name=name, **kwargs)
        self.page_faults = 0

    def _io_step(self, tensor, nbytes: int) -> Generator:
        pages = max(1, math.ceil(nbytes / UVM_PAGE_BYTES))
        self.page_faults += pages
        # Driver fault servicing (serialized on the CPU)...
        yield self.env.timeout(pages * UVM_FAULT_SECONDS)
        # ...then page-granular migrations: one piece per page, so the
        # per-transfer link latency is paid thousands of times.  The
        # page granularity is fixed by the driver — AQUA's gather
        # kernels cannot help here, so this bypasses the AQUA data path
        # and issues the raw page-sized transfers.
        yield from self.server.transfer(
            tensor.device, self.gpu, min(nbytes, tensor.nbytes), pieces=pages
        )
        tensor.fetch_count += 1
