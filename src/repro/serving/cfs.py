"""Completely fair scheduling of prompts (§5).

Instead of batch-processing whichever prompts fit in memory, the CFS
engine gives every live prompt time slices measured in generated
tokens: each round it activates the prompts that have generated the
*fewest* tokens so far (new arrivals first — which is what slashes
TTFT), runs one slice, then context-switches.

Context switching is the whole cost: the outgoing prompts' KV caches
are written out of the GPU and the incoming ones read back.  With AQUA
the contexts travel over NVLink as gathered AQUA TENSORS; the baseline
writes them to host DRAM over PCIe.  The slice length trades fairness
against switching overhead (ablated in the benchmarks).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.aqua.tensor import TensorLostError
from repro.serving.engine import LLMEngineBase
from repro.serving.lora_manager import LoRACache
from repro.serving.request import Request


class CFSEngine(LLMEngineBase):
    """Fair scheduler with swap-based context switching.

    Parameters (beyond :class:`LLMEngineBase`)
    ----------
    slice_tokens:
        Tokens each active prompt generates per slice (Figure 6 uses 5).
    max_batch:
        Maximum prompts active in one slice.
    use_aqua:
        Swap contexts through AQUA TENSORS (requires ``aqua_lib``);
        otherwise through host DRAM over PCIe.
    respond_every:
        Slices between ``aqua.respond()`` calls.
    """

    def __init__(
        self,
        gpu,
        server,
        model,
        slice_tokens: int = 5,
        max_batch: int = 32,
        use_aqua: bool = False,
        respond_every: int = 2,
        lora_cache: Optional[LoRACache] = None,
        context_cache=None,
        name: str = "cfs",
        **kwargs,
    ) -> None:
        super().__init__(gpu, server, model, name=name, **kwargs)
        if slice_tokens < 1:
            raise ValueError(f"slice_tokens must be >= 1, got {slice_tokens}")
        if use_aqua and self.aqua_lib is None:
            raise ValueError("use_aqua requires an aqua_lib")
        self.slice_tokens = slice_tokens
        self.max_batch = max_batch
        self.use_aqua = use_aqua
        self.respond_every = respond_every
        self.lora_cache = lora_cache
        #: Optional :class:`~repro.serving.context_cache.ChatContextCache`
        #: keeping finished conversations' KV offloaded between turns.
        self.context_cache = context_cache
        #: Requests admitted at least once but currently swapped out.
        self.swapped: list[Request] = []
        self._swap_tensors: dict[int, object] = {}
        self._dram_tags: dict[int, int] = {}
        self.context_switch_time = 0.0
        self.slices_run = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _vruntime(self, request: Request) -> float:
        """Virtual progress of a prompt; CFS serves the smallest first."""
        return request.generated_tokens

    def _candidates(self) -> list[Request]:
        """All live prompts, least-virtual-progress first (the CFS order)."""
        live = [*self.running, *self.swapped, *self.waiting]
        return sorted(live, key=lambda r: (self._vruntime(r), r.arrival_time))

    def _select_active(self) -> list[Request]:
        """Fill the next slice's active set within KV capacity."""
        active: list[Request] = []
        budget = self.allocator.n_blocks
        for request in self._candidates():
            if len(active) >= self.max_batch:
                break
            need = self.kv.blocks_for(request.total_tokens + self.slice_tokens)
            if need > budget:
                continue
            active.append(request)
            budget -= need
        return active

    # ------------------------------------------------------------------
    # Context switching
    # ------------------------------------------------------------------
    def _abandon_context(self, request: Request) -> None:
        """A fault cost this request its KV: release and re-queue it.

        The request keeps its token progress; re-admission through
        :meth:`_admit_new` prefills the whole context again (the
        recompute cost of recovery).  Requests are never dropped.
        """
        self.kv.release(request.req_id)
        if request in self.swapped:
            self.swapped.remove(request)
        self.requeue(request)

    def _swap_out(self, request: Request) -> Generator:
        nbytes = self.kv.swap_out(request.req_id)
        pieces = 2 * self.model.n_layers * self.kv.blocks_for(request.total_tokens)
        if self.use_aqua:
            tensor = self.aqua_lib.to_responsive_tensor(
                nbytes, pieces=pieces, tag=f"cfs-ctx-{request.req_id}"
            )
            try:
                yield from tensor.flush()
            except TensorLostError:
                tensor.free()
                self._abandon_context(request)
                return
            self._swap_tensors[request.req_id] = tensor
        else:
            self.server.dram.pool.reserve(f"{self.name}:ctx{request.req_id}", nbytes)
            self._dram_tags[request.req_id] = nbytes
            yield from self.server.transfer(self.gpu, self.server.dram, nbytes)
        self.running.remove(request)
        self.swapped.append(request)

    def _swap_in(self, request: Request) -> Generator:
        nbytes = self.kv.swap_in(request.req_id)
        if self.use_aqua:
            tensor = self._swap_tensors.pop(request.req_id)
            try:
                yield from tensor.fetch()
            except TensorLostError:
                tensor.free()
                self._abandon_context(request)
                return
            tensor.free()
        else:
            yield from self.server.transfer(self.server.dram, self.gpu, nbytes)
            self.server.dram.pool.release(f"{self.name}:ctx{request.req_id}")
            self._dram_tags.pop(request.req_id, None)
        self.swapped.remove(request)
        self.running.append(request)

    def _context_switch(self, active: list[Request]) -> Generator:
        started = self.env.now
        chosen = {r.req_id for r in active}
        out = [r for r in self.running if r.req_id not in chosen]
        for request in out:
            yield from self._swap_out(request)
        into = [r for r in active if r in self.swapped]
        for request in into:
            yield from self._swap_in(request)
        self.context_switch_time += self.env.now - started
        if (out or into) and self.env.now > started:
            self.trace_span(
                "context-switch", started, out=len(out), swapped_in=len(into)
            )
            # Context switches are offload traffic: swap-out victims and
            # swapped-in winners both spent this window on the fetch path.
            self.attr_mark([*out, *into], "offload_fetch")

    def _admit_new(self, active: list[Request]) -> Generator:
        """Prefill requests entering the GPU for the first time.

        With a chat context cache, a returning user's prior conversation
        KV is restored from offloaded memory and only the new text is
        prefilled.
        """
        fresh = [r for r in active if r in self.waiting]
        if not fresh:
            return
        self.attr_mark(fresh, "queueing")
        prefill_tokens = 0
        for request in fresh:
            self.waiting.remove(request)
            self.kv.admit(request.req_id, request.total_tokens)
            if self.lora_cache is not None and request.adapter is not None:
                yield from self.lora_cache.ensure(request.adapter)
            restored = 0
            if self.context_cache is not None and request.user is not None:
                if self.context_cache.cached_tokens(
                    request.user, request.prompt_tokens
                ):
                    restored = yield from self.context_cache.restore(request.user)
            prefill_tokens += request.total_tokens - restored
        started = self.env.now
        yield from self.gpu.compute_op(
            self.model.prefill_time(self.gpu.spec, prefill_tokens)
        )
        self.trace_span(
            "prefill", started, requests=len(fresh), tokens=prefill_tokens
        )
        self.attr_mark(fresh, "prefill_compute")
        self.flow_step(fresh, time=started)
        for request in fresh:
            self._finish_token(request)
            if request.done:
                yield from self._maybe_cache_context(request)
                self.kv.release(request.req_id)
            else:
                self.running.append(request)

    def _maybe_cache_context(self, request: Request) -> Generator:
        """Park a finished conversation's KV before releasing its blocks."""
        if self.context_cache is not None and request.user is not None:
            yield from self.context_cache.save(request.user, request.total_tokens)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _run_slice(self) -> Generator:
        slice_started = self.env.now
        slice_batch = len(self.running)
        seen: dict[int, Request] = {}
        try:
            tokens_left = self.slice_tokens
            while tokens_left > 0:
                batch = list(self.running)
                if not batch:
                    return
                # Time-warp coarsening (see VLLMEngine._decode_step):
                # fuse up to decode_coarsen of the slice's per-token
                # steps into one aggregate compute event, clamped so no
                # sequence finishes mid-window.  KV capacity for the
                # whole slice was budgeted by _select_active, so the
                # replayed appends cannot overflow.
                k = 1
                if self.decode_coarsen > 1:
                    k = min(
                        self.decode_coarsen,
                        tokens_left,
                        min(r.max_new_tokens - r.generated_tokens for r in batch),
                    )
                n = len(batch)
                context = sum(r.total_tokens for r in batch)
                if k == 1:
                    step = self.model.decode_step_time(self.gpu.spec, n, context)
                else:
                    step_time = self.model.decode_step_time
                    step = 0.0
                    for s in range(k):
                        step += step_time(self.gpu.spec, n, context + s * n)
                yield from self.gpu.compute_op(step)
                for _ in range(k):
                    for request in batch:
                        seen.setdefault(request.req_id, request)
                        self.kv.append_token(request.req_id)
                        self._finish_token(request)
                        if request.done:
                            yield from self._maybe_cache_context(request)
                            self.running.remove(request)
                            self.kv.release(request.req_id)
                tokens_left -= k
        finally:
            if slice_batch and self.env.now > slice_started:
                self.trace_span("slice", slice_started, batch=slice_batch)
                if self.telemetry is not None:
                    self.telemetry.decode_batch(self.name, slice_batch)
                    self.attr_mark(list(seen.values()), "decode_hbm")

    def _evict_oversized(self) -> None:
        """No live prompt fits the KV cache: reject or truncate one."""
        if self.waiting:
            self.waiting.popleft()
            return
        victim = max(
            [*self.running, *self.swapped], key=lambda r: r.total_tokens
        )
        victim.max_new_tokens = victim.generated_tokens + 1
        self._finish_token(victim)
        if victim in self.running:
            self.running.remove(victim)
            self.kv.release(victim.req_id)
        self._release_finished_swapped()

    def _release_finished_swapped(self) -> None:
        for request in [r for r in self.swapped if r.done]:
            self.swapped.remove(request)
            self.kv.release(request.req_id)
            tensor = self._swap_tensors.pop(request.req_id, None)
            if tensor is not None:
                tensor.free()
            if request.req_id in self._dram_tags:
                self.server.dram.pool.release(f"{self.name}:ctx{request.req_id}")
                del self._dram_tags[request.req_id]

    def _serve(self) -> Generator:
        while True:
            if not (self.running or self.swapped or self.waiting):
                yield from self._wait_for_arrival()
                self.iteration += 1
                if self.aqua_lib is not None and self.iteration % self.inform_every == 0:
                    yield from self.producer_tick()
                continue
            active = self._select_active()
            if not active:
                self._evict_oversized()
                continue
            yield from self._context_switch(active)
            yield from self._admit_new(active)
            yield from self._run_slice()
            self._release_finished_swapped()
            self.slices_run += 1
            self.iteration += 1
            if self.aqua_lib is not None and self.iteration % self.respond_every == 0:
                yield from self.aqua_lib.respond()
            if self.aqua_lib is not None and self.iteration % self.inform_every == 0:
                yield from self.producer_tick()
