"""Long-prompt (non-interactive) workloads for FlexGen-style engines.

The paper's long-prompt experiments (§6.1, Figures 7, 10, 18) use
8,000-token prompts on OPT-30B — a context that does not fit in the
GPU's free memory after loading the model — and measure tokens
generated in a fixed duration (ten minutes).
"""

from __future__ import annotations

from repro.serving.request import Request

#: The paper's prompt length: "the context limit for the popular GPT-4".
PAPER_PROMPT_TOKENS = 8000


def long_prompt_requests(
    count: int = 1,
    prompt_tokens: int = PAPER_PROMPT_TOKENS,
    max_new_tokens: int = 100_000,
    start: float = 0.0,
) -> list[Request]:
    """Back-to-back long-prompt jobs.

    ``max_new_tokens`` defaults to effectively-unbounded: the experiment
    measures how many tokens are produced within the run duration, so
    generation should never finish on its own.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [
        Request(
            arrival_time=start,
            prompt_tokens=prompt_tokens,
            max_new_tokens=max_new_tokens,
        )
        for _ in range(count)
    ]
