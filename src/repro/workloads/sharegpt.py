"""ShareGPT-like interactive prompts.

The paper samples interactive requests from the ShareGPT dataset and
uses each conversation's real response length as the generation length
(§6).  The dataset itself is not redistributable, so this module
reproduces its published length statistics with seeded lognormal
samplers: median prompts of a few hundred tokens with a heavy tail,
responses averaging ~200-250 tokens (the distribution vLLM's benchmark
reports for ShareGPT).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request
from repro.workloads.arrivals import poisson_arrival_times


@dataclass(frozen=True)
class LengthDistribution:
    """A clipped lognormal over token counts."""

    mean_log: float
    sigma_log: float
    minimum: int
    maximum: int

    def sample(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(mean=self.mean_log, sigma=self.sigma_log)
        return int(np.clip(round(value), self.minimum, self.maximum))


#: Prompt lengths: median ~160 tokens, tail to 2k (ShareGPT-like).
SHAREGPT_PROMPT = LengthDistribution(
    mean_log=np.log(160), sigma_log=0.9, minimum=8, maximum=2048
)

#: Response lengths: median ~210 tokens, tail to 1k.
SHAREGPT_RESPONSE = LengthDistribution(
    mean_log=np.log(210), sigma_log=0.7, minimum=4, maximum=1024
)


class ShareGPTSampler:
    """Seeded sampler of ShareGPT-like (prompt, response) length pairs."""

    def __init__(
        self,
        seed: int = 0,
        prompt: LengthDistribution = SHAREGPT_PROMPT,
        response: LengthDistribution = SHAREGPT_RESPONSE,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.prompt = prompt
        self.response = response

    def sample(self) -> tuple[int, int]:
        return self.prompt.sample(self.rng), self.response.sample(self.rng)

    def request(self, arrival_time: float) -> Request:
        prompt_tokens, response_tokens = self.sample()
        return Request(
            arrival_time=arrival_time,
            prompt_tokens=prompt_tokens,
            max_new_tokens=response_tokens,
        )


def sharegpt_requests(
    rate: float, count: int, seed: int = 0, start: float = 0.0
) -> list[Request]:
    """A Poisson trace of ShareGPT-like requests at ``rate`` req/s."""
    sampler = ShareGPTSampler(seed=seed)
    times = poisson_arrival_times(sampler.rng, rate, count, start=start)
    return [sampler.request(t) for t in times]
