"""LoRA adapter workloads (§6 "inference with LoRA adapters", §7).

Each request is a ShareGPT-like prompt that names one adapter from a
pool; the paper randomly assigns one of 30 synthesized 320 MB adapters
per request (Figure 8), or one of 200 adapters of a fixed size with a
10 GB cache for the tensor-size sweep (Figure 12).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.lora import LoRAAdapter
from repro.serving.request import Request
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.sharegpt import ShareGPTSampler


def lora_requests(
    adapters: Sequence[LoRAAdapter],
    rate: float,
    count: int,
    seed: int = 0,
    start: float = 0.0,
    unique_assignment: bool = False,
    response_tokens: Optional[int] = None,
) -> list[Request]:
    """A Poisson trace of adapter-tagged requests.

    Parameters
    ----------
    adapters:
        The adapter pool.
    unique_assignment:
        When True, request ``i`` uses adapter ``i % len(adapters)``
        (the Figure 12 sweep assigns "a different adapter" to each
        prompt so every request misses the cache); otherwise adapters
        are drawn uniformly at random, allowing cache hits (Figure 8).
    response_tokens:
        Fixed generation length; defaults to ShareGPT-like sampling.
    """
    if not adapters:
        raise ValueError("adapter pool is empty")
    sampler = ShareGPTSampler(seed=seed)
    rng = np.random.default_rng(seed + 1)
    times = poisson_arrival_times(sampler.rng, rate, count, start=start)
    requests = []
    for i, t in enumerate(times):
        prompt_tokens, sampled_response = sampler.sample()
        if unique_assignment:
            adapter = adapters[i % len(adapters)]
        else:
            adapter = adapters[int(rng.integers(len(adapters)))]
        requests.append(
            Request(
                arrival_time=t,
                prompt_tokens=prompt_tokens,
                max_new_tokens=response_tokens or sampled_response,
                adapter=adapter,
            )
        )
    return requests
