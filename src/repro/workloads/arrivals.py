"""Arrival processes: Poisson streams and closed-loop users."""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.serving.request import Request
from repro.sim import Environment


def poisson_arrival_times(
    rng: np.random.Generator, rate: float, count: int, start: float = 0.0
) -> list[float]:
    """``count`` arrival times of a Poisson process of ``rate`` req/s.

    The paper issues interactive requests "using Poisson distribution
    for request arrival times" at 1-10 req/s, like vLLM's benchmarks.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    gaps = rng.exponential(scale=1.0 / rate, size=count)
    return list(start + np.cumsum(gaps))


def submit_at(env: Environment, engine, request: Request) -> None:
    """Schedule a request's submission at its arrival time."""

    def deliver(env):
        delay = request.arrival_time - env.now
        if delay > 0:
            yield env.timeout(delay)
        request.arrival_time = env.now
        engine.submit(request)

    env.process(deliver(env))


def submit_all(env: Environment, engine, requests: list[Request]) -> None:
    """Schedule a whole trace of requests onto an engine."""
    for request in requests:
        submit_at(env, engine, request)


def closed_loop_user(
    env: Environment,
    engine,
    make_request: Callable[[int], Request],
    turns: int,
    think_time: Callable[[], float],
    user: Optional[int] = None,
) -> Generator:
    """One closed-loop user: submit, await the response, think, repeat.

    This is the chatbot pattern of §8: each user issues one prompt,
    waits for the full response, then (after a think-time gap) sends
    the next turn.
    """
    if turns < 1:
        raise ValueError(f"turns must be >= 1, got {turns}")
    for turn in range(turns):
        request = make_request(turn)
        request.user = user
        request.on_finish = env.event()
        request.arrival_time = env.now
        engine.submit(request)
        yield request.on_finish
        if turn < turns - 1:
            yield env.timeout(max(0.0, think_time()))
