"""Arrival processes: Poisson streams, closed-loop users, and
time-varying (non-homogeneous Poisson) open-loop traffic.

The NHPP generators use **thinning with a shared master process**: one
homogeneous Poisson stream at a fixed ``rate_cap`` is drawn first —
arrival times *and* every per-arrival attribute (keep-uniform, tenant
assignment, token counts, user id) in a single pass — and each arrival
is then kept with probability ``rate · shape(t) / rate_cap``.  Because
the master stream and the keep-uniforms depend only on
``(seed, rate_cap, duration)``, traces at different offered loads are
**nested by construction**: every request in the 10 req/s trace appears,
bit-identically (same time, tokens, user, id), in the 40 req/s trace
drawn from the same seed and cap.  That nesting is what makes shed-rate
monotonicity in offered load a *structural* property the routing test
suite can assert exactly, rather than a statistical tendency it can
only bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generator, Optional, Sequence

import numpy as np

from repro.serving.request import Request
from repro.sim import Environment


def poisson_arrival_times(
    rng: np.random.Generator, rate: float, count: int, start: float = 0.0
) -> list[float]:
    """``count`` arrival times of a Poisson process of ``rate`` req/s.

    The paper issues interactive requests "using Poisson distribution
    for request arrival times" at 1-10 req/s, like vLLM's benchmarks.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    gaps = rng.exponential(scale=1.0 / rate, size=count)
    return list(start + np.cumsum(gaps))


def submit_at(env: Environment, engine, request: Request) -> None:
    """Schedule a request's submission at its arrival time."""

    def deliver(env):
        delay = request.arrival_time - env.now
        if delay > 0:
            yield env.timeout(delay)
        request.arrival_time = env.now
        engine.submit(request)

    env.process(deliver(env))


def submit_all(env: Environment, engine, requests: list[Request]) -> None:
    """Schedule a whole trace of requests onto an engine."""
    for request in requests:
        submit_at(env, engine, request)


def closed_loop_user(
    env: Environment,
    engine,
    make_request: Callable[[int], Request],
    turns: int,
    think_time: Callable[[], float],
    user: Optional[int] = None,
) -> Generator:
    """One closed-loop user: submit, await the response, think, repeat.

    This is the chatbot pattern of §8: each user issues one prompt,
    waits for the full response, then (after a think-time gap) sends
    the next turn.
    """
    if turns < 1:
        raise ValueError(f"turns must be >= 1, got {turns}")
    for turn in range(turns):
        request = make_request(turn)
        request.user = user
        request.on_finish = env.event()
        request.arrival_time = env.now
        engine.submit(request)
        yield request.on_finish
        if turn < turns - 1:
            yield env.timeout(max(0.0, think_time()))


# ---------------------------------------------------------------------------
# Time-varying (non-homogeneous Poisson) open-loop traffic
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RateShape:
    """A normalised rate multiplier ``shape(t)`` with a declared peak.

    ``fn`` maps trace-relative time to a non-negative multiplier on the
    nominal offered rate; ``peak`` is an upper bound on ``fn`` over the
    trace, which the thinning sampler needs to validate that
    ``rate · peak <= rate_cap`` (keep probabilities must stay <= 1).
    """

    fn: Callable[[float], float]
    peak: float
    name: str = "shape"

    def __post_init__(self) -> None:
        if self.peak <= 0:
            raise ValueError(f"peak must be positive, got {self.peak}")

    def __call__(self, t: float) -> float:
        return self.fn(t)


def steady_shape() -> RateShape:
    """Constant rate: the NHPP degenerates to plain Poisson."""
    return RateShape(fn=lambda t: 1.0, peak=1.0, name="steady")


def diurnal_shape(
    period: float = 120.0, amplitude: float = 0.5, phase: float = 0.0
) -> RateShape:
    """A compressed day: ``1 - amplitude·cos(2π(t - phase)/period)``.

    Mean multiplier 1.0, trough ``1 - amplitude``, peak
    ``1 + amplitude``.  Real diurnal cycles are 86 400 s; simulated
    frontier cells compress one "day" into ``period`` seconds (pass
    ``period=duration`` for exactly one cycle per run).  ``phase``
    shifts the trough — multi-region mixes use it to stagger time
    zones (see :func:`multi_region_tenants`).
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    omega = 2.0 * math.pi / period
    return RateShape(
        fn=lambda t: 1.0 - amplitude * math.cos(omega * (t - phase)),
        peak=1.0 + amplitude,
        name=f"diurnal(period={period:g},amp={amplitude:g},phase={phase:g})",
    )


def flash_crowd_shape(
    at: float, magnitude: float = 4.0, ramp: float = 2.0, hold: float = 5.0
) -> RateShape:
    """Baseline 1.0 with a trapezoidal spike to ``magnitude``.

    Traffic ramps linearly from 1.0 to ``magnitude`` over ``ramp``
    seconds starting at ``at - ramp``, holds the peak for ``hold``
    seconds, then ramps back down — the thundering-herd profile a
    shedding policy must absorb without collapsing goodput for traffic
    outside the spike.
    """
    if magnitude < 1.0:
        raise ValueError(f"magnitude must be >= 1, got {magnitude}")
    if ramp <= 0 or hold < 0:
        raise ValueError(f"need ramp > 0 and hold >= 0, got {ramp}, {hold}")

    def fn(t: float) -> float:
        if t < at - ramp or t > at + hold + ramp:
            return 1.0
        if t < at:
            return 1.0 + (magnitude - 1.0) * (t - (at - ramp)) / ramp
        if t <= at + hold:
            return magnitude
        return 1.0 + (magnitude - 1.0) * ((at + hold + ramp) - t) / ramp

    return RateShape(
        fn=fn,
        peak=magnitude,
        name=f"flash(at={at:g},mag={magnitude:g})",
    )


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's share of an open-loop mix.

    ``weight`` is the tenant's fraction of master arrivals (normalised
    across the mix); ``shape`` modulates *that tenant's* offered rate
    over time, so different tenants can peak at different times.
    """

    name: str
    weight: float = 1.0
    shape: Optional[RateShape] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


def multi_region_tenants(
    n: int = 3,
    period: float = 120.0,
    amplitude: float = 0.5,
    prefix: str = "region",
) -> list[TenantProfile]:
    """Equal-weight tenants with phase-staggered diurnal shapes.

    Region ``i`` peaks ``period·i/n`` later than region 0 — the
    follow-the-sun mix where aggregate load is flatter than any single
    region's, and a global router can absorb one region's peak with
    another's trough.
    """
    if n < 1:
        raise ValueError(f"need >= 1 region, got {n}")
    return [
        TenantProfile(
            name=f"{prefix}{i}",
            weight=1.0,
            shape=diurnal_shape(
                period=period, amplitude=amplitude, phase=period * i / n
            ),
        )
        for i in range(n)
    ]


def _master_arrival_times(
    rng: np.random.Generator, rate_cap: float, duration: float
) -> list[float]:
    """Homogeneous master-process arrival times in ``[0, duration]``.

    Chunked exponential draws; the realised sequence depends only on
    the generator state and ``(rate_cap, duration)`` — never on the
    thinned target rate, which is what keeps traces nested.
    """
    times: list[float] = []
    last = 0.0
    while last <= duration:
        gaps = rng.exponential(scale=1.0 / rate_cap, size=512)
        cum = last + np.cumsum(gaps)
        times.extend(cum.tolist())
        last = times[-1]
    return [t for t in times if t <= duration]


def nhpp_trace(
    rate: float,
    duration: float,
    *,
    seed: int = 0,
    rate_cap: Optional[float] = None,
    shape: Optional[RateShape] = None,
    tenants: Optional[Sequence[TenantProfile]] = None,
    start: float = 0.0,
    prompt_tokens: tuple[int, int] = (16, 256),
    max_new_tokens: tuple[int, int] = (16, 160),
    users: int = 512,
) -> list[tuple[str, Request]]:
    """A seeded open-loop trace of ``(tenant, request)`` pairs.

    Thinning over a shared master process (see the module docstring):
    arrival ``i`` of the master stream is kept iff its pre-drawn
    uniform is below ``rate · shape_tenant(t_i) / rate_cap``.  All
    per-arrival attributes — including ``req_id``, set to the master
    index — are drawn before thinning, so for a fixed
    ``(seed, rate_cap, duration)`` the trace at a lower ``rate`` is a
    strict subset of the trace at a higher one, request for request.

    **Sweeps must pass one explicit ``rate_cap`` covering every point**
    (``rate_cap >= max_rate · peak``); the default cap is derived from
    this call's own rate, which preserves determinism but not nesting
    across calls with different rates.

    ``shape`` applies to every tenant that does not carry its own;
    ``tenants`` defaults to a single ``"default"`` tenant.  Token
    counts are uniform over the inclusive ranges given; users are drawn
    from ``range(users)`` so session-affinity policies see repeat
    visitors.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    base_shape = shape or steady_shape()
    profiles = list(tenants) if tenants else [TenantProfile(name="default")]
    shapes = [p.shape or base_shape for p in profiles]
    needed = rate * max(s.peak for s in shapes)
    if rate_cap is None:
        rate_cap = needed
    if rate_cap < needed - 1e-9:
        raise ValueError(
            f"rate_cap ({rate_cap:g}) < rate x peak shape ({needed:g}); "
            f"thinning keep-probability would exceed 1"
        )

    rng = np.random.default_rng(seed)
    times = _master_arrival_times(rng, rate_cap, duration)
    n = len(times)
    keep_u = rng.random(n)
    tenant_u = rng.random(n)
    prompts = rng.integers(
        prompt_tokens[0], prompt_tokens[1], size=n, endpoint=True
    )
    news = rng.integers(
        max_new_tokens[0], max_new_tokens[1], size=n, endpoint=True
    )
    user_ids = rng.integers(0, max(1, users), size=n)

    total_weight = sum(p.weight for p in profiles)
    boundaries = np.cumsum([p.weight / total_weight for p in profiles])
    trace: list[tuple[str, Request]] = []
    for i in range(n):
        which = int(np.searchsorted(boundaries, tenant_u[i], side="right"))
        which = min(which, len(profiles) - 1)
        if keep_u[i] * rate_cap >= rate * shapes[which](times[i]):
            continue
        trace.append(
            (
                profiles[which].name,
                Request(
                    arrival_time=start + times[i],
                    prompt_tokens=int(prompts[i]),
                    max_new_tokens=int(news[i]),
                    user=int(user_ids[i]),
                    req_id=i,
                ),
            )
        )
    return trace


def nhpp_requests(rate: float, duration: float, **kwargs) -> list[Request]:
    """Single-tenant convenience wrapper around :func:`nhpp_trace`."""
    return [request for _, request in nhpp_trace(rate, duration, **kwargs)]
