"""Multi-turn chatbot workload (§8, Figure 13).

The paper simulates 25 chatbot users: each issues one prompt, waits for
the full response, then re-issues after a Poisson-distributed pause.
Run for several turns this produces the saw-tooth load pattern of
Figure 13 — a synchronized burst at the start of every turn.
"""

from __future__ import annotations

import numpy as np

from repro.serving.request import Request
from repro.sim import Environment
from repro.workloads.arrivals import closed_loop_user
from repro.workloads.codesummary import CODE_PROMPT, CODE_RESPONSE
from repro.workloads.sharegpt import ShareGPTSampler


class ChatbotWorkload:
    """Closed-loop chat users driving one engine.

    Parameters
    ----------
    n_users:
        Concurrent chatbot users (the paper uses 25).
    turns:
        Prompts per user (Figure 13 shows 4).
    think_time_mean:
        Mean of the exponential pause between a response and the user's
        next message.
    """

    def __init__(
        self,
        n_users: int = 25,
        turns: int = 4,
        think_time_mean: float = 2.0,
        seed: int = 0,
        code_chat: bool = True,
    ) -> None:
        if n_users < 1 or turns < 1:
            raise ValueError("n_users and turns must be >= 1")
        self.n_users = n_users
        self.turns = turns
        self.think_time_mean = think_time_mean
        self.seed = seed
        #: The paper's chatbot runs on CodeLlama-34B: turns carry code
        #: context, so prompts are long enough to pressure KV memory.
        self.code_chat = code_chat

    def attach(self, env: Environment, engine) -> list:
        """Spawn one closed-loop process per user; returns the processes."""
        processes = []
        for user in range(self.n_users):
            if self.code_chat:
                sampler = ShareGPTSampler(
                    seed=self.seed * 10_000 + user,
                    prompt=CODE_PROMPT,
                    response=CODE_RESPONSE,
                )
            else:
                sampler = ShareGPTSampler(seed=self.seed * 10_000 + user)
            rng = np.random.default_rng(self.seed * 20_000 + user)
            state: dict = {"last": None}

            def make_request(turn: int, sampler=sampler, state=state) -> Request:
                prompt_tokens, response_tokens = sampler.sample()
                # Each turn re-sends the whole conversation so far (chat
                # context accumulates), which is what makes later turns
                # heavy on KV memory.
                last = state["last"]
                if last is not None:
                    prompt_tokens += last.total_tokens
                request = Request(
                    arrival_time=0.0,  # overwritten at submission
                    prompt_tokens=prompt_tokens,
                    max_new_tokens=response_tokens,
                )
                state["last"] = request
                return request

            processes.append(
                env.process(
                    closed_loop_user(
                        env,
                        engine,
                        make_request,
                        turns=self.turns,
                        think_time=lambda rng=rng: float(
                            rng.exponential(self.think_time_mean)
                        ),
                        user=user,
                    )
                )
            )
        return processes
