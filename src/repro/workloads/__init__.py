"""Workload generators matching the paper's evaluation (§6, Tables 1-3).

All generators are seeded and deterministic: the ShareGPT-like
interactive sampler, 8000-token long prompts, LoRA adapter-per-request
streams, the multi-turn chatbot of Figure 13, and the Parti-prompt /
audio-description producer workloads.
"""

from repro.workloads.arrivals import (
    RateShape,
    TenantProfile,
    closed_loop_user,
    diurnal_shape,
    flash_crowd_shape,
    multi_region_tenants,
    nhpp_requests,
    nhpp_trace,
    poisson_arrival_times,
    steady_shape,
)
from repro.workloads.chatbot import ChatbotWorkload
from repro.workloads.codesummary import code_summary_requests
from repro.workloads.longprompt import long_prompt_requests
from repro.workloads.lora import lora_requests
from repro.workloads.producers import producer_requests
from repro.workloads.sharegpt import ShareGPTSampler, sharegpt_requests

__all__ = [
    "ChatbotWorkload",
    "RateShape",
    "ShareGPTSampler",
    "TenantProfile",
    "code_summary_requests",
    "closed_loop_user",
    "diurnal_shape",
    "flash_crowd_shape",
    "long_prompt_requests",
    "lora_requests",
    "multi_region_tenants",
    "nhpp_requests",
    "nhpp_trace",
    "poisson_arrival_times",
    "producer_requests",
    "sharegpt_requests",
    "steady_shape",
]
