"""Workload generators matching the paper's evaluation (§6, Tables 1-3).

All generators are seeded and deterministic: the ShareGPT-like
interactive sampler, 8000-token long prompts, LoRA adapter-per-request
streams, the multi-turn chatbot of Figure 13, and the Parti-prompt /
audio-description producer workloads.
"""

from repro.workloads.arrivals import closed_loop_user, poisson_arrival_times
from repro.workloads.chatbot import ChatbotWorkload
from repro.workloads.codesummary import code_summary_requests
from repro.workloads.longprompt import long_prompt_requests
from repro.workloads.lora import lora_requests
from repro.workloads.producers import producer_requests
from repro.workloads.sharegpt import ShareGPTSampler, sharegpt_requests

__all__ = [
    "ChatbotWorkload",
    "ShareGPTSampler",
    "code_summary_requests",
    "closed_loop_user",
    "long_prompt_requests",
    "lora_requests",
    "poisson_arrival_times",
    "producer_requests",
    "sharegpt_requests",
]
