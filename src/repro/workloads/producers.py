"""Producer-side workloads: image and audio generation requests.

The paper drives image producers with the Parti-prompts dataset and
audio producers with the models' default descriptions (§6).  Only the
arrival process matters to the simulation — each request is one sample
to generate — so this module emits seeded Poisson streams of unit
requests.
"""

from __future__ import annotations

import numpy as np

from repro.serving.request import Request
from repro.workloads.arrivals import poisson_arrival_times


def producer_requests(
    rate: float, count: int, seed: int = 0, start: float = 0.0
) -> list[Request]:
    """A Poisson stream of image/audio generation requests.

    Each request generates exactly one sample (``max_new_tokens=1``
    marks completion after one batch pass).
    """
    rng = np.random.default_rng(seed)
    times = poisson_arrival_times(rng, rate, count, start=start)
    return [
        Request(arrival_time=t, prompt_tokens=1, max_new_tokens=1) for t in times
    ]
