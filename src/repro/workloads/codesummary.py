"""Code-summarization workload (Table 1: CodeLlama-34B + vLLM + CFS).

The paper prompts CodeLlama-34B to summarize randomly sampled Python
files — prompts are whole source files (roughly 1-4k tokens once
tokenized) with comparatively short summaries.  Long prompts are what
exhaust the KV cache after a few tens of concurrent requests, producing
the starvation cliff of Figures 1 and 9.
"""

from __future__ import annotations

import numpy as np

from repro.serving.request import Request
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.sharegpt import LengthDistribution

#: Source files: median ~700 tokens, clipped to [300, 2000].  Long
#: enough that a few tens of requests exhaust the KV cache (the paper's
#: starvation point), short enough that prefill itself stays feasible.
CODE_PROMPT = LengthDistribution(
    mean_log=np.log(700), sigma_log=0.5, minimum=300, maximum=2000
)

#: Summaries: median ~300 tokens.
CODE_RESPONSE = LengthDistribution(
    mean_log=np.log(300), sigma_log=0.5, minimum=100, maximum=600
)


def code_summary_requests(
    rate: float, count: int, seed: int = 0, start: float = 0.0
) -> list[Request]:
    """A Poisson trace of code-summarization requests at ``rate`` req/s."""
    rng = np.random.default_rng(seed)
    times = poisson_arrival_times(rng, rate, count, start=start)
    return [
        Request(
            arrival_time=t,
            prompt_tokens=CODE_PROMPT.sample(rng),
            max_new_tokens=CODE_RESPONSE.sample(rng),
        )
        for t in times
    ]
