"""Event tracing: record simulation activity, export Chrome traces.

A :class:`Tracer` collects timestamped spans (engine iterations,
transfers, context switches, reclaims) and exports them in the Chrome
trace-event JSON format, viewable in ``chrome://tracing`` or Perfetto.
Engines accept an optional tracer; the overhead when absent is a single
``None`` check.

Example
-------
>>> tracer = Tracer()
>>> with tracer.span("decode", track="vllm"):  # doctest: +SKIP
...     ...
>>> tracer.export_json("trace.json")  # doctest: +SKIP
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class Span:
    """One completed activity on a track."""

    name: str
    track: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event on a track."""

    name: str
    track: str
    time: float
    args: dict = field(default_factory=dict)


#: Ordering of flow phases at equal timestamps: start, step, finish.
_FLOW_PHASE_ORDER = {"s": 0, "t": 1, "f": 2}


@dataclass(frozen=True)
class FlowEvent:
    """One step of a flow chain (Chrome ``ph: s/t/f`` events).

    Events sharing a ``flow_id`` are rendered by Perfetto as arrows
    linking the slices that enclose them — the request-scoped causal
    trace.  ``phase`` is ``"s"`` (start), ``"t"`` (step) or ``"f"``
    (finish).
    """

    name: str
    track: str
    time: float
    flow_id: int
    phase: str
    args: dict = field(default_factory=dict)


class Tracer:
    """Collects spans and instants; exports chrome://tracing JSON.

    Parameters
    ----------
    clock:
        Callable returning the current simulation time.  When ``None``
        the caller must pass explicit times to :meth:`add_span`.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.flows: list[FlowEvent] = []
        self._track_ids: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _now(self) -> float:
        if self.clock is None:
            raise RuntimeError("tracer has no clock; pass explicit times")
        return self.clock()

    def _track_id(self, track: str) -> int:
        return self._track_ids.setdefault(track, len(self._track_ids) + 1)

    # ------------------------------------------------------------------
    def add_span(
        self, name: str, track: str, start: float, end: float, **args
    ) -> Span:
        """Record a completed span with explicit times."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(name=name, track=track, start=start, end=end, args=args)
        self.spans.append(span)
        return span

    def add_instant(self, name: str, track: str, time: Optional[float] = None, **args) -> Instant:
        """Record a point event (defaults to the clock's current time)."""
        if time is None:
            time = self._now()
        instant = Instant(name=name, track=track, time=time, args=args)
        self.instants.append(instant)
        return instant

    def add_flow(
        self,
        name: str,
        track: str,
        flow_id: int,
        phase: str,
        time: Optional[float] = None,
        **args,
    ) -> FlowEvent:
        """Record one step of a flow chain (see :class:`FlowEvent`)."""
        if phase not in _FLOW_PHASE_ORDER:
            raise ValueError(f"flow phase must be s/t/f, got {phase!r}")
        if time is None:
            time = self._now()
        flow = FlowEvent(
            name=name, track=track, time=time, flow_id=flow_id, phase=phase, args=args
        )
        self.flows.append(flow)
        return flow

    @contextmanager
    def span(self, name: str, track: str, **args) -> Iterator[None]:
        """Context manager recording a span around simulated work.

        Note: only valid around code that advances the *simulation*
        clock synchronously from the caller's perspective (the body of
        an engine iteration driven by ``yield from``).

        A body that raises still gets its span, annotated with
        ``error=<exception type name>`` so faults stay visible in the
        trace; the exception propagates unchanged.
        """
        start = self._now()
        try:
            yield
        except BaseException as exc:
            self.add_span(
                name, track, start, self._now(),
                error=type(exc).__name__, **args,
            )
            raise
        else:
            self.add_span(name, track, start, self._now(), **args)

    # ------------------------------------------------------------------
    # Queries (used by tests and reports)
    # ------------------------------------------------------------------
    def spans_on(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def total_time(self, track: str, name: Optional[str] = None) -> float:
        return sum(
            s.duration
            for s in self.spans_on(track)
            if name is None or s.name == name
        )

    def utilization(self, track: str, start: float, end: float) -> float:
        """Fraction of [start, end) covered by spans on ``track``.

        Overlapping spans are merged so the result is at most 1.
        """
        if end <= start:
            raise ValueError("window end must be after start")
        intervals = sorted(
            (max(s.start, start), min(s.end, end))
            for s in self.spans_on(track)
            if s.end > start and s.start < end
        )
        covered = 0.0
        cursor = start
        for lo, hi in intervals:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        return covered / (end - start)

    def critical_path(self, flow_id: int) -> list[Span]:
        """The chain of spans a flow passed through, in causal order.

        For each flow event with ``flow_id`` (ordered by time, then
        phase ``s`` < ``t`` < ``f``), find the *smallest* span on the
        same track enclosing the event's timestamp — the innermost
        activity at that step — and chain the unique spans.  This
        reconstructs a request's journey across engine, AQUA and DMA
        tracks, the textual equivalent of Perfetto's flow arrows.
        """
        events = sorted(
            (f for f in self.flows if f.flow_id == flow_id),
            key=lambda f: (f.time, _FLOW_PHASE_ORDER[f.phase]),
        )
        path: list[Span] = []
        for event in events:
            best: Optional[Span] = None
            for span in self.spans:
                if span.track != event.track:
                    continue
                if span.start <= event.time <= span.end:
                    if best is None or span.duration < best.duration:
                        best = span
            if best is not None and (not path or path[-1] is not best):
                path.append(best)
        return path

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_events(self) -> list[dict]:
        """The trace as Chrome trace-event dicts (microsecond units)."""
        events = []
        for track, tid in sorted(self._all_tracks().items()):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for span in self.spans:
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "pid": 1,
                    "tid": self._track_id(span.track),
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "args": span.args,
                }
            )
        for instant in self.instants:
            events.append(
                {
                    "ph": "i",
                    "name": instant.name,
                    "pid": 1,
                    "tid": self._track_id(instant.track),
                    "ts": instant.time * 1e6,
                    "s": "t",
                    "args": instant.args,
                }
            )
        for flow in self.flows:
            event = {
                "ph": flow.phase,
                "name": flow.name,
                "cat": "flow",
                "id": flow.flow_id,
                "pid": 1,
                "tid": self._track_id(flow.track),
                "ts": flow.time * 1e6,
                "args": flow.args,
            }
            if flow.phase == "f":
                # Bind the finish to the enclosing slice (Perfetto
                # otherwise attaches it to the *next* slice on the track).
                event["bp"] = "e"
            events.append(event)
        return events

    def _all_tracks(self) -> dict[str, int]:
        for span in self.spans:
            self._track_id(span.track)
        for instant in self.instants:
            self._track_id(instant.track)
        for flow in self.flows:
            self._track_id(flow.track)
        return self._track_ids

    def export_json(self, path: str) -> None:
        """Write the trace to ``path`` in Chrome trace format."""
        with open(path, "w") as f:
            json.dump({"traceEvents": self.to_chrome_events()}, f)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.flows)
