"""Fault injection and graceful degradation for the AQUA control plane.

The paper evaluates AQUA on the happy path; a production deployment
(this repo's north star) must also ride out the unhappy ones.  This
package makes failure scenarios first-class experiment inputs, in the
spirit of HW/SW co-simulators like LLMServingSim (see PAPERS.md):

* :class:`FaultSchedule` — a deterministic, JSON-round-trippable list
  of fault events (what breaks, when, for how long).
* :class:`LinkDegradation` / :class:`DmaStall` / :class:`GpuFailure` —
  the three fault types, mapping to per-channel bandwidth clamps,
  frozen DMA copy engines, and lost-HBM GPU failures.
* :class:`FaultInjector` — event-loop processes that apply and clear
  faults at their scheduled times and notify the AQUA coordinator of
  health transitions (the fabric-manager health-daemon role).
* :class:`RetryPolicy` — the capped exponential backoff AQUA-LIB uses
  to ride out transient stalls.

The handling side lives with the components being hardened: transfer
health checks in :mod:`repro.hardware.dma`, retry/re-placement in
:mod:`repro.aqua`, request re-queue in :mod:`repro.serving`, and the
resilience experiment in :mod:`repro.experiments.resilience`.  See
``docs/resilience.md`` for the full model.
"""

from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    DmaStall,
    Fault,
    FaultSchedule,
    GpuFailure,
    LinkDegradation,
)

__all__ = [
    "DmaStall",
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "GpuFailure",
    "LinkDegradation",
    "RetryPolicy",
]
