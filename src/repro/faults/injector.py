"""The fault injector: applies a schedule to live hardware state.

:class:`FaultInjector` turns a :class:`~repro.faults.FaultSchedule`
into simulation processes — one per fault — that sleep until the
fault's injection time, flip the corresponding hardware health state
(:attr:`Channel.degradation <repro.hardware.interconnect.Channel.degradation>`,
:attr:`Channel.stalled <repro.hardware.interconnect.Channel.stalled>`,
:attr:`GPU.failed <repro.hardware.gpu.GPU.failed>`), and flip it back
when the fault's duration elapses.  Cancellation rides the simulation
kernel's interrupt machinery (:meth:`Process.interrupt
<repro.sim.events.Process.interrupt>`): :meth:`cancel` interrupts every
pending fault process and clears any fault currently active.

When a coordinator is attached the injector also plays the role of the
fabric manager's health daemon: it notifies the AQUA coordinator of
GPU failures/recoveries and of consumers whose NVLink fast path has
degraded below their PCIe fallback, which is what triggers coordinator
side re-placement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.faults.schedule import DmaStall, Fault, FaultSchedule, GpuFailure, LinkDegradation
from repro.sim import Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aqua.coordinator import Coordinator
    from repro.hardware.gpu import GPU
    from repro.hardware.interconnect import Channel
    from repro.hardware.server import Server
    from repro.trace import Tracer


class FaultInjector:
    """Drives a :class:`FaultSchedule` against one server's hardware.

    Parameters
    ----------
    server:
        The server whose channels and GPUs the schedule targets.
    coordinator:
        Optional AQUA coordinator to notify of health transitions
        (``/gpu_failed``, ``/gpu_recovered``, ``/link_degraded``,
        ``/link_restored``).  Without one, only hardware state flips.
    tracer:
        Optional :class:`~repro.trace.Tracer`; every apply/clear lands
        as an instant event on the ``"faults"`` track.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub; every
        apply/clear increments ``aqua_faults_total{kind, phase}``.

    Attributes
    ----------
    log:
        Chronological list of ``{"t", "event", "target"}`` dicts —
        one ``apply`` and one ``clear`` entry per injected fault.
    """

    def __init__(
        self,
        server: "Server",
        coordinator: Optional["Coordinator"] = None,
        tracer: Optional["Tracer"] = None,
        telemetry=None,
    ) -> None:
        self.server = server
        self.env = server.env
        self.coordinator = coordinator
        self.telemetry = telemetry
        if tracer is None and telemetry is not None:
            tracer = telemetry.tracer
        self.tracer = tracer
        self.log: list[dict] = []
        self._processes: list[Process] = []

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _resolve_channels(self, pattern: str) -> list["Channel"]:
        """Channels whose full name contains ``pattern`` as a substring."""
        matches = [
            ch
            for name, ch in self.server.interconnect.channels.items()
            if pattern in name
        ]
        if not matches:
            known = sorted(self.server.interconnect.channels)
            raise ValueError(f"no channel matches {pattern!r}; known: {known}")
        return matches

    def _resolve_gpu(self, name: str) -> "GPU":
        """GPU by exact name, ``gpuN`` suffix, or bare index."""
        for gpu in self.server.gpus:
            if name in (gpu.name, f"gpu{gpu.index}", str(gpu.index)):
                return gpu
        known = [gpu.name for gpu in self.server.gpus]
        raise ValueError(f"no GPU matches {name!r}; known: {known}")

    # ------------------------------------------------------------------
    # Installation and cancellation
    # ------------------------------------------------------------------
    def install(self, schedule: FaultSchedule) -> list[Process]:
        """Spawn one simulation process per fault in ``schedule``.

        Targets are resolved eagerly so a bad schedule fails at install
        time, not mid-run.  Returns the spawned processes (mostly for
        tests; the injector keeps its own list for :meth:`cancel`).
        """
        spawned = []
        for fault in schedule:
            if isinstance(fault, (LinkDegradation, DmaStall)):
                targets = self._resolve_channels(fault.channel)
            else:
                targets = [self._resolve_gpu(fault.gpu)]
            # Invalidate the targets' analytic transfer timelines for
            # the fault's whole lifetime, starting *now*: the DMA fast
            # path cannot anticipate a mid-flight health flip, so every
            # copy touching a marked channel/GPU runs on the exact
            # Resource path until the fault clears (see
            # Channel.fault_scheduled).
            for target in targets:
                target.fault_scheduled += 1
            proc = self.env.process(self._drive(fault, targets))
            spawned.append(proc)
        self._processes.extend(spawned)
        return spawned

    def cancel(self) -> None:
        """Interrupt every pending fault process, clearing active faults.

        Uses the kernel's asynchronous interrupt delivery; a process
        interrupted while a fault is active clears the fault before
        exiting, so hardware is always left healthy.
        """
        for proc in self._processes:
            if proc.is_alive:
                proc.interrupt("fault schedule cancelled")
        self._processes.clear()

    # ------------------------------------------------------------------
    # The per-fault process
    # ------------------------------------------------------------------
    def _drive(self, fault: Fault, targets: list) -> Generator:
        """Sleep, apply, sleep, clear — with interrupt-safe cleanup.

        Clearing happens on the scheduled path and on :meth:`cancel`'s
        interrupt, but *not* when the generator is torn down because the
        simulation ended mid-fault — a run truncated inside a fault
        window leaves the fault applied and the log deterministic.
        """
        applied = False
        try:
            yield self.env.timeout(fault.at)
            self._apply(fault, targets)
            applied = True
            yield self.env.timeout(fault.duration)
            self._clear(fault, targets)
            self._unmark(targets)
        except Interrupt:
            if applied:
                self._clear(fault, targets)
            self._unmark(targets)

    @staticmethod
    def _unmark(targets: list) -> None:
        """Lift the fast-path invalidation once a fault is done with.

        Runs on the scheduled clear and on :meth:`cancel`'s interrupt —
        but, like :meth:`_clear`, *not* on end-of-run truncation, which
        leaves the marker (harmlessly) set on a finished simulation.
        """
        for target in targets:
            target.fault_scheduled -= 1

    def _apply(self, fault: Fault, targets: list) -> None:
        if isinstance(fault, LinkDegradation):
            for ch in targets:
                ch.degrade(fault.factor)
            self._refresh_link_health()
        elif isinstance(fault, DmaStall):
            for ch in targets:
                ch.stall()
        else:  # GpuFailure
            for gpu in targets:
                gpu.fail()
                self._notify("/gpu_failed", {"gpu": gpu.name})
        self._record("apply", fault, targets)

    def _clear(self, fault: Fault, targets: list) -> None:
        if isinstance(fault, LinkDegradation):
            for ch in targets:
                ch.restore()
            self._refresh_link_health()
        elif isinstance(fault, DmaStall):
            for ch in targets:
                ch.unstall()
        else:  # GpuFailure
            for gpu in targets:
                gpu.recover()
                self._notify("/gpu_recovered", {"gpu": gpu.name})
        self._record("clear", fault, targets)

    # ------------------------------------------------------------------
    # Coordinator notification (the health daemon role)
    # ------------------------------------------------------------------
    def _notify(self, path: str, payload: dict) -> None:
        if self.coordinator is not None:
            self.coordinator.request("POST", path, payload)

    def _refresh_link_health(self) -> None:
        """Re-evaluate every pairing's fast path against its PCIe fallback.

        A consumer's NVLink path to its producer counts as *degraded*
        when its round-trip bottleneck bandwidth drops to or below the
        consumer's PCIe (DRAM) bandwidth — at that point offloading to
        the producer is no faster than the fallback, so the coordinator
        should evacuate to DRAM.  Restoration is symmetric.
        """
        if self.coordinator is None:
            return
        ic = self.server.interconnect
        for consumer, producer in self.coordinator.pairings.items():
            consumer_gpu = self.coordinator.devices.get(consumer)
            producer_gpu = self.coordinator.devices.get(producer)
            if consumer_gpu is None or producer_gpu is None:
                continue
            fast = min(
                ic.route(consumer_gpu, producer_gpu).bottleneck_bandwidth,
                ic.route(producer_gpu, consumer_gpu).bottleneck_bandwidth,
            )
            pcie = ic.route(consumer_gpu, self.server.dram).bottleneck_bandwidth
            if fast <= pcie:
                self._notify("/link_degraded", {"consumer": consumer})
            else:
                self._notify("/link_restored", {"consumer": consumer})

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _record(self, phase: str, fault: Fault, targets: list) -> None:
        names = [getattr(t, "name", str(t)) for t in targets]
        self.log.append(
            {"t": self.env.now, "event": f"{fault.kind}:{phase}", "target": names}
        )
        if self.telemetry is not None:
            self.telemetry.record_fault(fault.kind, phase, targets=names)
        if self.tracer is not None:
            self.tracer.add_instant(
                f"{fault.kind}:{phase}", "faults", time=self.env.now, targets=names
            )
