"""Capped exponential backoff policy for fault-tolerant transfers.

AQUA-LIB retries transient DMA failures (stalled copy engines) before
giving up: each attempt waits ``initial_delay * multiplier**k`` seconds,
capped at ``max_delay``, for at most ``max_attempts`` attempts.  The
defaults ride out multi-second stalls (the sum of the default delays is
well over 20 simulated seconds) without hammering a stalled engine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for retrying stalled transfers.

    Attributes
    ----------
    initial_delay:
        Seconds to wait before the first retry.
    multiplier:
        Growth factor applied to the delay after every failed attempt.
    max_delay:
        Ceiling on the per-attempt delay (the "capped" part).
    max_attempts:
        Total attempts (the first try included) before the error is
        re-raised to the caller.

    Examples
    --------
    >>> policy = RetryPolicy(initial_delay=0.1, multiplier=2.0, max_delay=0.5)
    >>> [round(d, 2) for d in list(policy.delays())[:5]]
    [0.1, 0.2, 0.4, 0.5, 0.5]
    """

    initial_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    max_attempts: int = 24

    def __post_init__(self) -> None:
        if self.initial_delay <= 0:
            raise ValueError(f"initial_delay must be positive, got {self.initial_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.initial_delay:
            raise ValueError("max_delay must be >= initial_delay")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delays(self):
        """Yield the backoff delay before each retry, in order.

        Yields ``max_attempts - 1`` values (no delay follows the final
        attempt).
        """
        delay = self.initial_delay
        for _ in range(self.max_attempts - 1):
            yield delay
            delay = min(delay * self.multiplier, self.max_delay)
