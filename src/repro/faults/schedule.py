"""Deterministic fault schedules: what breaks, when, and for how long.

A :class:`FaultSchedule` is an ordered list of fault events, each with
an injection time ``at`` and a ``duration`` after which the fault
clears.  Schedules round-trip through JSON so experiments are
reproducible from a ``--faults schedule.json`` file::

    [
      {"kind": "dma-stall",        "at": 20.0, "duration": 4.0,
       "channel": "nvlink:gpu1->gpu0"},
      {"kind": "link-degradation", "at": 40.0, "duration": 25.0,
       "channel": "nvlink", "factor": 0.02},
      {"kind": "gpu-failure",      "at": 90.0, "duration": 20.0,
       "gpu": "gpu1"}
    ]

Channel and GPU names are matched by substring / suffix against the
server's real device names (``server0:nvlink:gpu1->gpu0``,
``server0/gpu1``), so schedules stay topology-file-free.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Union

#: JSON ``kind`` discriminators.
KIND_LINK_DEGRADATION = "link-degradation"
KIND_DMA_STALL = "dma-stall"
KIND_GPU_FAILURE = "gpu-failure"


def _check_window(at: float, duration: float) -> None:
    if at < 0:
        raise ValueError(f"fault time must be >= 0, got {at}")
    if duration <= 0:
        raise ValueError(f"fault duration must be positive, got {duration}")


@dataclass(frozen=True)
class LinkDegradation:
    """An interconnect link runs at a fraction of its peak bandwidth.

    Matches every channel whose name contains ``channel`` as a
    substring; each match is clamped to ``factor`` of its spec
    bandwidth from ``at`` until ``at + duration``.  Transfers already
    on the wire finish at their old speed; new transfers pay the
    degraded bandwidth (see :class:`~repro.hardware.interconnect.Channel`).
    """

    at: float
    channel: str
    factor: float
    duration: float
    kind: str = KIND_LINK_DEGRADATION

    def __post_init__(self) -> None:
        _check_window(self.at, self.duration)
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")


@dataclass(frozen=True)
class DmaStall:
    """A channel's DMA copy engine freezes: new transfers are rejected.

    From ``at`` until ``at + duration`` every transfer whose route
    includes a matching channel raises
    :class:`~repro.hardware.dma.TransferStalled` at start; AQUA-LIB
    retries these with capped exponential backoff until the stall
    clears.
    """

    at: float
    channel: str
    duration: float
    kind: str = KIND_DMA_STALL

    def __post_init__(self) -> None:
        _check_window(self.at, self.duration)


@dataclass(frozen=True)
class GpuFailure:
    """A GPU drops off the fabric; its HBM contents are lost.

    From ``at`` until ``at + duration`` transfers touching the GPU
    raise :class:`~repro.hardware.dma.GpuFailedError`; the coordinator
    stops placing tensors there and consumers mark tensors parked on
    it as lost.  Recovery brings the GPU back *empty* — lost data must
    be recomputed by its owners.
    """

    at: float
    gpu: str
    duration: float
    kind: str = KIND_GPU_FAILURE

    def __post_init__(self) -> None:
        _check_window(self.at, self.duration)


Fault = Union[LinkDegradation, DmaStall, GpuFailure]

_KINDS = {
    KIND_LINK_DEGRADATION: LinkDegradation,
    KIND_DMA_STALL: DmaStall,
    KIND_GPU_FAILURE: GpuFailure,
}


class FaultSchedule:
    """An immutable, time-ordered list of fault events.

    Examples
    --------
    >>> schedule = FaultSchedule([
    ...     GpuFailure(at=90.0, gpu="gpu1", duration=20.0),
    ...     DmaStall(at=20.0, channel="nvlink", duration=4.0),
    ... ])
    >>> [f.kind for f in schedule]
    ['dma-stall', 'gpu-failure']
    >>> FaultSchedule.from_json(schedule.to_json()) == schedule
    True
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.at, f.kind))
        )

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.faults == other.faults

    def __repr__(self) -> str:
        return f"<FaultSchedule {len(self.faults)} faults>"

    @property
    def horizon(self) -> float:
        """Time at which the last fault has cleared (0.0 when empty)."""
        return max((f.at + f.duration for f in self.faults), default=0.0)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """Plain-dict form (the JSON schema above)."""
        return [asdict(f) for f in self.faults]

    def to_json(self, indent: int = 2) -> str:
        """Serialize to the ``--faults`` file format."""
        return json.dumps(self.to_dicts(), indent=indent)

    @classmethod
    def from_dicts(cls, entries: Iterable[dict]) -> "FaultSchedule":
        """Build a schedule from plain dicts, dispatching on ``kind``."""
        faults = []
        for entry in entries:
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {sorted(_KINDS)}"
                )
            faults.append(_KINDS[kind](**entry))
        return cls(faults)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse the JSON produced by :meth:`to_json`."""
        entries = json.loads(text)
        if not isinstance(entries, list):
            raise ValueError("a fault schedule JSON file must contain a list")
        return cls.from_dicts(entries)

    @classmethod
    def from_file(cls, path) -> "FaultSchedule":
        """Load a schedule from a ``--faults schedule.json`` file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
