"""Simulated tensors: sized buffers with a physical location.

A :class:`SimTensor` stands in for a ``torch.Tensor``: it has a size, a
device (a GPU, host DRAM, or ``None`` while unmaterialized), and
reserves space in its device's memory pool while resident.  It carries
no element data — only placement and size matter to the simulation.
"""

from __future__ import annotations

from itertools import count
from typing import Hashable, Optional

from repro.hardware.gpu import GPU, HostDRAM, MemoryPool

_TENSOR_IDS = count()


def _pool_of(device: Hashable) -> Optional[MemoryPool]:
    if isinstance(device, GPU):
        return device.hbm
    if isinstance(device, HostDRAM):
        return device.pool
    return None


class SimTensor:
    """A buffer of ``nbytes`` living on some device.

    Parameters
    ----------
    nbytes:
        Buffer size; must be positive.
    device:
        Initial location.  When the device has a memory pool, the
        tensor reserves its bytes there until :meth:`free` or a
        :meth:`relocate` moves it.
    tag:
        Reservation label in the device pool (for reports).
    """

    def __init__(
        self,
        nbytes: int,
        device: Optional[Hashable] = None,
        tag: str = "tensor",
    ) -> None:
        if nbytes <= 0:
            raise ValueError(f"tensor size must be positive, got {nbytes}")
        self.id = next(_TENSOR_IDS)
        self.nbytes = int(nbytes)
        self.tag = f"{tag}#{self.id}"
        self._device: Optional[Hashable] = None
        self._freed = False
        if device is not None:
            self.relocate(device)

    @property
    def device(self) -> Optional[Hashable]:
        """Where the tensor currently lives (``None`` if unmaterialized)."""
        return self._device

    @property
    def freed(self) -> bool:
        return self._freed

    def relocate(self, device: Hashable) -> None:
        """Account the tensor on a new device (releasing the old one).

        This is bookkeeping only — the actual byte movement is a DMA
        :class:`~repro.hardware.dma.Transfer` performed by the caller.
        """
        if self._freed:
            raise RuntimeError(f"cannot relocate freed tensor {self.tag}")
        new_pool = _pool_of(device)
        if new_pool is not None:
            new_pool.reserve(self.tag, self.nbytes)
        old_pool = _pool_of(self._device)
        if old_pool is not None:
            old_pool.release(self.tag)
        self._device = device

    def free(self) -> None:
        """Release the tensor's memory.  Idempotent."""
        if self._freed:
            return
        pool = _pool_of(self._device)
        if pool is not None:
            pool.release(self.tag)
        self._device = None
        self._freed = True

    def __repr__(self) -> str:
        where = getattr(self._device, "name", self._device)
        return f"<SimTensor {self.tag} {self.nbytes}B on {where}>"
