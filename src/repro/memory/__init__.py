"""GPU memory management substrate.

Serving engines need finer-grained memory management than the raw
byte-pool of a device: vLLM allocates the KV cache in fixed-size token
*blocks* (paged attention), and AQUA migrates whole tensors between
devices.  This package provides those pieces:

* :class:`SimTensor` — a named, sized buffer with a physical location.
* :class:`BlockAllocator` — fixed-size block allocation with a free list.
* :class:`PagedKVCache` — per-sequence block accounting in the style of
  vLLM's paged attention, including swapped-out (offloaded) sequences.
"""

from repro.memory.allocator import AllocationError, BlockAllocator
from repro.memory.kv_cache import PagedKVCache, SequenceState
from repro.memory.tensor import SimTensor

__all__ = [
    "AllocationError",
    "BlockAllocator",
    "PagedKVCache",
    "SequenceState",
    "SimTensor",
]
