"""Fixed-size block allocation over a device memory pool.

vLLM manages its KV cache as fixed-size blocks (paged attention); this
allocator reproduces that: a region of ``n_blocks * block_bytes`` is
reserved from the device pool up front, and sequences draw and return
whole blocks.  The free list is LIFO, which (like the real system)
keeps recently-freed blocks hot.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.gpu import MemoryPool


class AllocationError(MemoryError):
    """Raised when an allocation cannot be satisfied."""


class BlockAllocator:
    """Allocates fixed-size blocks from a pre-reserved region.

    Parameters
    ----------
    n_blocks:
        Number of blocks in the region.
    block_bytes:
        Size of each block.
    pool:
        Optional device pool to reserve the backing region from (the
        reservation is released by :meth:`destroy`).
    tag:
        Reservation label in the pool.
    """

    def __init__(
        self,
        n_blocks: int,
        block_bytes: int,
        pool: Optional[MemoryPool] = None,
        tag: str = "kv-region",
    ) -> None:
        if n_blocks < 0:
            raise ValueError(f"n_blocks must be >= 0, got {n_blocks}")
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self.n_blocks = n_blocks
        self.block_bytes = block_bytes
        self.pool = pool
        self.tag = tag
        self._free: list[int] = list(range(n_blocks - 1, -1, -1))
        self._allocated: set[int] = set()
        if pool is not None:
            pool.reserve(tag, n_blocks * block_bytes)

    # ------------------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return len(self._allocated)

    @property
    def capacity_bytes(self) -> int:
        return self.n_blocks * self.block_bytes

    def can_allocate(self, count: int) -> bool:
        return count <= len(self._free)

    def allocate(self, count: int) -> list[int]:
        """Take ``count`` blocks off the free list.

        Raises
        ------
        AllocationError
            If fewer than ``count`` blocks are free.
        """
        if count < 0:
            raise ValueError(f"negative block count {count}")
        if count > len(self._free):
            raise AllocationError(
                f"need {count} blocks, only {len(self._free)} free "
                f"of {self.n_blocks}"
            )
        taken = [self._free.pop() for _ in range(count)]
        self._allocated.update(taken)
        return taken

    def free(self, blocks: list[int]) -> None:
        """Return blocks to the free list.

        Raises
        ------
        AllocationError
            If any block is not currently allocated (double free).
        """
        for block in blocks:
            if block not in self._allocated:
                raise AllocationError(f"double free of block {block}")
        for block in blocks:
            self._allocated.remove(block)
            self._free.append(block)

    def resize(self, n_blocks: int) -> None:
        """Grow or shrink the region (AQUA donates/reclaims KV memory).

        Shrinking requires the removed blocks to be free; the backing
        pool reservation is adjusted to match.
        """
        if n_blocks < 0:
            raise ValueError(f"n_blocks must be >= 0, got {n_blocks}")
        if n_blocks == self.n_blocks:
            return
        if n_blocks > self.n_blocks:
            added = range(self.n_blocks, n_blocks)
            if self.pool is not None:
                self.pool.reserve(self.tag, (n_blocks - self.n_blocks) * self.block_bytes)
            self._free.extend(reversed(added))
            self.n_blocks = n_blocks
            return
        # Shrink: drop every block above the new boundary; all of them
        # must be free (the engine compacts/offloads first, §B.1).
        to_remove = self.n_blocks - n_blocks
        if any(b >= n_blocks for b in self._allocated):
            raise AllocationError(
                f"cannot shrink to {n_blocks} blocks: blocks above the new "
                "boundary are still allocated"
            )
        self._free = [b for b in self._free if b < n_blocks]
        if self.pool is not None:
            self.pool.release(self.tag, to_remove * self.block_bytes)
        self.n_blocks = n_blocks

    def shrink_any(self, count: int) -> int:
        """Remove up to ``count`` *free* blocks, wherever they are.

        Unlike :meth:`resize`, this does not require the high-numbered
        blocks to be free — the engine is assumed to have compacted the
        region (the paper's vLLM integration copies scattered blocks to
        a temporary location before donating, §B.1).  Returns the number
        of blocks actually removed.
        """
        if count < 0:
            raise ValueError(f"negative block count {count}")
        removed = min(count, len(self._free))
        for _ in range(removed):
            self._free.pop()
        self.n_blocks -= removed
        if self.pool is not None and removed:
            self.pool.release(self.tag, removed * self.block_bytes)
        return removed

    def grow(self, count: int) -> None:
        """Add ``count`` fresh blocks (reclaimed memory coming back)."""
        if count < 0:
            raise ValueError(f"negative block count {count}")
        if count == 0:
            return
        if self.pool is not None:
            self.pool.reserve(self.tag, count * self.block_bytes)
        start = max([*self._free, *self._allocated], default=-1) + 1
        self._free.extend(range(start, start + count))
        self.n_blocks += count

    def destroy(self) -> None:
        """Release the whole backing region."""
        if self.pool is not None:
            self.pool.release(self.tag)
        self._free.clear()
        self._allocated.clear()
        self.n_blocks = 0

    def __repr__(self) -> str:
        return (
            f"<BlockAllocator {self.used_blocks}/{self.n_blocks} used, "
            f"{self.block_bytes}B blocks>"
        )
