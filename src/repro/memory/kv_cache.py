"""Paged KV-cache accounting in the style of vLLM's paged attention.

Sequences own lists of fixed-size token blocks.  A sequence can be
*resident* (blocks on the GPU) or *swapped out* (its KV bytes live in an
offload target — host DRAM for baseline vLLM, a producer GPU's HBM for
AQUA).  The cache tracks only placement and sizes; byte movement is the
serving engine's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.memory.allocator import AllocationError, BlockAllocator
from repro.models.llm import LLMSpec


class Residency(str, Enum):
    RESIDENT = "resident"
    SWAPPED = "swapped"


@dataclass
class SequenceState:
    """KV bookkeeping for one sequence."""

    seq_id: int
    tokens: int
    blocks: list[int] = field(default_factory=list)
    residency: Residency = Residency.RESIDENT

    @property
    def is_resident(self) -> bool:
        return self.residency is Residency.RESIDENT


class PagedKVCache:
    """Block-granular KV cache for one model on one GPU.

    Parameters
    ----------
    model:
        The LLM whose KV geometry sizes the blocks.
    allocator:
        Backing block allocator (its ``block_bytes`` must equal
        ``model.kv_bytes_per_token * block_tokens``).
    block_tokens:
        Tokens per block (vLLM's default is 16).
    """

    def __init__(
        self,
        model: LLMSpec,
        allocator: BlockAllocator,
        block_tokens: int = 16,
    ) -> None:
        if block_tokens < 1:
            raise ValueError(f"block_tokens must be >= 1, got {block_tokens}")
        expected = model.kv_bytes_per_token * block_tokens
        if allocator.block_bytes != expected:
            raise ValueError(
                f"allocator block size {allocator.block_bytes} != "
                f"model block size {expected}"
            )
        self.model = model
        self.allocator = allocator
        self.block_tokens = block_tokens
        self.sequences: dict[int, SequenceState] = {}

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` tokens of KV."""
        if tokens < 0:
            raise ValueError(f"negative token count {tokens}")
        return -(-tokens // self.block_tokens)  # ceil division

    def kv_bytes(self, seq: SequenceState) -> int:
        """Exact KV bytes of a sequence (token granularity)."""
        return self.model.kv_bytes(seq.tokens)

    # ------------------------------------------------------------------
    # Sequence lifecycle
    # ------------------------------------------------------------------
    def can_admit(self, tokens: int) -> bool:
        """Whether a new sequence of ``tokens`` tokens fits right now."""
        return self.allocator.can_allocate(self.blocks_for(tokens))

    def admit(self, seq_id: int, tokens: int) -> SequenceState:
        """Create a resident sequence with ``tokens`` tokens of KV."""
        if seq_id in self.sequences:
            raise ValueError(f"sequence {seq_id} already exists")
        blocks = self.allocator.allocate(self.blocks_for(tokens))
        state = SequenceState(seq_id=seq_id, tokens=tokens, blocks=blocks)
        self.sequences[seq_id] = state
        return state

    def can_append(self, seq_id: int) -> bool:
        """Whether one more token fits (a new block may be needed)."""
        seq = self._resident(seq_id)
        if seq.tokens % self.block_tokens != 0:
            return True
        return self.allocator.can_allocate(1)

    def append_token(self, seq_id: int) -> None:
        """Grow a resident sequence by one generated token."""
        seq = self._resident(seq_id)
        if seq.tokens % self.block_tokens == 0:
            seq.blocks.extend(self.allocator.allocate(1))
        seq.tokens += 1

    def release(self, seq_id: int) -> None:
        """Finish a sequence and free its blocks (if resident)."""
        seq = self.sequences.pop(seq_id)
        if seq.is_resident:
            self.allocator.free(seq.blocks)
        seq.blocks = []

    # ------------------------------------------------------------------
    # Swapping (context switching)
    # ------------------------------------------------------------------
    def swap_out(self, seq_id: int) -> int:
        """Mark a sequence's KV as offloaded; returns bytes to move.

        The freed blocks become available for other sequences; the
        engine is responsible for actually copying the bytes to the
        offload target before reusing them.
        """
        seq = self._resident(seq_id)
        self.allocator.free(seq.blocks)
        seq.blocks = []
        seq.residency = Residency.SWAPPED
        return self.kv_bytes(seq)

    def can_swap_in(self, seq_id: int) -> bool:
        seq = self._swapped(seq_id)
        return self.allocator.can_allocate(self.blocks_for(seq.tokens))

    def swap_in(self, seq_id: int) -> int:
        """Bring a swapped sequence back; returns bytes to move."""
        seq = self._swapped(seq_id)
        seq.blocks = self.allocator.allocate(self.blocks_for(seq.tokens))
        seq.residency = Residency.RESIDENT
        return self.kv_bytes(seq)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_tokens(self) -> int:
        return sum(s.tokens for s in self.sequences.values() if s.is_resident)

    @property
    def swapped_sequences(self) -> list[int]:
        return [s.seq_id for s in self.sequences.values() if not s.is_resident]

    @property
    def resident_sequences(self) -> list[int]:
        return [s.seq_id for s in self.sequences.values() if s.is_resident]

    def scatter_pieces(self, seq_id: int) -> int:
        """Number of distinct buffers holding a sequence's KV.

        vLLM stores per-layer K and V tensors, each fragmented across
        blocks — so a naive copy moves ``2 * layers * blocks`` small
        buffers.  AQUA's gather kernel coalesces them into one (§5).
        """
        seq = self.sequences[seq_id]
        blocks = max(1, self.blocks_for(seq.tokens))
        return 2 * self.model.n_layers * blocks

    # ------------------------------------------------------------------
    def _resident(self, seq_id: int) -> SequenceState:
        seq = self.sequences[seq_id]
        if not seq.is_resident:
            raise AllocationError(f"sequence {seq_id} is swapped out")
        return seq

    def _swapped(self, seq_id: int) -> SequenceState:
        seq = self.sequences[seq_id]
        if seq.is_resident:
            raise AllocationError(f"sequence {seq_id} is resident")
        return seq

    def __repr__(self) -> str:
        return (
            f"<PagedKVCache seqs={len(self.sequences)} "
            f"blocks={self.allocator.used_blocks}/{self.allocator.n_blocks}>"
        )
