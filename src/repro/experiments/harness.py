"""Rig builders: wire servers, engines and AQUA for the experiments.

The standard rig is one 2-GPU server with a memory-*consumer* LLM
engine on GPU 0 and a memory-*producer* engine on GPU 1 — the unit the
paper's evaluation assembles clusters from.  The 8-GPU NVSwitch rig
generalizes it to four consumer/producer pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.aqua import AquaLib, BatchInformer, Coordinator, LlmInformer
from repro.audit import ConservationAuditor
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.models import get_model
from repro.models.audio import AudioModelSpec
from repro.models.diffusion import DiffusionSpec
from repro.models.llm import LLMSpec
from repro.serving import BatchEngine, CFSEngine, FlexGenEngine, LoRACache, VLLMEngine
from repro.sim import Environment
from repro.telemetry import Telemetry, active_capture_tracer, active_observability

ProducerSpec = Union[DiffusionSpec, AudioModelSpec, LLMSpec]


@dataclass
class ConsumerRig:
    """One consumer/producer pair on a 2-GPU server (or a slice of an
    8-GPU server)."""

    env: Environment
    server: Server
    coordinator: Coordinator
    consumer_engine: object
    consumer_lib: Optional[AquaLib] = None
    producer_engine: Optional[object] = None
    producer_lib: Optional[AquaLib] = None
    lora_cache: Optional[LoRACache] = None
    auditor: Optional[ConservationAuditor] = None
    telemetry: Optional[Telemetry] = None
    extras: dict = field(default_factory=dict)

    def start(self) -> "ConsumerRig":
        if self.producer_engine is not None:
            self.producer_engine.start()
        self.consumer_engine.start()
        return self

    def warm_up(self, seconds: float = 1.0) -> "ConsumerRig":
        """Let producers donate before the workload starts."""
        self.env.run(until=self.env.now + seconds)
        return self


def _producer_informer(model: ProducerSpec):
    if isinstance(model, LLMSpec):
        return LlmInformer()
    return BatchInformer()


def _make_producer(
    server, gpu, model: ProducerSpec, coordinator, name: str, telemetry=None,
    decode_coarsen: int = 1,
):
    lib = AquaLib(
        gpu, server, coordinator, informer=_producer_informer(model), telemetry=telemetry
    )
    if isinstance(model, LLMSpec):
        engine = VLLMEngine(
            gpu, server, model, aqua_lib=lib, inform_every=4, name=name,
            telemetry=telemetry, decode_coarsen=decode_coarsen,
        )
    else:
        engine = BatchEngine(
            gpu, server, model, aqua_lib=lib, name=name,
            decode_coarsen=decode_coarsen,
        )
    return engine, lib


def build_consumer_rig(
    consumer_kind: str,
    consumer_model: Union[str, LLMSpec],
    producer_model: Union[str, ProducerSpec, None] = None,
    use_aqua: bool = True,
    env: Optional[Environment] = None,
    server: Optional[Server] = None,
    consumer_gpu: int = 0,
    producer_gpu: int = 1,
    coordinator: Optional[Coordinator] = None,
    lora_capacity_bytes: Optional[int] = None,
    consumer_kwargs: Optional[dict] = None,
    name_prefix: str = "",
    audit: bool = False,
    audit_interval: float = 1.0,
    telemetry: bool = False,
    scrape_interval: Optional[float] = None,
    slo_policy=None,
    postmortem_dir: Optional[str] = None,
    scheduler: str = "heap",
    decode_coarsen: int = 1,
    transfer_fastpath: bool = False,
) -> ConsumerRig:
    """Build a consumer/producer pair.

    Parameters
    ----------
    consumer_kind:
        ``"vllm"`` (batching baseline), ``"cfs"`` (fair scheduler) or
        ``"flexgen"`` (long-prompt streaming engine).
    consumer_model, producer_model:
        Model presets or registry names.  ``producer_model=None`` builds
        a consumer-only rig (the DRAM-offload baselines).
    use_aqua:
        Give the consumer an AQUA-LIB and pair it with the producer.
        ``False`` reproduces the DRAM baselines (vLLM+CFS, stock
        FlexGen).
    lora_capacity_bytes:
        When set, attach a LoRA cache (AQUA-backed iff ``use_aqua``).
    audit:
        Attach a :class:`~repro.audit.ConservationAuditor` to the rig's
        server and coordinator and checkpoint every ``audit_interval``
        simulated seconds.  The auditor is available as ``rig.auditor``;
        call ``rig.auditor.check()`` for a final checkpoint and
        ``rig.auditor.report()`` for the outcome.
    telemetry:
        Build a :class:`~repro.telemetry.Telemetry` hub and wire it into
        the server (DMA hooks + pool/link gauges), coordinator, engines
        and AQUA-LIB instances.  Available as ``rig.telemetry``; see
        ``docs/observability.md``.  Off by default — a disabled rig has
        bit-identical behaviour (audit digests are unchanged).
    scrape_interval:
        When set (and ``telemetry`` is on), attach the time-resolved
        observability layer — metric scraper, optional SLO tracker,
        flight recorder — via
        :meth:`~repro.telemetry.Telemetry.attach_observability`.
        ``None`` defers to an ambient
        :func:`~repro.telemetry.capture_observability` spec, if one is
        active.  The layer is observation-only: audit digests are
        identical with it on or off.
    slo_policy:
        Optional :class:`~repro.telemetry.SLOPolicy` evaluated at each
        scrape tick (requires ``scrape_interval`` or an ambient spec).
    postmortem_dir:
        Directory for flight-recorder post-mortem bundles.
    scheduler:
        Kernel schedule backend for the rig's :class:`Environment`
        (``"heap"`` default, ``"calendar"`` for high event density; see
        :mod:`repro.sim.schedulers`).  Ignored when an existing ``env``
        is passed in.
    decode_coarsen:
        Time-warp decode-coarsening window forwarded to the consumer
        engine (and a BatchEngine producer).  Default 1 keeps the exact
        per-token paths; see ``docs/performance.md`` for the fidelity
        trade-offs.
    transfer_fastpath:
        Enable the analytic channel-timeline fast path for the rig's
        DMA transfers (see ``docs/performance.md``).  Applied to the
        rig's server — including one passed in via ``server`` — and
        semantics-identical to the default Resource path (audit digests
        are unchanged either way).
    """
    if consumer_kind not in ("vllm", "cfs", "flexgen"):
        raise ValueError(f"unknown consumer kind {consumer_kind!r}")
    if isinstance(consumer_model, str):
        consumer_model = get_model(consumer_model)
    if isinstance(producer_model, str):
        producer_model = get_model(producer_model)

    if env is None:
        env = Environment(scheduler=scheduler)
    if server is None:
        n_gpus = max(consumer_gpu, producer_gpu) + 1 if producer_model else consumer_gpu + 1
        server = Server(
            env, n_gpus=max(2, n_gpus), topology="p2p",
            transfer_fastpath=transfer_fastpath,
        )
    elif transfer_fastpath:
        server.interconnect.transfer_fastpath = True
    coordinator = coordinator or Coordinator()
    kwargs = dict(consumer_kwargs or {})
    if decode_coarsen != 1:
        kwargs.setdefault("decode_coarsen", decode_coarsen)

    # Explicit observability settings win; otherwise an ambient
    # capture_observability() spec (the CLI's --scrape-interval) applies
    # to every rig built inside it — enabling telemetry if the caller
    # didn't ask for it, which is safe because the whole layer is
    # observation-only (audit digests are unchanged either way).
    ambient = active_observability()
    if scrape_interval is None and ambient is not None:
        scrape_interval = ambient["scrape_interval"]
        slo_policy = slo_policy or ambient["slo_policy"]
        postmortem_dir = postmortem_dir or ambient["postmortem_dir"]

    tm = None
    if telemetry or scrape_interval is not None:
        tm = Telemetry(env)
        tm.attach_server(server)
        coordinator.telemetry = tm
        if scrape_interval is not None:
            tm.attach_observability(
                scrape_interval=scrape_interval,
                slo_policy=slo_policy,
                postmortem_dir=postmortem_dir,
            )
            if ambient is not None:
                ambient["hubs"].append(tm)

    consumer_lib = None
    if use_aqua or consumer_kind == "flexgen":
        # FlexGen always goes through AQUA-LIB; without a producer the
        # library falls back to DRAM, which *is* the FlexGen baseline.
        consumer_lib = AquaLib(
            server.gpus[consumer_gpu],
            server,
            coordinator,
            gather_enabled=use_aqua,
            telemetry=tm,
        )

    producer_engine = producer_lib = None
    if producer_model is not None:
        producer_engine, producer_lib = _make_producer(
            server,
            server.gpus[producer_gpu],
            producer_model,
            coordinator,
            name=f"{name_prefix}producer-{producer_model.name}",
            telemetry=tm,
            decode_coarsen=decode_coarsen,
        )
        if use_aqua and consumer_lib is not None:
            coordinator.pair(consumer_lib.name, producer_lib.name)

    lora_cache = None
    if lora_capacity_bytes is not None:
        lora_cache = LoRACache(
            server.gpus[consumer_gpu],
            server,
            capacity_bytes=lora_capacity_bytes,
            aqua_lib=consumer_lib if use_aqua else None,
            whole_copy=use_aqua,
            name=f"{name_prefix}lora-cache",
        )

    gpu = server.gpus[consumer_gpu]
    name = f"{name_prefix}{consumer_kind}-{consumer_model.name}"
    if consumer_kind == "vllm":
        consumer_engine = VLLMEngine(
            gpu, server, consumer_model, lora_cache=lora_cache, name=name,
            telemetry=tm, **kwargs
        )
    elif consumer_kind == "cfs":
        consumer_engine = CFSEngine(
            gpu,
            server,
            consumer_model,
            use_aqua=use_aqua,
            aqua_lib=consumer_lib if use_aqua else None,
            lora_cache=lora_cache,
            name=name,
            telemetry=tm,
            **kwargs,
        )
    else:  # flexgen
        kwargs.setdefault("workspace_tokens", 8000)
        consumer_engine = FlexGenEngine(
            gpu, server, consumer_model, aqua_lib=consumer_lib, name=name,
            telemetry=tm, **kwargs
        )

    # An ambient --trace capture (repro.telemetry.capture_trace) picks up
    # any engine/lib built without its own tracer, so every CLI command
    # can export a trace without per-experiment plumbing.
    capture = active_capture_tracer()
    if capture is not None:
        for traced in (consumer_engine, producer_engine, consumer_lib, producer_lib):
            # BatchEngine producers have no tracer attribute — skip them.
            if traced is not None and getattr(traced, "tracer", False) is None:
                traced.tracer = capture

    auditor = None
    if audit:
        auditor = ConservationAuditor(env)
        auditor.attach_server(server)
        auditor.attach_coordinator(coordinator)
        auditor.watch(interval=audit_interval)

    return ConsumerRig(
        env=env,
        server=server,
        coordinator=coordinator,
        consumer_engine=consumer_engine,
        consumer_lib=consumer_lib,
        producer_engine=producer_engine,
        producer_lib=producer_lib,
        lora_cache=lora_cache,
        auditor=auditor,
        telemetry=tm,
    )


def drain(env: Environment, requests, timeout: float = 3600.0, step: float = 1.0) -> float:
    """Run the simulation until every request finished (or ``timeout``).

    Returns the completion time.
    """
    deadline = env.now + timeout
    while env.now < deadline:
        if all(r.done for r in requests):
            return env.now
        env.run(until=min(deadline, env.now + step))
    return env.now


#: Default LoRA cache sizing used by §6: room for 10 of the 320 MB adapters.
DEFAULT_LORA_CACHE_BYTES = 10 * 320 * 10**6

#: §7 uses an explicit 10 GB reservation.
FIG12_LORA_CACHE_BYTES = 10 * GiB
