"""Observability showcase: one telemetered run of the offloading rig.

This experiment exists to exercise the whole :mod:`repro.telemetry`
stack on a small but representative workload — the Figure 7 rig (a
FlexGen long-prompt consumer offloading its context to an LLM producer
over NVLink) plus light interactive traffic on the producer, and
optionally one short DMA stall so the fault metrics are non-empty.

It returns everything the ``aqua-repro observe`` CLI command exports:

``telemetry``
    The live :class:`~repro.telemetry.Telemetry` hub (tracer included).
``report``
    The latency-attribution report (see ``docs/observability.md``).
``prometheus``
    Metrics in Prometheus text exposition format.
``metrics``
    The same registry as a JSON-friendly dict.
``fault_log``
    The injector's apply/clear log (empty when ``faults=False``).

With ``scrape_interval`` set it also attaches the time-resolved layer
(scraper + SLO tracker + flight recorder) and returns its exports —
``observability`` (scrape store, SLO report, recorder dump) and
``dashboard_data`` (the input :func:`repro.telemetry.render_dashboard`
takes).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import build_consumer_rig
from repro.faults import DmaStall, FaultInjector, FaultSchedule
from repro.models import LLAMA2_13B, OPT_30B
from repro.telemetry.dashboard import dashboard_data
from repro.telemetry.slo import default_slo_policy
from repro.workloads.arrivals import submit_all
from repro.workloads.longprompt import long_prompt_requests
from repro.workloads.sharegpt import sharegpt_requests


def observe_experiment(
    duration: float = 45.0,
    faults: bool = True,
    workload_start: float = 3.0,
    max_new_tokens: int = 60,
    scrape_interval: Optional[float] = None,
    slo_policy=None,
    postmortem_dir: Optional[str] = None,
) -> dict:
    """One fully telemetered run of the FlexGen/NVLink offloading rig.

    Parameters
    ----------
    duration:
        Simulated seconds to run.
    faults:
        Inject a short (2 s) DMA stall on the fetch link at t=12 so the
        fault/retry metric families have samples.  ``False`` gives a
        clean run.
    workload_start:
        Arrival time of the long-prompt request (the producer donates
        its spare memory first).
    max_new_tokens:
        Decode budget of the long-prompt request — bounded, so the
        request *finishes* and its latency attribution is complete.
    scrape_interval:
        When set, enable the time-resolved observability layer at this
        cadence (simulated seconds) with the default two-tenant SLO
        policy unless ``slo_policy`` overrides it.
    postmortem_dir:
        Directory for flight-recorder post-mortem bundles.
    """
    if scrape_interval is not None and slo_policy is None:
        slo_policy = default_slo_policy()
    rig = build_consumer_rig(
        "flexgen",
        OPT_30B,
        producer_model=LLAMA2_13B,
        use_aqua=True,
        telemetry=True,
        scrape_interval=scrape_interval,
        slo_policy=slo_policy,
        postmortem_dir=postmortem_dir,
    )
    tm = rig.telemetry
    env = rig.env

    fault_log: list[dict] = []
    if faults:
        injector = FaultInjector(rig.server, coordinator=rig.coordinator, telemetry=tm)
        injector.install(
            FaultSchedule([DmaStall(at=12.0, channel="nvlink:gpu1->gpu0", duration=2.0)])
        )
        fault_log = injector.log

    rig.start()

    consumer_requests = long_prompt_requests(
        start=workload_start, max_new_tokens=max_new_tokens
    )
    submit_all(env, rig.consumer_engine, consumer_requests)

    producer_requests = sharegpt_requests(rate=1.0, count=10, start=workload_start)
    submit_all(env, rig.producer_engine, producer_requests)

    env.run(until=duration)

    result = {
        "telemetry": tm,
        "report": tm.attribution_report(),
        "prometheus": tm.prometheus_text(),
        "metrics": tm.metrics_dict(),
        "fault_log": fault_log,
        "consumer_requests": consumer_requests,
        "producer_requests": producer_requests,
        "tokens_total": rig.consumer_engine.metrics.tokens_generated,
    }
    if tm.scraper is not None:
        result["observability"] = tm.observability_report()
        result["dashboard_data"] = dashboard_data(
            tm, title="Aqua observe run", duration=duration
        )
    return result
