"""Parallel experiment fan-out with a content-addressed run cache.

Every sweep point, figure cell, resilience run and bench repeat is an
independent, sealed, deterministic simulation — which makes the
experiment layer embarrassingly parallel and perfectly memoisable.
This module provides both halves:

* **Fan-out** — :func:`run_specs` executes a list of :class:`RunSpec`
  tasks across CPU cores via ``concurrent.futures.ProcessPoolExecutor``
  and streams progress lines as futures complete.  ``jobs=1`` runs the
  tasks inline in the calling process, preserving the serial path
  exactly (no executor, no pickling).
* **Memoisation** — :class:`RunCache` is a content-addressed on-disk
  cache keyed on a digest of *(task callable path, canonicalised
  kwargs, seed, code fingerprint of the ``repro`` package)*.  Re-running
  ``aqua-repro all`` after an unrelated edit skips completed cells;
  editing any file under ``src/repro`` invalidates every entry (the
  blunt-but-sound rule: results may only be replayed against the exact
  code that produced them).

Determinism argument
--------------------
A task is a module-level callable plus JSON-canonicalisable kwargs plus
an optional integer seed.  Each simulation builds its own
:class:`~repro.sim.Environment` and derives all randomness from the
seed, so its result is a pure function of the spec — independent of
wall-clock time, host, process, and of *which other tasks run
concurrently*.  Parallel and serial executions therefore produce
byte-identical outputs, which ``tests/test_determinism_golden.py``
enforces on real experiment subsets.

Workers are spawn-safe by construction: the task travels as a
``"module:callable"`` string plus plain-data kwargs, and the worker
(:func:`_execute`) is itself a module-level function, so the pool works
under ``fork``, ``forkserver`` and ``spawn`` start methods alike.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".aqua-cache"

#: Version salt folded into every cache key and derived seed; bump it
#: to invalidate all entries after a payload-format change.
_SALT = "aqua-repro-pool/v1"

#: On-disk payload schema marker (checked on load; mismatch = miss).
_PAYLOAD_SCHEMA = "aqua-repro-cache/v1"


def default_jobs() -> int:
    """The ``--jobs`` default: one worker per available CPU."""
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Task abstraction
# ---------------------------------------------------------------------------
@dataclass
class RunSpec:
    """One independent simulation task.

    Parameters
    ----------
    task:
        ``"module:callable"`` path of a *module-level* callable — the
        spec must survive pickling into a spawn-started worker, so
        lambdas, closures and methods are rejected at resolve time.
    kwargs:
        Keyword arguments for the callable.  Must be JSON-canonicalisable
        (plain dicts/lists/strings/numbers/bools/None) so the cache key
        is well defined; pass model presets by registry *name* and
        resolve them inside the task.
    seed:
        Optional integer seed, passed to the callable as ``seed=``.
        Use :func:`derive_seed` to derive distinct deterministic seeds
        for families of related cells.
    label:
        Display name for progress lines (defaults to the callable name).
    """

    task: str
    kwargs: dict = field(default_factory=dict)
    seed: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if ":" not in self.task:
            raise ValueError(
                f"task must be a 'module:callable' path, got {self.task!r}"
            )
        canonical_kwargs(self.kwargs)  # raises TypeError early if not JSON-able
        if self.label is None:
            self.label = self.task.rsplit(":", 1)[1].lstrip("_")


@dataclass
class RunResult:
    """Outcome of one task: its value, cost, and provenance."""

    spec: RunSpec
    value: object
    seconds: float  #: worker-side execution wall time (the *original* run's, when cached)
    cached: bool = False


def canonical_kwargs(kwargs: dict) -> str:
    """Canonical JSON form of a kwargs dict (sorted keys, no spaces).

    Raises ``TypeError`` when a value is not JSON-serialisable — specs
    must carry plain data so their cache keys are stable.
    """
    return json.dumps(kwargs, sort_keys=True, separators=(",", ":"))


def resolve_task(path: str) -> Callable:
    """Import and return the module-level callable named by ``path``."""
    module_name, _, attr = path.partition(":")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError:
        raise AttributeError(f"{module_name} has no callable {attr!r}") from None
    if not callable(fn):
        raise TypeError(f"{path} is not callable")
    return fn


def derive_seed(*parts) -> int:
    """Deterministic 32-bit seed from arbitrary labelling parts.

    ``derive_seed("runall_parallel", 3)`` is stable across processes,
    platforms and Python versions (it hashes the ``repr`` of each part),
    so per-cell seeds never depend on submission order.
    """
    h = hashlib.sha256(_SALT.encode())
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\0")
    return int.from_bytes(h.digest()[:4], "big")


# ---------------------------------------------------------------------------
# Code fingerprint + content-addressed cache
# ---------------------------------------------------------------------------
_fingerprint_cache: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every ``*.py`` file of the installed ``repro`` package.

    Any source change — even one that provably cannot affect a result —
    invalidates the cache.  That is deliberate: the cache must never be
    the reason a stale number survives a code change, and recomputing a
    cell is cheap compared to debugging one.
    """
    global _fingerprint_cache
    if _fingerprint_cache is not None and not refresh:
        return _fingerprint_cache
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256(b"aqua-repro-fingerprint/v1")
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    _fingerprint_cache = h.hexdigest()
    return _fingerprint_cache


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}


class RunCache:
    """Content-addressed on-disk cache of :class:`RunSpec` results.

    Entries live under ``cache_dir`` as ``<key>.pkl`` where ``key`` is
    :meth:`key`'s digest; payloads are pickles of a small dict carrying
    the value and the original run's wall seconds.  Every failure mode
    on the read side — missing file, truncated pickle, wrong schema,
    key mismatch — degrades to a miss and a re-run, never a crash; the
    write side is atomic (temp file + rename) and best-effort.
    """

    def __init__(
        self,
        cache_dir: str = DEFAULT_CACHE_DIR,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.dir = Path(cache_dir)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()

    def key(self, spec: RunSpec) -> str:
        """The content address: digest of task, kwargs, seed and code."""
        h = hashlib.sha256(_SALT.encode())
        for piece in (
            spec.task,
            canonical_kwargs(spec.kwargs),
            repr(spec.seed),
            self.fingerprint,
        ):
            h.update(piece.encode())
            h.update(b"\0")
        return h.hexdigest()

    def path(self, spec: RunSpec) -> Path:
        return self.dir / f"{self.key(spec)}.pkl"

    def load(self, spec: RunSpec) -> Optional[RunResult]:
        """Return the cached :class:`RunResult` or ``None`` (a miss).

        Corrupted or foreign entries are tolerated: any exception while
        reading or validating the payload counts as a miss.
        """
        path = self.path(spec)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload["schema"] != _PAYLOAD_SCHEMA:
                raise ValueError(f"unknown payload schema {payload['schema']!r}")
            if payload["key"] != self.key(spec):
                raise ValueError("cache entry key does not match its address")
            result = RunResult(
                spec=spec,
                value=payload["value"],
                seconds=float(payload["seconds"]),
                cached=True,
            )
        except Exception:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, spec: RunSpec, value: object, seconds: float) -> None:
        """Persist a result (atomic, best-effort: IO errors are ignored)."""
        payload = {
            "schema": _PAYLOAD_SCHEMA,
            "key": self.key(spec),
            "task": spec.task,
            "kwargs": canonical_kwargs(spec.kwargs),
            "seed": spec.seed,
            "seconds": seconds,
            "value": value,
        }
        path = self.path(spec)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Execution engine
# ---------------------------------------------------------------------------
def _execute(task: str, kwargs: dict, seed: Optional[int]) -> tuple[object, float]:
    """Worker body: resolve the callable, run it, time it.

    Module-level (and fed only plain data) so it is valid under every
    multiprocessing start method, including ``spawn``.
    """
    fn = resolve_task(task)
    call_kwargs = dict(kwargs)
    if seed is not None:
        call_kwargs["seed"] = seed
    started = time.perf_counter()
    value = fn(**call_kwargs)
    return value, time.perf_counter() - started


def _mp_context():
    """Prefer ``fork`` (cheap workers); fall back to ``spawn``.

    Honour ``AQUA_POOL_START_METHOD`` so CI can force ``spawn`` and
    prove the workers really are spawn-safe.
    """
    import multiprocessing

    method = os.environ.get("AQUA_POOL_START_METHOD")
    if method is None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(method)


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> list[RunResult]:
    """Run every spec; return results in *submission order*.

    ``jobs=None`` means :func:`default_jobs`; ``jobs=1`` executes the
    misses inline in this process (today's serial path, exactly);
    ``jobs>1`` fans them out over a process pool, streaming one
    progress line per completed future.  With a ``cache``, hits are
    returned without running anything and misses are stored after
    completion (in the parent process — workers never touch the disk).

    A failing task raises its exception in the caller, like the serial
    path always has.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    say = progress if progress is not None else (lambda line: None)
    results: list[Optional[RunResult]] = [None] * len(specs)

    pending: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.load(spec)
            if hit is not None:
                results[i] = hit
                say(f"cached {spec.label} (saved {hit.seconds:.2f}s)")
                continue
        pending.append(i)

    if jobs == 1 or len(pending) <= 1:
        for i in pending:
            spec = specs[i]
            say(f"running {spec.label}...")
            value, seconds = _execute(spec.task, spec.kwargs, spec.seed)
            if cache is not None:
                cache.store(spec, value, seconds)
            results[i] = RunResult(spec=spec, value=value, seconds=seconds)
        return results  # type: ignore[return-value]

    workers = min(jobs, len(pending))
    done = 0
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        futures = {}
        for i in pending:
            spec = specs[i]
            say(f"running {spec.label}...")
            futures[pool.submit(_execute, spec.task, dict(spec.kwargs), spec.seed)] = i
        try:
            for future in as_completed(futures):
                i = futures[future]
                spec = specs[i]
                value, seconds = future.result()
                if cache is not None:
                    cache.store(spec, value, seconds)
                results[i] = RunResult(spec=spec, value=value, seconds=seconds)
                done += 1
                say(
                    f"finished {spec.label} in {seconds:.2f}s "
                    f"[{done}/{len(pending)}]"
                )
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    return results  # type: ignore[return-value]
