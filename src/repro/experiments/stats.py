"""Replication statistics: run experiments over seeds, report spread.

The paper reports single runs; a simulation can afford replicates.
These helpers run an experiment function across seeds and summarize
each metric as mean +/- standard deviation, so the benchmark assertions
can target the mean rather than one lucky draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class Spread:
    """Mean and sample standard deviation of one metric."""

    mean: float
    std: float
    n: int

    @property
    def stderr(self) -> float:
        return self.std / math.sqrt(self.n) if self.n > 0 else float("nan")

    def __str__(self) -> str:
        return f"{self.mean:.3g} +/- {self.std:.2g} (n={self.n})"


def mean_std(values: Sequence[float]) -> Spread:
    """Sample mean and standard deviation (ddof=1).

    Raises
    ------
    ValueError
        On an empty input.
    """
    if not values:
        raise ValueError("mean_std of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Spread(mean=mean, std=0.0, n=1)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Spread(mean=mean, std=math.sqrt(var), n=n)


def replicate(
    experiment: Callable[[int], dict], seeds: Sequence[int]
) -> list[dict]:
    """Run ``experiment(seed)`` for every seed and collect the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [experiment(seed) for seed in seeds]


def summarize_replicates(
    results: Sequence[dict], keys: Sequence[str]
) -> dict[str, Spread]:
    """Per-key spread across replicate result dicts.

    Missing keys in any replicate raise, to catch silently divergent
    runs.
    """
    out = {}
    for key in keys:
        values = []
        for i, result in enumerate(results):
            if key not in result:
                raise KeyError(f"replicate {i} is missing metric {key!r}")
            values.append(float(result[key]))
        out[key] = mean_std(values)
    return out


def coefficient_of_variation(spread: Spread) -> float:
    """std/mean — a scale-free stability measure."""
    if spread.mean == 0:
        return float("inf") if spread.std else 0.0
    return abs(spread.std / spread.mean)
