"""Parameter sweeps over the scheduler comparison.

The paper evaluates two request rates (2 and 5 req/s); this module
generalizes that to a sweep, exposing where the trade-offs cross over:
at low rates all schedulers look alike, in the mid-range CFS's TTFT win
appears while its DRAM variant pays the largest RCT penalty, and at
saturation every scheduler's queue grows without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.figures import run_scheduler_comparison
from repro.experiments.pool import RunSpec, run_specs


@dataclass
class SweepPoint:
    """Scheduler comparison at one request rate."""

    rate: float
    summaries: dict[str, dict] = field(default_factory=dict)

    def metric(self, system: str, key: str) -> float:
        """A summary metric, or NaN when the system or key is absent.

        Missing data is NaN in both directions — an unknown system
        label behaves exactly like an unknown metric key, so partial
        sweeps tabulate instead of raising.
        """
        return self.summaries.get(system, {}).get(key, float("nan"))

    def ttft_gain(self, system: str = "aqua") -> float:
        """vLLM TTFT p95 over the system's TTFT p95 (bigger = better)."""
        return self.metric("vllm", "ttft_p95") / self.metric(system, "ttft_p95")

    def rct_penalty(self, system: str) -> float:
        """System RCT mean over vLLM's (1.0 = free fairness)."""
        return self.metric(system, "rct_mean") / self.metric("vllm", "rct_mean")


def _sweep_cell(rate: float, count: int, seed: int, **kwargs) -> dict:
    """One sweep point's summaries (module-level: a pool-safe task)."""
    systems = run_scheduler_comparison(rate=rate, count=count, seed=seed, **kwargs)
    return {label: data["summary"] for label, data in systems.items()}


def sweep_request_rate(
    rates: Sequence[float] = (1.0, 2.0, 4.0, 6.0),
    count: int = 40,
    seed: int = 0,
    jobs: Optional[int] = 1,
    **kwargs,
) -> list[SweepPoint]:
    """Run the vLLM / CFS-DRAM / AQUA comparison across request rates.

    Each rate point is an independent simulation, so ``jobs > 1`` fans
    the points out over a process pool; results are rate-ordered and
    byte-identical to a serial run either way (kwargs must stay
    JSON-serialisable — pass model presets by registry name).
    """
    specs = [
        RunSpec(
            task=f"{__name__}:_sweep_cell",
            kwargs={"rate": rate, "count": count, "seed": seed, **kwargs},
            label=f"rate={rate:g}",
        )
        for rate in rates
    ]
    results = run_specs(specs, jobs=jobs)
    return [
        SweepPoint(rate=rate, summaries=result.value)
        for rate, result in zip(rates, results)
    ]


def sweep_rows(points: Sequence[SweepPoint]) -> list[list]:
    """Tabular view of a sweep (for reports and the CLI)."""
    rows = []
    for p in points:
        rows.append(
            [
                p.rate,
                p.metric("vllm", "ttft_p95"),
                p.metric("cfs-dram", "ttft_p95"),
                p.metric("aqua", "ttft_p95"),
                p.rct_penalty("cfs-dram"),
                p.rct_penalty("aqua"),
            ]
        )
    return rows
