"""Experiment harness: rigs, figure reproductions and reports.

Every table and figure of the paper's evaluation has a function in
:mod:`repro.experiments.figures` that builds the corresponding rig
(server + engines + AQUA), runs the workload, and returns the series
the paper plots.  The benchmark suite under ``benchmarks/`` calls these
functions and prints the rows; ``EXPERIMENTS.md`` records the outcomes.
"""

from repro.experiments.harness import ConsumerRig, build_consumer_rig, drain
from repro.experiments.observe import observe_experiment
from repro.experiments.pool import (
    RunCache,
    RunResult,
    RunSpec,
    code_fingerprint,
    default_jobs,
    derive_seed,
    run_specs,
)
from repro.experiments.report import format_table, summarize_requests
from repro.experiments.resilience import default_fault_schedule, resilience_experiment

__all__ = [
    "ConsumerRig",
    "RunCache",
    "RunResult",
    "RunSpec",
    "build_consumer_rig",
    "code_fingerprint",
    "default_fault_schedule",
    "default_jobs",
    "derive_seed",
    "drain",
    "format_table",
    "observe_experiment",
    "resilience_experiment",
    "run_specs",
    "summarize_requests",
]
