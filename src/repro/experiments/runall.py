"""Run every paper experiment and persist the results.

``aqua-repro all --out results/`` produces one JSON file per figure
plus a markdown summary — the machine-readable companion to
EXPERIMENTS.md, regenerable after any change to the simulator.

Every experiment is an independent sealed simulation, so the set fans
out over CPU cores (``--jobs N``) and memoises through the
content-addressed run cache (``.aqua-cache/`` by default from the CLI;
see :mod:`repro.experiments.pool` and ``docs/parallelism.md``).  The
``manifest.json`` written alongside the results records, per
experiment, the output path, wall seconds, whether it was a cache hit,
and the SHA-256 digest of the result file — the digest is what the
CI ``parallel-smoke`` job compares across serial, parallel and
warm-cache runs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Optional

from repro.experiments import figures as F
from repro.experiments.pool import RunCache, RunSpec, run_specs
from repro.serving.metrics import percentile


def _fig01() -> dict:
    result = F.fig01_motivation(rate=5.0, count=60)
    return {
        label: data["summary"] for label, data in result.items()
    }


def _fig02() -> dict:
    return F.fig02_contention()


def _fig03() -> dict:
    return {
        "bandwidth": F.fig03a_interconnect_bandwidth()["rows"],
        "sharing": F.fig03b_sharing_impact(duration=60.0),
    }


def _fig07() -> dict:
    return F.fig07_longprompt(duration=60.0)


def _fig08() -> dict:
    result = F.fig08_lora(rate=8.0, count=100)
    return {label: data["summary"] for label, data in result.items()}


def _fig09() -> dict:
    result = F.fig09_cfs(rates=(2.0, 5.0), count=50)
    return {
        str(rate): {label: data["summary"] for label, data in systems.items()}
        for rate, systems in result.items()
    }


def _fig10() -> dict:
    result = F.fig10_elastic()
    return {
        "consumer_tokens_total": result["consumer_tokens_total"],
        "free_memory_gib": result["free_memory_gib"][::10],
        # Per-second consumer throughput, decimated; the replication
        # eval (fig10-sawtooth) checks the donate -> reclaim-dip ->
        # recovery shape on these windows.
        "consumer_tokens_per_s": result["consumer_tokens_per_s"][::5],
        "phases": result["phases"],
    }


def _fig11() -> dict:
    result = F.fig11_producer_overhead(end=120.0)
    return {
        label: {
            "count": len(rcts),
            "p50": percentile(rcts, 50) if rcts else None,
            "p95": percentile(rcts, 95) if rcts else None,
        }
        for label, rcts in result.items()
    }


def _fig12() -> dict:
    result = F.fig12_tensor_size(count=100)
    return {
        size: {
            "baseline": data["baseline"]["summary"],
            "aqua": data["aqua"]["summary"],
            "saved": data["rct_mean_saved"],
        }
        for size, data in result.items()
    }


def _fig13() -> dict:
    result = F.fig13_chatbot(n_users=25, turns=4)
    return {label: data["summary"] for label, data in result.items()}


def _fig14() -> dict:
    return F.fig14_placer_convergence(gpu_counts=(16, 32, 64))


def _fig15() -> dict:
    result = F.fig15_llm_producer(rates=(2.0,), count=50)
    return {label: data["summary"] for label, data in result[2.0].items()}


def _fig16() -> dict:
    result = F.fig16_sd_producer(rates=(2.0,), count=50)
    return {label: data["summary"] for label, data in result[2.0].items()}


def _fig17() -> dict:
    result = F.fig17_nvswitch_cfs(rates=(2.0,), count=50)
    return {label: data["summary"] for label, data in result[2.0].items()}


def _fig18() -> dict:
    return F.fig18_nvswitch_stress(duration=60.0)


def _tables() -> dict:
    return {
        "table1": F.table1_deficit_jobs(),
        "table2": F.table2_excess_llm_jobs(),
        "table3": F.table3_producer_jobs(),
    }


def _frontier() -> dict:
    # Cluster serving frontier (docs/frontier.md): every routing policy
    # over the default load grid.  The sweep runs its own cells inline
    # (jobs=1) because this callable already executes inside the pool.
    from repro.experiments.frontier import frontier_sweep

    return frontier_sweep(jobs=1)


def _e2e() -> dict:
    result = F.e2e_cluster_placement()
    return {
        split: {
            "pairs": data["pairs"],
            "unmatched": data["unmatched"],
            "solve_seconds": data["solve_seconds"],
        }
        for split, data in result.items()
    }


EXPERIMENTS: dict[str, Callable[[], dict]] = {
    "fig01": _fig01,
    "fig02": _fig02,
    "fig03": _fig03,
    "fig07": _fig07,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "fig18": _fig18,
    "tables": _tables,
    "e2e": _e2e,
    "frontier": _frontier,
}


def run_all(
    out_dir: str,
    only: Optional[list[str]] = None,
    progress: Callable[[str], None] = print,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> dict:
    """Run the selected experiments, writing one JSON file each.

    ``jobs`` fans the experiments out over a process pool (``1`` = the
    serial path); ``cache_dir`` enables the content-addressed run cache
    so previously computed cells are replayed instead of re-simulated.

    Returns a manifest mapping experiment name to output path,
    wall-clock seconds, cache provenance and result-file digest.  The
    ``manifest.json`` written to disk additionally carries a ``"run"``
    entry (a reserved name, not an experiment) with the jobs count and
    cache hit/miss totals.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = only or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    cache = RunCache(cache_dir) if cache_dir else None
    specs = [
        RunSpec(
            task=f"{EXPERIMENTS[name].__module__}:{EXPERIMENTS[name].__name__}",
            label=name,
        )
        for name in names
    ]
    results = run_specs(specs, jobs=jobs, cache=cache, progress=progress)
    manifest = {}
    for name, result in zip(names, results):
        path = out / f"{name}.json"
        payload = json.dumps(result.value, indent=1, default=str)
        path.write_text(payload)
        manifest[name] = {
            "path": str(path),
            "seconds": round(result.seconds, 2),
            "cached": result.cached,
            "digest": hashlib.sha256(payload.encode()).hexdigest(),
        }
    run_entry = {"jobs": jobs}
    if cache is not None:
        run_entry["cache"] = {"dir": str(cache.dir), **cache.stats.to_dict()}
    with open(out / "manifest.json", "w") as f:
        json.dump({**manifest, "run": run_entry}, f, indent=1)
    if cache is not None:
        progress(
            f"wrote {len(manifest)} result files to {out}/ "
            f"(jobs={jobs}, cache hits={cache.stats.hits} "
            f"misses={cache.stats.misses})"
        )
    else:
        progress(f"wrote {len(manifest)} result files to {out}/")
    return manifest
