"""Resilience experiment: goodput under faults and recovery time.

A FlexGen long-prompt consumer offloads its context to an idle LLM
producer over NVLink (the Figure 7/10 rig), then a deterministic
:class:`~repro.faults.FaultSchedule` breaks things under it:

1. a DMA stall on the fetch link — AQUA-LIB retries with capped
   exponential backoff until the engine unfreezes;
2. a severe NVLink degradation — the coordinator fails the consumer
   over to the PCIe/DRAM path (goodput drops to the baseline level,
   but requests keep flowing);
3. a producer GPU failure — the in-flight context is lost, the engine
   re-queues (never drops) the request and recomputes on DRAM until
   the GPU returns, after which opportunistic upgrades restore the
   fast path.

Because a FlexGen consumer's goodput naturally declines as its context
grows (every token re-reads the whole KV cache), "recovered" is judged
against a *fault-free control run* of the identical rig, not against
the raw pre-fault level: recovery is the first time after all faults
clear where goodput is back within ``recovery_threshold`` of the
control's goodput over the same window.  Everything is deterministic:
same schedule, same numbers.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import build_consumer_rig
from repro.experiments.pool import RunSpec, run_specs
from repro.faults import DmaStall, FaultInjector, FaultSchedule, GpuFailure, LinkDegradation
from repro.models import LLAMA2_13B, OPT_30B
from repro.trace import Tracer
from repro.workloads.arrivals import submit_all
from repro.workloads.longprompt import long_prompt_requests


def default_fault_schedule() -> FaultSchedule:
    """The documented deterministic scenario (see ``docs/resilience.md``).

    A 4 s DMA stall on the producer->consumer NVLink at t=20, a 25 s
    degradation of every NVLink to 2% of peak at t=40 (2% of NVLink is
    slower than PCIe, so the coordinator fails over to DRAM), and a
    20 s producer GPU failure at t=90.  All faults have cleared by
    t=110.
    """
    return FaultSchedule(
        [
            DmaStall(at=20.0, channel="nvlink:gpu1->gpu0", duration=4.0),
            LinkDegradation(at=40.0, channel="nvlink", factor=0.02, duration=25.0),
            GpuFailure(at=90.0, gpu="gpu1", duration=20.0),
        ]
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _window_mean(series: list[tuple[float, float]], start: float, end: float) -> float:
    """Mean of the (t, value) samples falling in ``[start, end)``."""
    return _mean([v for t, v in series if start <= t < end])


def _run_rig(
    schedule: FaultSchedule,
    duration: float,
    workload_start: float,
    sample_dt: float,
    audit: bool = False,
    scrape_interval: Optional[float] = None,
    slo_policy: Optional[dict] = None,
    postmortem_dir: Optional[str] = None,
) -> dict:
    """One rig run under ``schedule``; returns raw series and counters."""
    tracer = Tracer()
    observability = scrape_interval is not None
    policy = None
    if observability:
        from repro.telemetry.slo import SLOPolicy, default_slo_policy

        policy = (
            SLOPolicy.from_dict(slo_policy)
            if slo_policy is not None
            else default_slo_policy()
        )
    rig = build_consumer_rig(
        "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True, audit=audit,
        telemetry=observability,
        scrape_interval=scrape_interval,
        slo_policy=policy,
        postmortem_dir=postmortem_dir,
    )
    env = rig.env
    consumer = rig.consumer_engine
    consumer.tracer = tracer
    rig.consumer_lib.tracer = tracer

    injector = FaultInjector(
        rig.server, coordinator=rig.coordinator, tracer=tracer,
        telemetry=rig.telemetry,
    )
    injector.install(schedule)
    rig.start()

    goodput: list[tuple[float, float]] = []

    def sampler(env):
        last = 0
        while True:
            tokens = consumer.metrics.tokens_generated
            goodput.append((env.now, (tokens - last) / sample_dt))
            last = tokens
            yield env.timeout(sample_dt)

    env.process(sampler(env))

    requests = long_prompt_requests(start=workload_start)
    submit_all(env, consumer, requests)
    env.run(until=duration)

    audit_report = None
    if rig.auditor is not None:
        rig.auditor.check(checkpoint="final")
        audit_report = rig.auditor.report()

    dropped = [
        r
        for r in requests
        if not r.done and r not in consumer.waiting and r not in consumer.running
    ]
    result = {
        "goodput": goodput,
        "retries": rig.consumer_lib.retries,
        "requeues": consumer.metrics.requeues,
        "lost_tensors": rig.consumer_lib.lost_tensors,
        "dropped": len(dropped),
        "tokens_total": consumer.metrics.tokens_generated,
        "fault_log": injector.log,
        "tracer": tracer,
        "audit": audit_report,
    }
    if observability:
        from repro.telemetry.dashboard import dashboard_data

        # Plain dicts only: this result pickles back from pooled workers.
        result["observability"] = rig.telemetry.observability_report()
        result["dashboard_data"] = dashboard_data(
            rig.telemetry, title="Aqua resilience run", duration=duration
        )
    return result


def _rig_cell(
    schedule: list[dict],
    duration: float,
    workload_start: float,
    sample_dt: float,
    audit: bool,
    scrape_interval: Optional[float] = None,
    slo_policy: Optional[dict] = None,
    postmortem_dir: Optional[str] = None,
) -> dict:
    """Pool-safe wrapper around :func:`_run_rig`.

    The schedule travels as its plain-dict JSON form (the SLO policy
    likewise) and the result — goodput series, counters, tracer, audit
    report, observability exports — pickles back to the parent, so the
    faulted and control runs can occupy two cores.
    """
    return _run_rig(
        FaultSchedule.from_dicts(schedule),
        duration,
        workload_start,
        sample_dt,
        audit=audit,
        scrape_interval=scrape_interval,
        slo_policy=slo_policy,
        postmortem_dir=postmortem_dir,
    )


def resilience_experiment(
    schedule: Optional[FaultSchedule] = None,
    duration: float = 160.0,
    workload_start: float = 2.0,
    sample_dt: float = 1.0,
    pre_window: float = 8.0,
    recovery_window: float = 8.0,
    recovery_threshold: float = 0.95,
    audit: bool = False,
    jobs: Optional[int] = 1,
    scrape_interval: Optional[float] = None,
    slo_policy=None,
    postmortem_dir: Optional[str] = None,
) -> dict:
    """Run the fault schedule against the FlexGen/NVLink rig.

    Two identical rigs run the same workload — one under ``schedule``
    (default: :func:`default_fault_schedule`), one fault-free as the
    control — and their goodput series are compared.

    Parameters
    ----------
    schedule:
        Faults to inject into the faulted run.
    duration:
        Total simulated seconds (per run).
    workload_start:
        When the long-prompt request arrives (after the producer has
        donated its spare memory).
    sample_dt:
        Goodput sampling interval.
    pre_window:
        Seconds immediately before the first fault (and at the end of
        the run) used for the pre/post goodput levels.
    recovery_window, recovery_threshold:
        Recovery is declared at the first time after the last fault
        clears where the faulted run's mean goodput over
        ``recovery_window`` seconds reaches ``recovery_threshold`` of
        the control's over the same window.
    audit:
        Run both rigs under a :class:`~repro.audit.ConservationAuditor`
        and include the reports (and determinism digests) in the result
        under ``"audit"``.
    jobs:
        ``jobs >= 2`` runs the faulted and control rigs on two worker
        processes concurrently (they are fully independent simulations);
        ``jobs=1`` keeps the historical serial order.  Results are
        identical either way.
    scrape_interval:
        When set, both rigs run with the time-resolved observability
        layer (scraper + SLO tracker + flight recorder) at this cadence.
        The faulted run's SLO alerts, post-mortem bundles and dashboard
        data are returned under ``"observability"`` /
        ``"dashboard_data"``.  Observation-only: the goodput series and
        audit digests are unchanged.
    slo_policy:
        :class:`~repro.telemetry.SLOPolicy` (or its dict form) to
        evaluate; defaults to
        :func:`~repro.telemetry.default_slo_policy`.
    postmortem_dir:
        Directory where the faulted run's flight recorder writes
        post-mortem bundles (the control run records in memory only).

    Returns a dict with the goodput series of both runs (tokens/s),
    the fault log, ``pre_fault_goodput`` / ``post_fault_goodput`` /
    ``post_fault_goodput_ratio`` (vs. control) / ``recovery_time_s``
    (seconds after all faults cleared), and the ``retries`` /
    ``requeues`` / ``lost_tensors`` / ``dropped_requests`` counters.
    """
    schedule = schedule if schedule is not None else default_fault_schedule()
    if slo_policy is not None and not isinstance(slo_policy, dict):
        slo_policy = slo_policy.to_dict()
    specs = [
        RunSpec(
            task=f"{__name__}:_rig_cell",
            kwargs={
                "schedule": sched.to_dicts(),
                "duration": duration,
                "workload_start": workload_start,
                "sample_dt": sample_dt,
                "audit": audit,
                "scrape_interval": scrape_interval,
                "slo_policy": slo_policy,
                # Only the faulted run dumps bundles to disk — the
                # control is healthy by construction and two workers
                # must not race on the same postmortem-NNN.json names.
                "postmortem_dir": postmortem_dir if label == "faulted" else None,
            },
            label=label,
        )
        for label, sched in (("faulted", schedule), ("control", FaultSchedule()))
    ]
    faulted, control = (r.value for r in run_specs(specs, jobs=jobs))

    goodput = faulted["goodput"]
    baseline = control["goodput"]
    first_fault = min((f.at for f in schedule), default=duration)
    all_clear = schedule.horizon  # 0.0 for an empty schedule
    pre = _window_mean(goodput, first_fault - pre_window, first_fault)
    post = _window_mean(goodput, duration - pre_window, duration)
    post_control = _window_mean(baseline, duration - pre_window, duration)

    recovery_time = None
    t = all_clear
    while t + recovery_window <= duration:
        reference = _window_mean(baseline, t, t + recovery_window)
        if reference > 0 and (
            _window_mean(goodput, t, t + recovery_window)
            >= recovery_threshold * reference
        ):
            recovery_time = t - all_clear
            break
        t += sample_dt

    retry_instants = [
        ev for ev in faulted["tracer"].instants if ev.name == "aqua-retry"
    ]

    return {
        "goodput_tokens_per_s": goodput,
        "control_goodput_tokens_per_s": baseline,
        "pre_fault_goodput": pre,
        "post_fault_goodput": post,
        "post_fault_goodput_ratio": post / post_control if post_control else None,
        "recovery_time_s": recovery_time,
        "first_fault_at": first_fault,
        "all_faults_cleared_at": all_clear,
        "retries": faulted["retries"],
        "retries_in_trace": len(retry_instants),
        "requeues": faulted["requeues"],
        "lost_tensors": faulted["lost_tensors"],
        "dropped_requests": faulted["dropped"],
        "tokens_total": faulted["tokens_total"],
        "control_tokens_total": control["tokens_total"],
        "fault_log": faulted["fault_log"],
        "tracer": faulted["tracer"],
        "observability": faulted.get("observability"),
        "control_observability": control.get("observability"),
        "dashboard_data": faulted.get("dashboard_data"),
        "audit": (
            {
                "faulted": faulted["audit"].to_dict(),
                "control": control["audit"].to_dict(),
            }
            if audit
            else None
        ),
    }
