"""Terminal plotting: render experiment series as ASCII charts.

No plotting dependency is available offline, so the CLI and examples
render their figures as text — line charts for time series (Figure 10's
memory timeline), bar charts for comparisons (Figure 7's token counts),
and CDF-style sorted-latency charts (Figures 8/9).
"""

from __future__ import annotations

from typing import Optional, Sequence


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    return int(round((value - lo) / (hi - lo) * width))


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        return title or ""
    lines = [title] if title else []
    hi = max(values)
    label_width = max(len(str(l)) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, _scale(value, 0, hi, width))
        lines.append(f"{str(label).ljust(label_width)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 10,
    width: int = 60,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """A sampled ASCII line chart of ``ys`` against ``xs``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        return title or ""
    if height < 2 or width < 2:
        raise ValueError("chart must be at least 2x2")
    lines = [title] if title else []
    lo, hi = min(ys), max(ys)
    if hi == lo:
        hi = lo + 1.0
    # Resample to the chart width.
    columns = []
    x0, x1 = xs[0], xs[-1]
    for col in range(width):
        target = x0 + (x1 - x0) * col / max(1, width - 1)
        nearest = min(range(len(xs)), key=lambda i: abs(xs[i] - target))
        columns.append(ys[nearest])
    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(columns):
        row = height - 1 - _scale(value, lo, hi, height - 1)
        grid[row][col] = "*"
    top_label = f"{hi:g}"
    bottom_label = f"{lo:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(f"{' ' * margin} +{'-' * width}")
    lines.append(f"{' ' * margin}  {xs[0]:g}{' ' * (width - len(f'{xs[0]:g}') - len(f'{xs[-1]:g}'))}{xs[-1]:g}")
    return "\n".join(lines)


def cdf_chart(
    series: dict[str, Sequence[float]],
    width: int = 50,
    title: Optional[str] = None,
    points: int = 10,
) -> str:
    """Sorted-value comparison of several latency distributions.

    Prints each series' value at evenly spaced ranks — the textual
    equivalent of the paper's sorted-RCT plots.
    """
    if not series:
        return title or ""
    lines = [title] if title else []
    names = list(series)
    name_width = max(len(n) for n in names)
    quantiles = [i / (points - 1) for i in range(points)]
    header = "rank".ljust(name_width) + "  " + "  ".join(
        f"{q:>6.0%}" for q in quantiles
    )
    lines.append(header)
    for name in names:
        values = sorted(series[name])
        if not values:
            continue
        row = []
        for q in quantiles:
            idx = min(len(values) - 1, int(q * (len(values) - 1)))
            row.append(f"{values[idx]:6.2f}")
        lines.append(name.ljust(name_width) + "  " + "  ".join(row))
    return "\n".join(lines)
