"""Reproductions of every figure in the paper's evaluation.

Each ``figNN_*`` function builds the corresponding rig, runs the
workload, and returns a plain dict of the series the paper plots.
Durations default to scaled-down values (the simulation preserves
ratios, so a 60-300 s window shows the same shape as the paper's ten
minutes); pass the paper's parameters for a full-scale run.

The shapes to look for, figure by figure, are documented in DESIGN.md's
per-experiment index and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.aqua import AquaPlacer, ModelInstance
from repro.hardware import A100_80G, Server
from repro.hardware.specs import GB, GiB, KB, MB, NVLINK3_P2P, PCIE_GEN4_X16
from repro.models import (
    AUDIOGEN,
    CODELLAMA_34B,
    KANDINSKY,
    LLAMA2_13B,
    MISTRAL_7B,
    OPT_30B,
    SD_15,
    SD_XL,
    synthesize_adapters,
)
from repro.experiments.harness import (
    DEFAULT_LORA_CACHE_BYTES,
    FIG12_LORA_CACHE_BYTES,
    ConsumerRig,
    build_consumer_rig,
    drain,
)
from repro.experiments.pool import RunSpec, run_specs
from repro.experiments.report import summarize_requests
from repro.serving import Request
from repro.sim import Environment
from repro.workloads import (
    ChatbotWorkload,
    code_summary_requests,
    long_prompt_requests,
    lora_requests,
    producer_requests,
    sharegpt_requests,
)
from repro.workloads.arrivals import submit_all


# ===========================================================================
# Shared runners
# ===========================================================================
def _interactive_burst(rate: float, count: int, seed: int) -> list[Request]:
    """Code-summary burst: the paper's CFS workload (Table 1).

    Long prompts are essential — they exhaust the KV cache after a few
    tens of concurrent requests, which is what separates the batching
    scheduler (starves late arrivals) from CFS (keeps responding).
    """
    return code_summary_requests(rate=rate, count=count, seed=seed)


def run_scheduler_comparison(
    consumer_model=CODELLAMA_34B,
    producer_model=KANDINSKY,
    rate: float = 5.0,
    count: int = 50,
    seed: int = 0,
    slice_tokens: int = 5,
    timeout: float = 900.0,
    topology: str = "p2p",
    n_gpus: int = 2,
) -> dict:
    """Run vLLM, vLLM+CFS(DRAM) and AQUA on the same trace.

    This is the engine behind Figures 1, 9, 15, 16 and 17 — they differ
    only in producer model, request rate and server topology.
    """
    systems = {}
    for label, kind, use_aqua, producer in (
        ("vllm", "vllm", False, None),
        ("cfs-dram", "cfs", False, None),
        ("aqua", "cfs", True, producer_model),
    ):
        env = Environment()
        server = Server(env, n_gpus=n_gpus, topology=topology)
        kwargs = {"slice_tokens": slice_tokens} if kind == "cfs" else {}
        rig = build_consumer_rig(
            kind,
            consumer_model,
            producer_model=producer,
            use_aqua=use_aqua,
            env=env,
            server=server,
            consumer_kwargs=kwargs,
        ).start()
        if use_aqua:
            rig.warm_up(1.0)
        requests = _interactive_burst(rate, count, seed)
        submit_all(env, rig.consumer_engine, requests)
        drain(env, requests, timeout=timeout)
        systems[label] = {
            "requests": requests,
            "summary": summarize_requests(requests, label),
            "engine": rig.consumer_engine,
        }
    return systems


# ===========================================================================
# Figure 1: motivation — TTFT and RCT per request at 5 req/s
# ===========================================================================
def fig01_motivation(rate: float = 5.0, count: int = 50, seed: int = 0) -> dict:
    """TTFT/RCT in arrival order for vLLM, CFS-over-DRAM, and AQUA."""
    systems = run_scheduler_comparison(rate=rate, count=count, seed=seed)
    out = {}
    for label, data in systems.items():
        ordered = sorted(data["requests"], key=lambda r: r.arrival_time)
        out[label] = {
            "ttft": [r.ttft for r in ordered],
            "rct": [r.rct for r in ordered],
            "summary": data["summary"],
        }
    return out


# ===========================================================================
# Figure 2: resource contention — throughput & free memory vs batch size
# ===========================================================================
def fig02_contention(batches: Sequence[int] = (1, 2, 4, 8, 16, 24, 32, 48, 64)) -> dict:
    """Throughput/free-memory curves for AudioGen, SD and Llama-2-13B."""
    gpu = A100_80G
    out = {}
    for model in (AUDIOGEN, SD_15):
        rows = []
        for batch in batches:
            if model.memory_used(batch) > gpu.hbm_bytes:
                break
            rows.append(
                {
                    "batch": batch,
                    "throughput": model.throughput(gpu, batch),
                    "free_gib": model.free_memory(gpu, batch) / GiB,
                }
            )
        out[model.name] = rows

    # The LLM: tokens/s at each batch, KV-limited.
    llm = LLAMA2_13B
    avg_tokens = 800
    rows = []
    # The LLM keeps scaling until its KV cache exhausts HBM, so sweep
    # past the compute-bound models' range (Figure 2c's point).
    llm_batches = [*batches, 80, 88, 96, 104, 112, 120, 128]
    for batch in llm_batches:
        kv = llm.kv_bytes(batch * avg_tokens)
        used = llm.weight_bytes + kv + llm.activation_workspace_bytes()
        if used > gpu.hbm_bytes:
            break
        rows.append(
            {
                "batch": batch,
                "throughput": llm.decode_throughput(gpu, batch, avg_tokens),
                "free_gib": (gpu.hbm_bytes - used) / GiB,
            }
        )
    out[llm.name] = rows
    return out


# ===========================================================================
# Figure 3a: interconnect bandwidth vs transfer size
# ===========================================================================
def fig03a_interconnect_bandwidth(
    sizes: Optional[Sequence[int]] = None,
) -> dict:
    """Effective NVLink vs PCIe bandwidth across buffer sizes."""
    if sizes is None:
        sizes = [4 * KB * (4**i) for i in range(10)]  # 4 KB .. ~1 GB
    rows = []
    for size in sizes:
        rows.append(
            {
                "size_bytes": size,
                "nvlink_gbps": NVLINK3_P2P.effective_bandwidth(size) / GB,
                "pcie_gbps": PCIE_GEN4_X16.effective_bandwidth(size) / GB,
            }
        )
    return {"rows": rows}


# ===========================================================================
# Figure 3b: impact of sharing memory on the producer
# ===========================================================================
def fig03b_sharing_impact(duration: float = 60.0, producer_model=SD_15) -> dict:
    """Producer throughput isolated vs while serving NVLink offloads."""

    def run(shared: bool) -> float:
        env = Environment()
        server = Server(env, n_gpus=2, topology="p2p")
        rig = build_consumer_rig(
            "flexgen",
            OPT_30B,
            producer_model=producer_model if shared else None,
            use_aqua=shared,
            env=env,
            server=server,
        )
        if not shared:
            # Isolated: producer runs alone with no consumer traffic.
            from repro.serving import BatchEngine

            rig.producer_engine = BatchEngine(
                server.gpus[1], server, producer_model, name="isolated-producer"
            )
        rig.start()
        producer = rig.producer_engine
        # Saturating load: throughput measures the GPU's capacity, so a
        # compute dilation from offload traffic becomes visible.
        submit_all(env, producer, producer_requests(rate=50.0, count=10_000, seed=1))
        if shared:
            submit_all(env, rig.consumer_engine, long_prompt_requests())
        env.run(until=duration)
        return len(producer.metrics.completed) / duration

    isolated = run(shared=False)
    shared = run(shared=True)
    return {
        "isolated_throughput": isolated,
        "shared_throughput": shared,
        "impact_fraction": (isolated - shared) / isolated if isolated else 0.0,
    }


# ===========================================================================
# Figure 7: long-prompt inference — tokens generated in a fixed duration
# ===========================================================================
def _fig07_cell(producer: Optional[str], duration: float) -> dict:
    """One Figure 7 variant (module-level: a pool-safe task).

    ``producer`` is a model registry *name* (or ``None`` for the
    FlexGen/DRAM baseline) so the task's kwargs stay JSON-serialisable.
    """
    from repro.models import get_model

    model = get_model(producer) if producer is not None else None
    rig = build_consumer_rig(
        "flexgen",
        OPT_30B,
        producer_model=model,
        use_aqua=model is not None,
    ).start()
    if model is not None:
        rig.warm_up(1.0)
    submit_all(rig.env, rig.consumer_engine, long_prompt_requests())
    rig.env.run(until=rig.env.now + duration)
    return {
        "tokens": rig.consumer_engine.metrics.tokens_generated,
        "duration": duration,
    }


def fig07_longprompt(
    duration: float = 120.0,
    producers: Optional[dict] = None,
    jobs: Optional[int] = 1,
) -> dict:
    """Tokens generated by OPT-30B long-prompt jobs: FlexGen vs AQUA.

    The paper's balanced split pairs OPT-30B with StableDiffusion and
    AudioGen; the LLM-heavy split pairs it with Llama-2-13B and
    Mistral-7B producers.  Each variant is an independent rig, so
    ``jobs > 1`` runs them in parallel with identical results.
    """
    if producers is None:
        producers = {
            "flexgen-dram": None,
            "aqua+sd": SD_15,
            "aqua+audiogen": AUDIOGEN,
            "aqua+llama": LLAMA2_13B,
        }
    specs = [
        RunSpec(
            task=f"{__name__}:_fig07_cell",
            kwargs={
                "producer": producer if producer is None else producer.name,
                "duration": duration,
            },
            label=label,
        )
        for label, producer in producers.items()
    ]
    results = run_specs(specs, jobs=jobs)
    out = {
        label: result.value for label, result in zip(producers, results)
    }
    base = out.get("flexgen-dram", {}).get("tokens", 0)
    for label, data in out.items():
        data["speedup"] = data["tokens"] / base if base else float("nan")
    return out


# ===========================================================================
# Figure 8: LoRA adapter serving — sorted RCTs
# ===========================================================================
def fig08_lora(
    n_adapters: int = 30,
    adapter_mb: int = 320,
    rate: float = 5.0,
    count: int = 100,
    seed: int = 0,
    producer_models: Optional[dict] = None,
    timeout: float = 600.0,
) -> dict:
    """Sorted request completion times for Mistral + LoRA adapters.

    ``aqua-0``/``aqua-1`` are AQUA paired with SD / SD-XL (Figure 8a);
    ``aqua-llm`` pairs with a Llama-2-13B LLM producer (Figure 8b).
    """
    if producer_models is None:
        producer_models = {"aqua-0": SD_15, "aqua-1": SD_XL, "aqua-llm": LLAMA2_13B}
    adapters = synthesize_adapters(n_adapters, adapter_mb * MB)
    cache_bytes = DEFAULT_LORA_CACHE_BYTES

    def run(label: str, producer, use_aqua: bool) -> dict:
        rig = build_consumer_rig(
            "vllm",
            MISTRAL_7B,
            producer_model=producer,
            use_aqua=use_aqua,
            lora_capacity_bytes=cache_bytes,
        ).start()
        if use_aqua:
            rig.warm_up(1.0)
            for adapter in adapters:
                rig.lora_cache.register(adapter)
        requests = lora_requests(adapters, rate=rate, count=count, seed=seed)
        submit_all(rig.env, rig.consumer_engine, requests)
        drain(rig.env, requests, timeout=timeout)
        return {
            "sorted_rct": sorted(r.rct for r in requests if r.rct is not None),
            "summary": summarize_requests(requests, label),
            "cache": {"hits": rig.lora_cache.hits, "misses": rig.lora_cache.misses},
        }

    out = {"baseline": run("baseline", None, use_aqua=False)}
    for label, producer in producer_models.items():
        out[label] = run(label, producer, use_aqua=True)
    return out


# ===========================================================================
# Figure 9 (and 15/16/17): CFS responsiveness
# ===========================================================================
def _fig09_cell(
    rate: float,
    count: int,
    seed: int,
    producer: str,
    topology: str,
    n_gpus: int,
) -> dict:
    """One Figure 9 rate point (module-level: a pool-safe task)."""
    from repro.models import get_model

    systems = run_scheduler_comparison(
        producer_model=get_model(producer),
        rate=rate,
        count=count,
        seed=seed,
        topology=topology,
        n_gpus=n_gpus,
    )
    return {
        label: {
            "summary": data["summary"],
            "ttft": sorted(r.ttft for r in data["requests"] if r.ttft is not None),
            "rct": sorted(r.rct for r in data["requests"] if r.rct is not None),
        }
        for label, data in systems.items()
    }


def fig09_cfs(
    rates: Sequence[float] = (2.0, 5.0),
    count: int = 50,
    seed: int = 0,
    producer_model=KANDINSKY,
    topology: str = "p2p",
    n_gpus: int = 2,
    jobs: Optional[int] = 1,
) -> dict:
    """TTFT/RCT comparison at each request rate (Figure 9a/9b).

    Rate points are independent simulations; ``jobs > 1`` fans them out
    over a process pool with byte-identical results.
    """
    specs = [
        RunSpec(
            task=f"{__name__}:_fig09_cell",
            kwargs={
                "rate": rate,
                "count": count,
                "seed": seed,
                "producer": producer_model.name,
                "topology": topology,
                "n_gpus": n_gpus,
            },
            label=f"rate={rate:g}",
        )
        for rate in rates
    ]
    results = run_specs(specs, jobs=jobs)
    return {rate: result.value for rate, result in zip(rates, results)}


def fig15_llm_producer(**kwargs) -> dict:
    """Figure 15: the CFS workload placed next to a Mistral LLM producer."""
    kwargs.setdefault("producer_model", MISTRAL_7B)
    return fig09_cfs(**kwargs)


def fig16_sd_producer(**kwargs) -> dict:
    """Figure 16: the CFS workload placed with StableDiffusion."""
    kwargs.setdefault("producer_model", SD_15)
    return fig09_cfs(**kwargs)


def fig17_nvswitch_cfs(**kwargs) -> dict:
    """Figure 17: the CFS workload on the 8-GPU NVSwitch server."""
    kwargs.setdefault("producer_model", SD_XL)
    kwargs.setdefault("topology", "nvswitch")
    kwargs.setdefault("n_gpus", 8)
    return fig09_cfs(**kwargs)


# ===========================================================================
# Figure 10: elasticity under dynamic workloads
# ===========================================================================
def fig10_elastic(
    phase1_start: float = 30.0,
    phase2_start: float = 90.0,
    end: float = 200.0,
    low_rate: float = 1.0,
    low_count: int = 50,
    high_rate: float = 5.0,
    high_count: int = 250,
    sample_dt: float = 1.0,
) -> dict:
    """Free memory on the LLM producer and consumer token throughput.

    Phases follow §6.2: idle producer donates; at ``phase1_start`` the
    long-prompt consumer starts alongside light producer traffic; at
    ``phase2_start`` a heavy burst forces a reclaim; after the burst
    drains the memory is re-donated and consumer throughput recovers.
    """
    rig = build_consumer_rig(
        "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True
    ).start()
    env = rig.env
    producer = rig.producer_engine
    consumer = rig.consumer_engine

    free_mem = []
    tokens_per_window = []

    def sampler(env):
        last_tokens = 0
        while True:
            # The engine's view of memory it holds for inference context
            # (the paper's Figure 10a: all reserved at start, shrunk to
            # ~5 GB once AQUA-LIB donates, regrown on reclaim).
            free_mem.append(
                (env.now, (producer.kv_free_bytes + producer.gpu.free_hbm) / GiB)
            )
            tokens = consumer.metrics.tokens_generated
            tokens_per_window.append((env.now, (tokens - last_tokens) / sample_dt))
            last_tokens = tokens
            yield env.timeout(sample_dt)

    env.process(sampler(env))

    submit_all(
        env,
        rig.consumer_engine,
        long_prompt_requests(start=phase1_start),
    )
    low = sharegpt_requests(rate=low_rate, count=low_count, seed=3, start=phase1_start)
    high = sharegpt_requests(rate=high_rate, count=high_count, seed=4, start=phase2_start)
    submit_all(env, producer, low)
    submit_all(env, producer, high)
    env.run(until=end)

    return {
        "free_memory_gib": free_mem,
        "consumer_tokens_per_s": tokens_per_window,
        "producer_requests": summarize_requests([*low, *high], "producer"),
        "consumer_tokens_total": consumer.metrics.tokens_generated,
        "phases": {"phase1": phase1_start, "phase2": phase2_start, "end": end},
    }


# ===========================================================================
# Figure 11: cost of donating memory, from the producer's seat
# ===========================================================================
def fig11_producer_overhead(
    phase1_start: float = 5.0,
    phase2_start: float = 60.0,
    end: float = 160.0,
    low_rate: float = 1.0,
    low_count: int = 50,
    high_rate: float = 5.0,
    high_count: int = 250,
) -> dict:
    """Sorted producer RCTs with and without AQUA donation."""

    def run(with_aqua: bool) -> list[float]:
        if with_aqua:
            rig = build_consumer_rig(
                "flexgen", OPT_30B, producer_model=LLAMA2_13B, use_aqua=True
            ).start()
            submit_all(
                rig.env, rig.consumer_engine, long_prompt_requests(start=phase1_start)
            )
            producer = rig.producer_engine
            env = rig.env
        else:
            env = Environment()
            server = Server(env, n_gpus=2)
            from repro.serving import VLLMEngine

            producer = VLLMEngine(server.gpus[0], server, LLAMA2_13B, name="baseline")
            producer.start()
        low = sharegpt_requests(low_rate, low_count, seed=3, start=phase1_start)
        high = sharegpt_requests(high_rate, high_count, seed=4, start=phase2_start)
        submit_all(env, producer, low)
        submit_all(env, producer, high)
        env.run(until=end)
        return sorted(r.rct for r in [*low, *high] if r.rct is not None)

    return {"baseline": run(False), "aqua": run(True)}


# ===========================================================================
# Figure 12: AQUA TENSOR benefit vs offloaded tensor size
# ===========================================================================
def _fig12_cell(
    size_mb: int,
    use_aqua: bool,
    n_adapters: int,
    rate: float,
    count: int,
    response_tokens: int,
    seed: int,
    timeout: float,
) -> dict:
    """One Figure 12 (size, system) cell (module-level: pool-safe)."""
    label = "aqua" if use_aqua else "baseline"
    adapters = synthesize_adapters(n_adapters, size_mb * MB)
    rig = build_consumer_rig(
        "vllm",
        MISTRAL_7B,
        producer_model=SD_15 if use_aqua else None,
        use_aqua=use_aqua,
        lora_capacity_bytes=FIG12_LORA_CACHE_BYTES,
    ).start()
    if use_aqua:
        rig.warm_up(1.0)
        for adapter in adapters:
            rig.lora_cache.register(adapter)
    requests = lora_requests(
        adapters,
        rate=rate,
        count=count,
        seed=seed,
        unique_assignment=True,
        response_tokens=response_tokens,
    )
    submit_all(rig.env, rig.consumer_engine, requests)
    drain(rig.env, requests, timeout=timeout)
    return {
        "sorted_rct": sorted(r.rct for r in requests if r.rct is not None),
        "summary": summarize_requests(requests, f"{label}-{size_mb}MB"),
    }


def fig12_tensor_size(
    adapter_sizes_mb: Sequence[int] = (160, 320),
    n_adapters: int = 200,
    rate: float = 10.0,
    count: int = 200,
    response_tokens: int = 32,
    seed: int = 0,
    timeout: float = 600.0,
    jobs: Optional[int] = 1,
) -> dict:
    """Sorted RCTs per adapter size, baseline vs AQUA (SD producer).

    The (adapter size × system) grid fans out over a process pool when
    ``jobs > 1``; every cell is an independent seeded rig.
    """
    cells = [
        (size_mb, use_aqua)
        for size_mb in adapter_sizes_mb
        for use_aqua in (False, True)
    ]
    specs = [
        RunSpec(
            task=f"{__name__}:_fig12_cell",
            kwargs={
                "size_mb": size_mb,
                "use_aqua": use_aqua,
                "n_adapters": n_adapters,
                "rate": rate,
                "count": count,
                "response_tokens": response_tokens,
                "seed": seed,
                "timeout": timeout,
            },
            label=f"{'aqua' if use_aqua else 'baseline'}-{size_mb}MB",
        )
        for size_mb, use_aqua in cells
    ]
    results = run_specs(specs, jobs=jobs)
    by_cell = {cell: result.value for cell, result in zip(cells, results)}
    out = {}
    for size_mb in adapter_sizes_mb:
        per_system = {
            "baseline": by_cell[(size_mb, False)],
            "aqua": by_cell[(size_mb, True)],
        }
        base = per_system["baseline"]["summary"].get("rct_mean", float("nan"))
        aqua = per_system["aqua"]["summary"].get("rct_mean", float("nan"))
        per_system["rct_mean_saved"] = base - aqua
        out[f"{size_mb}MB"] = per_system
    return out


# ===========================================================================
# Figure 13: long-term responsiveness (chatbot, §8)
# ===========================================================================
def fig13_chatbot(
    n_users: int = 25,
    turns: int = 4,
    seed: int = 0,
    timeout: float = 2400.0,
) -> dict:
    """Per-request RCTs in completion order for the chat workload."""
    out = {}
    for label, kind, use_aqua, producer in (
        ("vllm", "vllm", False, None),
        ("cfs-dram", "cfs", False, None),
        ("aqua", "cfs", True, KANDINSKY),
    ):
        rig = build_consumer_rig(
            kind,
            CODELLAMA_34B,
            producer_model=producer,
            use_aqua=use_aqua,
            consumer_kwargs={"slice_tokens": 5} if kind == "cfs" else None,
        ).start()
        if use_aqua:
            rig.warm_up(1.0)
        workload = ChatbotWorkload(n_users=n_users, turns=turns, seed=seed)
        users = workload.attach(rig.env, rig.consumer_engine)
        deadline = rig.env.now + timeout
        while rig.env.now < deadline and not all(u.processed for u in users):
            rig.env.run(until=min(deadline, rig.env.now + 5.0))
        completed = rig.consumer_engine.metrics.completed
        ordered = sorted(completed, key=lambda r: r.finish_time)
        out[label] = {
            "rct_by_completion": [(r.finish_time, r.rct) for r in ordered],
            "summary": summarize_requests(completed, label),
            "turns_completed": len(completed),
        }
    return out


# ===========================================================================
# Figure 14: AQUA-PLACER convergence time
# ===========================================================================
def fig14_placer_convergence(
    gpu_counts: Sequence[int] = (16, 32, 64, 128),
    gpus_per_server: int = 8,
    seed: int = 0,
) -> dict:
    """Placer solve time for mixed-modality vs 50/50 LLM clusters."""
    rng = np.random.default_rng(seed)
    rows = []
    for n_gpus in gpu_counts:
        n_servers = n_gpus // gpus_per_server
        if n_servers < 1:
            raise ValueError(f"{n_gpus} GPUs < one {gpus_per_server}-GPU server")
        placer = AquaPlacer(n_servers=n_servers, gpus_per_server=gpus_per_server)

        # Mixed: 1/3 image producers, 1/3 audio producers, 1/3 LLM consumers.
        mixed = []
        for i in range(n_gpus):
            kind = i % 3
            if kind == 0:
                mem = int(rng.integers(30, 60)) * GiB
                mixed.append(ModelInstance(f"img-{i}", "SD", mem))
            elif kind == 1:
                mem = int(rng.integers(30, 60)) * GiB
                mixed.append(ModelInstance(f"aud-{i}", "AudioGen", mem))
            else:
                mem = -int(rng.integers(10, 40)) * GiB
                mixed.append(ModelInstance(f"llm-{i}", "Llama", mem))
        mixed_placement = placer.place(mixed)

        # 50/50: LLM producers and LLM consumers of matched sizes.
        half = []
        for i in range(n_gpus):
            if i % 2 == 0:
                half.append(ModelInstance(f"prod-{i}", "Llama", 20 * GiB))
            else:
                half.append(ModelInstance(f"cons-{i}", "Llama", -20 * GiB))
        half_placement = placer.place(half)

        rows.append(
            {
                "gpus": n_gpus,
                "mixed_seconds": mixed_placement.solve_seconds,
                "llm5050_seconds": half_placement.solve_seconds,
                "mixed_pairs": len(mixed_placement.pairs),
                "llm5050_pairs": len(half_placement.pairs),
            }
        )
    return {"rows": rows}


# ===========================================================================
# Figure 18: stressing the NVSwitch — 4 consumers + 4 producers
# ===========================================================================
def fig18_nvswitch_stress(duration: float = 60.0) -> dict:
    """Four long-prompt consumers, each paired over one NVSwitch fabric."""
    env = Environment()
    server = Server(env, n_gpus=8, topology="nvswitch")
    from repro.aqua import Coordinator

    coordinator = Coordinator()
    producers = [SD_15, SD_XL, KANDINSKY, AUDIOGEN]
    rigs = []
    for i, producer_model in enumerate(producers):
        rig = build_consumer_rig(
            "flexgen",
            OPT_30B,
            producer_model=producer_model,
            use_aqua=True,
            env=env,
            server=server,
            consumer_gpu=i,
            producer_gpu=4 + i,
            coordinator=coordinator,
            name_prefix=f"pair{i}-",
        ).start()
        rigs.append(rig)
    env.run(until=1.0)  # producers donate
    for rig in rigs:
        submit_all(env, rig.consumer_engine, long_prompt_requests(start=1.0))
    env.run(until=1.0 + duration)

    per_consumer = [r.consumer_engine.metrics.tokens_generated for r in rigs]

    # Reference: the same pair on a direct-NVLink 2-GPU server.
    single = build_consumer_rig(
        "flexgen", OPT_30B, producer_model=SD_15, use_aqua=True
    ).start()
    single.warm_up(1.0)
    submit_all(single.env, single.consumer_engine, long_prompt_requests(start=1.0))
    single.env.run(until=1.0 + duration)

    return {
        "per_consumer_tokens": per_consumer,
        "two_gpu_reference_tokens": single.consumer_engine.metrics.tokens_generated,
        "duration": duration,
    }


# ===========================================================================
# Tables 1-3: the evaluation's workload inventory
# ===========================================================================
def table1_deficit_jobs() -> list[dict]:
    """LLM inference jobs with a GPU memory deficit (consumers)."""
    return [
        {"model": OPT_30B.name, "workload": "Long-prompt inference", "engine": "FlexGen"},
        {"model": MISTRAL_7B.name, "workload": "LoRA adapters", "engine": "vLLM"},
        {"model": CODELLAMA_34B.name, "workload": "Code summary", "engine": "vLLM + CFS"},
    ]


def table2_excess_llm_jobs() -> list[dict]:
    """LLM inference jobs with excess memory (elastic producers)."""
    return [
        {"model": MISTRAL_7B.name, "workload": "ShareGPT", "engine": "vLLM"},
        {"model": LLAMA2_13B.name, "workload": "ShareGPT", "engine": "vLLM"},
    ]


def table3_producer_jobs() -> list[dict]:
    """Image and audio jobs with excess memory (memory producers)."""
    return [
        {
            "model": f"{SD_15.name}, {SD_XL.name}, {KANDINSKY.name}",
            "workload": "Parti prompts",
            "engine": "Diffusers",
        },
        {
            "model": "MusicGen, AudioGen",
            "workload": "Audio descriptions",
            "engine": "PyTorch",
        },
    ]


# ===========================================================================
# §6.1 end-to-end cluster placement (balanced vs LLM-heavy)
# ===========================================================================
def e2e_cluster_placement(seed: int = 0) -> dict:
    """Place 16 models on 8 x 2-GPU servers, both model splits (§6.1)."""
    placer = AquaPlacer(n_servers=8, gpus_per_server=2)

    balanced = []
    # Equal thirds: image, audio, language (sampled with replacement).
    image = [SD_15, SD_XL, KANDINSKY]
    audio = [AUDIOGEN]
    llms = [(OPT_30B, -12), (CODELLAMA_34B, -10), (MISTRAL_7B, -8)]
    for i in range(5):
        model = image[i % len(image)]
        balanced.append(
            ModelInstance(f"img-{i}", model.name, (80 - model.weight_bytes // GiB - 25) * GiB)
        )
    for i in range(5):
        balanced.append(ModelInstance(f"aud-{i}", AUDIOGEN.name, 40 * GiB))
    for i in range(6):
        model, deficit = llms[i % len(llms)]
        balanced.append(ModelInstance(f"llm-{i}", model.name, deficit * GiB))
    balanced_placement = placer.place(balanced)

    heavy = []
    # All LLMs: half busy (consumers), half lightly loaded (producers).
    for i in range(8):
        heavy.append(ModelInstance(f"busy-{i}", CODELLAMA_34B.name, -10 * GiB))
        heavy.append(ModelInstance(f"idle-{i}", LLAMA2_13B.name, 30 * GiB))
    heavy_placement = placer.place(heavy)

    return {
        "balanced": {
            "pairs": balanced_placement.pairs,
            "unmatched": balanced_placement.unmatched_consumers(balanced),
            "solve_seconds": balanced_placement.solve_seconds,
        },
        "llm_heavy": {
            "pairs": heavy_placement.pairs,
            "unmatched": heavy_placement.unmatched_consumers(heavy),
            "solve_seconds": heavy_placement.solve_seconds,
        },
    }
