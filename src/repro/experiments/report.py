"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.serving.metrics import percentile
from repro.serving.request import Request


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: Optional[str] = None
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def summarize_requests(requests: Sequence[Request], label: str = "") -> dict:
    """TTFT/RCT summary of a set of (possibly unfinished) requests."""
    ttfts = [r.ttft for r in requests if r.ttft is not None]
    rcts = [r.rct for r in requests if r.rct is not None]
    out = {
        "label": label,
        "submitted": len(requests),
        "completed": sum(1 for r in requests if r.done),
    }
    if ttfts:
        out["ttft_mean"] = sum(ttfts) / len(ttfts)
        out["ttft_p50"] = percentile(ttfts, 50)
        out["ttft_p95"] = percentile(ttfts, 95)
        out["ttft_max"] = max(ttfts)
    if rcts:
        out["rct_mean"] = sum(rcts) / len(rcts)
        out["rct_p50"] = percentile(rcts, 50)
        out["rct_p95"] = percentile(rcts, 95)
        out["rct_max"] = max(rcts)
    return out


def comparison_rows(summaries: Sequence[dict], keys: Sequence[str]) -> list[list]:
    """Rows of selected metrics for several system summaries."""
    return [
        [s.get("label", "?"), *[s.get(k, float("nan")) for k in keys]]
        for s in summaries
    ]
