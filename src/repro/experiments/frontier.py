"""The cluster serving frontier: offered load vs goodput/SLO/shed.

``aqua-repro frontier`` maps, for each routing policy, the curve from
offered load to what the cluster actually delivers: **goodput**
(SLO-good completions per second), **SLO attainment** (fraction of
completions meeting the TTFT deadline) and **shed rate** (fraction of
offered requests the router refused, by reason).  One
:func:`frontier_cell` is one sealed simulation — an NHPP open-loop
trace driven through a :class:`~repro.routing.router.GlobalRouter`
over a :class:`~repro.hardware.cluster.Cluster` of per-server serving
frontends — so the grid fans out through :mod:`repro.experiments.pool`
and memoises in the content-addressed :class:`RunCache` like every
other experiment.

Two determinism properties matter here and are locked down in
``tests/test_determinism_golden.py`` and
``tests/test_routing_properties.py``:

* every cell value (including the ledger's event digest) is a pure
  function of its kwargs + seed, so serial, ``--jobs N`` and
  warm-cache runs are byte-identical;
* all cells of one sweep share a seed and a ``rate_cap``, so their
  arrival traces are **nested** across rates (see
  :func:`repro.workloads.arrivals.nhpp_trace`) and shed-rate
  monotonicity in offered load is structural, not statistical.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.experiments.pool import RunCache, RunSpec, derive_seed, run_specs
from repro.models.llm import MISTRAL_7B
from repro.routing import (
    AdmissionController,
    GlobalRouter,
    ServerFrontend,
    SLOAwarePolicy,
    TenantClass,
    make_policy,
)
from repro.routing.policies import POLICY_NAMES
from repro.telemetry.slo import BurnRateWindow, SLObjective, SLOPolicy, SLOTracker
from repro.workloads.arrivals import (
    diurnal_shape,
    flash_crowd_shape,
    multi_region_tenants,
    nhpp_trace,
    steady_shape,
)

#: Named workload mixes: name -> (peak shape multiplier, description).
#: The peak is what sizes ``rate_cap`` for a sweep (cap >= max_rate x
#: peak keeps every thinning probability <= 1).
WORKLOADS = {
    "steady": (1.0, "constant-rate Poisson"),
    "diurnal": (1.5, "one compressed diurnal cycle per run"),
    "flash": (4.0, "steady base with a 4x flash crowd mid-run"),
    "regions": (1.5, "three equal tenants, phase-staggered diurnal"),
}

#: TTFT deadline (seconds) a completion must meet to count as goodput.
DEFAULT_TTFT_SLO = 1.0


def _workload(name: str, duration: float):
    """Resolve a workload name to ``(shape, tenants)`` for the trace."""
    if name == "steady":
        return steady_shape(), None
    if name == "diurnal":
        return diurnal_shape(period=duration), None
    if name == "flash":
        return flash_crowd_shape(at=duration / 2.0, hold=duration / 8.0), None
    if name == "regions":
        return None, multi_region_tenants(n=3, period=duration)
    raise ValueError(f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}")


def _slo_policy(server_names: Sequence[str], ttft_slo: float) -> SLOPolicy:
    """Per-server TTFT objectives the SLO-aware policy routes on.

    Short alerting windows keep the tracker's outcome horizon (and so
    its memory and scan cost) bounded to seconds of simulated time.
    """
    return SLOPolicy(
        name="frontier",
        objectives=[
            SLObjective(
                name=f"ttft:{name}",
                tenant=name,
                metric="ttft",
                threshold=ttft_slo,
                target=0.9,
            )
            for name in server_names
        ],
        windows=(BurnRateWindow(long_s=10.0, short_s=2.0, factor=6.0),),
    )


def _drive(env, router, trace):
    """Submit an open-loop trace through the router, in arrival order."""
    for tenant, request in trace:
        delay = request.arrival_time - env.now
        if delay > 0:
            yield env.timeout(delay)
        router.submit(request, tenant)


def frontier_cell(
    policy: str = "least-loaded",
    rate: float = 20.0,
    duration: float = 30.0,
    rate_cap: Optional[float] = None,
    workload: str = "diurnal",
    n_servers: int = 4,
    concurrency: int = 8,
    max_queue_depth: int = 32,
    ttft_slo: float = DEFAULT_TTFT_SLO,
    drain: float = 15.0,
    prompt_range=(16, 128),
    new_range=(8, 64),
    seed: int = 0,
) -> dict:
    """One sealed frontier point: a policy at one offered load.

    Returns a JSON-safe dict of offered/routed/shed/completed counts,
    goodput, attainment, shed rate and the ledger digest.  Sweeps must
    pass the sweep-wide ``rate_cap`` so traces nest across rates; a
    single cell may omit it (the cap then derives from its own rate).
    """
    from repro.hardware.cluster import Cluster
    from repro.sim import Environment

    shape, tenants = _workload(workload, duration)
    trace = nhpp_trace(
        rate,
        duration,
        seed=seed,
        rate_cap=rate_cap,
        shape=shape,
        tenants=tenants,
        prompt_tokens=(int(prompt_range[0]), int(prompt_range[1])),
        max_new_tokens=(int(new_range[0]), int(new_range[1])),
    )

    env = Environment()
    cluster = Cluster(env, n_servers=n_servers)
    frontends = [
        ServerFrontend(env, server, MISTRAL_7B, concurrency=concurrency)
        for server in cluster
    ]
    tracker = SLOTracker(
        env, _slo_policy([f.name for f in frontends], ttft_slo)
    )
    if policy == SLOAwarePolicy.name:
        routing = SLOAwarePolicy(
            tracker, [f"ttft:{f.name}" for f in frontends]
        )
    else:
        routing = make_policy(policy)
    admission = AdmissionController(
        tenants=[TenantClass(name=t.name) for t in (tenants or [])],
        max_queue_depth=max_queue_depth,
    )
    router = GlobalRouter(env, frontends, routing, admission, tracker=tracker)
    env.process(_drive(env, router, trace))
    env.process(router.scrape_loop(1.0))
    # Stop offering at ``duration``; drain lets queued work finish so
    # goodput reflects served requests, not an arbitrary cut-off.
    env.run(until=duration + drain)

    violations = router.check()
    ledger = router.ledger
    completions = [r for f in frontends for r in f.completed]
    good = sum(1 for r in completions if r.ttft is not None and r.ttft <= ttft_slo)
    tokens = sum(f.tokens for f in frontends)
    return {
        "policy": routing.name,
        "rate": rate,
        "rate_cap": rate_cap,
        "workload": workload,
        "duration": duration,
        "n_servers": n_servers,
        "offered": ledger.offered,
        "routed": ledger.routed,
        "completed": ledger.completed,
        "shed": dict(ledger.shed),
        "shed_total": ledger.shed_total,
        "shed_rate": ledger.shed_total / ledger.offered if ledger.offered else 0.0,
        "goodput": good / duration,
        "attainment": good / len(completions) if completions else None,
        "tokens_per_s": tokens / duration,
        "per_tenant": {
            tenant: {
                "offered": books["offered"],
                "routed": books["routed"],
                "completed": books["completed"],
                "shed": sum(books["shed"].values()),
            }
            for tenant, books in ledger.per_tenant.items()
        },
        "per_server_completed": [len(f.completed) for f in frontends],
        "ledger_digest": ledger.digest,
        "ledger_ok": not violations,
        "violations": [str(v) for v in violations],
    }


def frontier_sweep(
    rates: Sequence[float] = (8.0, 24.0, 48.0, 96.0),
    policies: Sequence[str] = POLICY_NAMES,
    duration: float = 30.0,
    workload: str = "diurnal",
    n_servers: int = 4,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    **cell_kwargs,
) -> dict:
    """The full grid: every policy at every offered load.

    One shared ``rate_cap`` (max rate x workload peak) and one shared
    seed cover the whole sweep, so all cells thin nested subsets of one
    master arrival process.  Returns ``{"grid": {policy: [cells in
    rate order]}, ...}``, JSON-safe and byte-stable across jobs/cache.
    """
    rates = sorted(rates)
    unknown = [p for p in policies if p not in POLICY_NAMES]
    if unknown:
        raise ValueError(
            f"unknown policies: {unknown}; known: {', '.join(POLICY_NAMES)}"
        )
    peak, _ = WORKLOADS[workload]
    rate_cap = max(rates) * peak
    seed = derive_seed("frontier", workload, duration, n_servers)
    specs = [
        RunSpec(
            task=f"{__name__}:frontier_cell",
            kwargs={
                "policy": policy,
                "rate": rate,
                "duration": duration,
                "rate_cap": rate_cap,
                "workload": workload,
                "n_servers": n_servers,
                **cell_kwargs,
            },
            seed=seed,
            label=f"frontier:{policy}@{rate:g}",
        )
        for policy in policies
        for rate in rates
    ]
    cache = RunCache(cache_dir) if cache_dir else None
    results = run_specs(specs, jobs=jobs, cache=cache, progress=progress)
    grid: dict[str, list] = {policy: [] for policy in policies}
    for spec, result in zip(specs, results):
        grid[spec.kwargs["policy"]].append(result.value)
    return {
        "workload": workload,
        "duration": duration,
        "n_servers": n_servers,
        "rates": list(rates),
        "rate_cap": rate_cap,
        "seed": seed,
        "grid": grid,
    }


def frontier_rows(sweep: dict) -> dict:
    """Per-policy table rows for the CLI report renderer."""
    tables = {}
    for policy, cells in sweep["grid"].items():
        tables[policy] = [
            [
                f"{cell['rate']:g}",
                cell["offered"],
                f"{cell['goodput']:.2f}",
                f"{cell['attainment']:.3f}" if cell["attainment"] is not None else "n/a",
                f"{cell['shed_rate']:.3f}",
                cell["shed"]["queue-full"],
            ]
            for cell in cells
        ]
    return tables
