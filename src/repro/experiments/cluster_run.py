"""Run a placed multi-tenant cluster as one concurrent simulation.

The paper's end-to-end evaluation (§6.1) hosts 16 models on eight
2-GPU servers, computes the mapping with AQUA-PLACER, then (on real
hardware) evaluates each server independently and sequentially.  The
simulation has no such constraint: this module instantiates an engine
per placed model — consumers wired to their paired producers through
one shared coordinator — and runs the whole cluster concurrently.

Usage::

    from repro.experiments.cluster_run import ClusterExperiment, Tenant

    tenants = [
        Tenant("opt-0", "OPT-30B", "longprompt"),
        Tenant("sd-0", "StableDiffusion-1.5", "producer", rate=2.0),
        ...
    ]
    experiment = ClusterExperiment(n_servers=8, gpus_per_server=2)
    report = experiment.run(tenants, duration=120.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aqua import AquaLib, AquaPlacer, BatchInformer, Coordinator, LlmInformer, ModelInstance
from repro.hardware import Cluster
from repro.hardware.specs import GiB
from repro.models import get_model
from repro.models.llm import LLMSpec
from repro.models import synthesize_adapters
from repro.serving import (
    BatchEngine,
    CFSEngine,
    FlexGenEngine,
    LoRACache,
    VLLMEngine,
)
from repro.sim import Environment
from repro.workloads import (
    code_summary_requests,
    long_prompt_requests,
    lora_requests,
    producer_requests,
    sharegpt_requests,
)
from repro.workloads.arrivals import submit_all

#: Workload kinds a tenant can run (Tables 1-3).
WORKLOAD_KINDS = ("longprompt", "lora", "codesummary", "sharegpt", "producer")


@dataclass
class Tenant:
    """One hosted model plus the workload its clients send.

    Attributes
    ----------
    name:
        Unique tenant identifier.
    model:
        Model registry name (e.g. ``"OPT-30B"``).
    workload:
        One of :data:`WORKLOAD_KINDS`.
    rate:
        Client request rate (req/s) where applicable.
    count:
        Number of requests to issue (defaults scale with the duration).
    memory_gib:
        Override for the placer's R_m (GiB; positive producer,
        negative consumer).  Derived from the workload when ``None``.
    """

    name: str
    model: str
    workload: str
    rate: float = 2.0
    count: Optional[int] = None
    memory_gib: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload {self.workload!r}; pick from {WORKLOAD_KINDS}"
            )

    @property
    def is_consumer_workload(self) -> bool:
        return self.workload in ("longprompt", "lora", "codesummary")

    def placement_memory_bytes(self) -> int:
        """The placer's R_m for this tenant."""
        if self.memory_gib is not None:
            return int(self.memory_gib * GiB)
        spec = get_model(self.model)
        if self.workload == "longprompt":
            return -12 * GiB
        if self.workload == "lora":
            return -8 * GiB
        if self.workload == "codesummary":
            return -10 * GiB
        if self.workload == "sharegpt":
            # Elastic LLM producer: spare KV after light traffic.
            return 25 * GiB
        # Compute-bound producer: free HBM at peak batch.
        from repro.hardware.specs import A100_80G

        batch = spec.peak_throughput_batch(A100_80G)
        return int(spec.free_memory(A100_80G, batch) * 0.8)


@dataclass
class TenantResult:
    """Outcome of one tenant's run."""

    tenant: Tenant
    engine_name: str
    role: str  # "consumer" | "producer"
    completed: int
    tokens: int
    ttft_p50: Optional[float] = None
    rct_p50: Optional[float] = None
    extras: dict = field(default_factory=dict)


class ClusterExperiment:
    """Place tenants with AQUA-PLACER and run them concurrently."""

    def __init__(
        self,
        n_servers: int,
        gpus_per_server: int = 2,
        topology: str = "p2p",
        use_aqua: bool = True,
        seed: int = 0,
    ) -> None:
        self.n_servers = n_servers
        self.gpus_per_server = gpus_per_server
        self.topology = topology
        self.use_aqua = use_aqua
        self.seed = seed

    # ------------------------------------------------------------------
    def place(self, tenants: list[Tenant]):
        instances = [
            ModelInstance(t.name, t.model, t.placement_memory_bytes())
            for t in tenants
        ]
        placer = AquaPlacer(
            n_servers=self.n_servers, gpus_per_server=self.gpus_per_server
        )
        return placer.place(instances)

    def run(self, tenants: list[Tenant], duration: float = 120.0) -> dict:
        """Place, build, and run the whole cluster for ``duration``."""
        placement = self.place(tenants)
        env = Environment()
        cluster = Cluster(
            env,
            n_servers=self.n_servers,
            gpus_per_server=self.gpus_per_server,
            topology=self.topology,
        )
        coordinator = Coordinator()
        by_name = {t.name: t for t in tenants}

        engines: dict[str, object] = {}
        libs: dict[str, AquaLib] = {}
        requests: dict[str, list] = {}

        for tenant in tenants:
            server_idx, gpu_idx = placement.gpu_of[tenant.name]
            server = cluster.servers[server_idx]
            gpu = server.gpus[gpu_idx]
            engines[tenant.name], libs[tenant.name] = self._build_engine(
                tenant, gpu, server, coordinator
            )

        if self.use_aqua:
            for consumer, producer in placement.pairs:
                consumer_lib = libs.get(consumer)
                producer_lib = libs.get(producer)
                if consumer_lib is not None and producer_lib is not None:
                    coordinator.pair(consumer_lib.name, producer_lib.name)

        for engine in engines.values():
            engine.start()
        env.run(until=1.0)  # producers donate before client traffic

        for tenant in tenants:
            requests[tenant.name] = self._make_requests(tenant, duration)
            submit_all(env, engines[tenant.name], requests[tenant.name])
        env.run(until=1.0 + duration)

        results = [
            self._summarize(by_name[name], engines[name], requests[name])
            for name in engines
        ]
        return {
            "placement": placement,
            "results": {r.tenant.name: r for r in results},
            "duration": duration,
        }

    # ------------------------------------------------------------------
    def _build_engine(self, tenant: Tenant, gpu, server, coordinator):
        spec = get_model(tenant.model)
        name = f"{tenant.name}"
        if tenant.workload == "producer":
            lib = None
            if self.use_aqua:
                lib = AquaLib(gpu, server, coordinator, informer=BatchInformer())
            engine = BatchEngine(gpu, server, spec, aqua_lib=lib, name=name)
            return engine, lib

        if not isinstance(spec, LLMSpec):
            raise ValueError(
                f"{tenant.model} cannot run LLM workload {tenant.workload!r}"
            )

        if tenant.workload == "sharegpt":
            lib = None
            if self.use_aqua:
                lib = AquaLib(gpu, server, coordinator, informer=LlmInformer())
            engine = VLLMEngine(
                gpu, server, spec, aqua_lib=lib, inform_every=4, name=name
            )
            return engine, lib

        lib = AquaLib(gpu, server, coordinator, gather_enabled=self.use_aqua)
        if tenant.workload == "longprompt":
            engine = FlexGenEngine(
                gpu, server, spec, aqua_lib=lib, workspace_tokens=8000, name=name
            )
        elif tenant.workload == "codesummary":
            engine = CFSEngine(
                gpu,
                server,
                spec,
                use_aqua=self.use_aqua,
                aqua_lib=lib if self.use_aqua else None,
                slice_tokens=5,
                name=name,
            )
            if not self.use_aqua:
                lib = None
        else:  # lora
            cache = LoRACache(
                gpu,
                server,
                capacity_bytes=10 * 320 * 10**6,
                aqua_lib=lib if self.use_aqua else None,
                whole_copy=self.use_aqua,
                name=f"{name}-lora",
            )
            engine = VLLMEngine(
                gpu, server, spec, lora_cache=cache, name=name
            )
            if not self.use_aqua:
                lib = None
        return engine, lib

    def _make_requests(self, tenant: Tenant, duration: float) -> list:
        seed = self.seed + tenant.name.__hash__() % 10_000
        count = tenant.count or max(1, int(tenant.rate * duration * 0.8))
        if tenant.workload == "longprompt":
            return long_prompt_requests(start=1.0)
        if tenant.workload == "codesummary":
            return code_summary_requests(tenant.rate, count, seed=seed, start=1.0)
        if tenant.workload == "sharegpt":
            return sharegpt_requests(tenant.rate, count, seed=seed, start=1.0)
        if tenant.workload == "lora":
            adapters = synthesize_adapters(30, 320 * 10**6, prefix=tenant.name)
            return lora_requests(adapters, tenant.rate, count, seed=seed, start=1.0)
        return producer_requests(tenant.rate, count, seed=seed, start=1.0)

    def _summarize(self, tenant: Tenant, engine, reqs: list) -> TenantResult:
        from repro.serving.metrics import percentile

        done = [r for r in reqs if r.done]
        ttfts = [r.ttft for r in done if r.ttft is not None]
        rcts = [r.rct for r in done if r.rct is not None]
        return TenantResult(
            tenant=tenant,
            engine_name=engine.name,
            role="consumer" if tenant.is_consumer_workload else "producer",
            completed=len(done),
            tokens=engine.metrics.tokens_generated,
            ttft_p50=percentile(ttfts, 50) if ttfts else None,
            rct_p50=percentile(rcts, 50) if rcts else None,
        )


def balanced_tenants() -> list[Tenant]:
    """The paper's *balanced* 16-model split (§6.1): equal thirds of
    image, audio and language models, sampled with replacement."""
    return [
        Tenant("sd-0", "StableDiffusion-1.5", "producer", rate=2.0),
        Tenant("sdxl-0", "StableDiffusion-XL", "producer", rate=1.0),
        Tenant("kandinsky-0", "Kandinsky-2.2", "producer", rate=1.5),
        Tenant("sd-1", "StableDiffusion-1.5", "producer", rate=2.0),
        Tenant("sdxl-1", "StableDiffusion-XL", "producer", rate=1.0),
        Tenant("audiogen-0", "AudioGen", "producer", rate=2.0),
        Tenant("musicgen-0", "MusicGen", "producer", rate=1.0),
        Tenant("audiogen-1", "AudioGen", "producer", rate=2.0),
        Tenant("opt-0", "OPT-30B", "longprompt"),
        Tenant("opt-1", "OPT-30B", "longprompt"),
        Tenant("codellama-0", "CodeLlama-34B", "codesummary", rate=2.0),
        Tenant("codellama-1", "CodeLlama-34B", "codesummary", rate=2.0),
        Tenant("mistral-lora-0", "Mistral-7B", "lora", rate=4.0),
        Tenant("mistral-lora-1", "Mistral-7B", "lora", rate=4.0),
        Tenant("llama-chat-0", "Llama-2-13B", "sharegpt", rate=1.0),
        Tenant("mistral-chat-0", "Mistral-7B", "sharegpt", rate=1.0),
    ]


def llm_heavy_tenants() -> list[Tenant]:
    """The paper's *LLM-heavy* split: all models are LLMs with varying
    workloads — busy consumers next to lightly loaded elastic producers."""
    tenants = []
    for i in range(4):
        tenants.append(Tenant(f"opt-{i}", "OPT-30B", "longprompt"))
        tenants.append(Tenant(f"code-{i}", "CodeLlama-34B", "codesummary", rate=2.0))
    for i in range(8):
        model = "Llama-2-13B" if i % 2 == 0 else "Mistral-7B"
        tenants.append(Tenant(f"idle-{i}", model, "sharegpt", rate=1.0))
    return tenants
