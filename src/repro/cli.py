"""Command-line interface: run any paper experiment from the shell.

Examples::

    aqua-repro list
    aqua-repro fig07 --duration 120
    aqua-repro fig09 --rates 2 5 --count 50
    aqua-repro fig14 --gpus 16 32 64 128
    aqua-repro tables
    aqua-repro replicate --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Optional

from repro.experiments import figures, report


def _print(obj) -> None:
    print(json.dumps(obj, indent=2, default=str))


def cmd_fig01(args) -> None:
    result = figures.fig01_motivation(rate=args.rate, count=args.count)
    rows = []
    for label, data in result.items():
        s = data["summary"]
        rows.append(
            [
                label,
                s.get("ttft_mean"),
                s.get("ttft_p95"),
                s.get("rct_mean"),
                s.get("rct_p95"),
            ]
        )
    print(
        report.format_table(
            ["system", "ttft_mean_s", "ttft_p95_s", "rct_mean_s", "rct_p95_s"],
            rows,
            title=f"Figure 1: responsiveness vs throughput ({args.rate} req/s)",
        )
    )


def cmd_fig02(args) -> None:
    result = figures.fig02_contention()
    for model, rows in result.items():
        print(
            report.format_table(
                ["batch", "throughput/s", "free_GiB"],
                [[r["batch"], r["throughput"], r["free_gib"]] for r in rows],
                title=f"Figure 2: {model}",
            )
        )
        print()


def cmd_fig03(args) -> None:
    bw = figures.fig03a_interconnect_bandwidth()
    print(
        report.format_table(
            ["size_bytes", "NVLink_GB/s", "PCIe_GB/s"],
            [[r["size_bytes"], r["nvlink_gbps"], r["pcie_gbps"]] for r in bw["rows"]],
            title="Figure 3a: effective bandwidth vs transfer size",
        )
    )
    impact = figures.fig03b_sharing_impact(duration=args.duration)
    print()
    print(
        report.format_table(
            ["isolated/s", "shared/s", "impact"],
            [
                [
                    impact["isolated_throughput"],
                    impact["shared_throughput"],
                    f"{impact['impact_fraction']:.1%}",
                ]
            ],
            title="Figure 3b: producer throughput while donating memory",
        )
    )


def cmd_fig07(args) -> None:
    result = figures.fig07_longprompt(duration=args.duration, jobs=args.jobs)
    print(
        report.format_table(
            ["system", "tokens", "speedup"],
            [[k, v["tokens"], v["speedup"]] for k, v in result.items()],
            title=f"Figure 7: long-prompt tokens in {args.duration:.0f}s",
        )
    )


def cmd_fig08(args) -> None:
    result = figures.fig08_lora(rate=args.rate, count=args.count)
    rows = []
    for label, data in result.items():
        s = data["summary"]
        rows.append([label, s.get("rct_p50"), s.get("rct_mean"), s.get("rct_p95")])
    print(
        report.format_table(
            ["system", "rct_p50_s", "rct_mean_s", "rct_p95_s"],
            rows,
            title="Figure 8: LoRA adapter serving",
        )
    )


def cmd_fig09(args) -> None:
    result = figures.fig09_cfs(
        rates=tuple(args.rates), count=args.count, jobs=args.jobs
    )
    for rate, systems in result.items():
        rows = []
        for label, data in systems.items():
            s = data["summary"]
            rows.append(
                [label, s.get("ttft_mean"), s.get("ttft_p95"), s.get("rct_mean")]
            )
        print(
            report.format_table(
                ["system", "ttft_mean_s", "ttft_p95_s", "rct_mean_s"],
                rows,
                title=f"Figure 9: CFS responsiveness at {rate} req/s",
            )
        )
        print()


def cmd_fig10(args) -> None:
    result = figures.fig10_elastic()
    print("Figure 10: elastic memory sharing")
    print(f"consumer tokens total: {result['consumer_tokens_total']}")
    samples = result["free_memory_gib"]
    step = max(1, len(samples) // 20)
    print(
        report.format_table(
            ["t_s", "engine_free_GiB"],
            [[f"{t:.0f}", v] for t, v in samples[::step]],
        )
    )


def cmd_fig11(args) -> None:
    result = figures.fig11_producer_overhead()
    base, aqua = result["baseline"], result["aqua"]

    def mid(xs):
        return xs[len(xs) // 2] if xs else float("nan")

    print(
        report.format_table(
            ["system", "completed", "rct_p50_s", "rct_max_s"],
            [
                ["baseline", len(base), mid(base), max(base, default=float("nan"))],
                ["aqua-producer", len(aqua), mid(aqua), max(aqua, default=float("nan"))],
            ],
            title="Figure 11: producer-side overhead of donating memory",
        )
    )


def cmd_fig12(args) -> None:
    result = figures.fig12_tensor_size(count=args.count, jobs=args.jobs)
    rows = []
    for size, data in result.items():
        rows.append(
            [
                size,
                data["baseline"]["summary"].get("rct_mean"),
                data["aqua"]["summary"].get("rct_mean"),
                data["rct_mean_saved"],
            ]
        )
    print(
        report.format_table(
            ["adapter", "baseline_rct_s", "aqua_rct_s", "saved_s"],
            rows,
            title="Figure 12: AQUA benefit vs offloaded tensor size",
        )
    )


def cmd_fig13(args) -> None:
    result = figures.fig13_chatbot(n_users=args.users, turns=args.turns)
    rows = []
    for label, data in result.items():
        s = data["summary"]
        rows.append(
            [
                label,
                data["turns_completed"],
                s.get("ttft_mean"),
                s.get("rct_mean"),
                s.get("rct_max"),
            ]
        )
    print(
        report.format_table(
            ["system", "turns", "ttft_mean_s", "rct_mean_s", "rct_max_s"],
            rows,
            title="Figure 13: chatbot responsiveness over turns",
        )
    )


def cmd_fig14(args) -> None:
    result = figures.fig14_placer_convergence(gpu_counts=tuple(args.gpus))
    print(
        report.format_table(
            ["gpus", "mixed_s", "llm5050_s"],
            [
                [r["gpus"], r["mixed_seconds"], r["llm5050_seconds"]]
                for r in result["rows"]
            ],
            title="Figure 14: AQUA-PLACER convergence time",
        )
    )


def cmd_fig18(args) -> None:
    result = figures.fig18_nvswitch_stress(duration=args.duration)
    print("Figure 18: NVSwitch stress (4 consumers + 4 producers)")
    print(f"per-consumer tokens: {result['per_consumer_tokens']}")
    print(f"2-GPU reference:     {result['two_gpu_reference_tokens']}")


def cmd_resilience(args) -> int:
    from repro.experiments.resilience import resilience_experiment
    from repro.faults import FaultSchedule

    schedule = FaultSchedule.from_file(args.faults) if args.faults else None
    result = resilience_experiment(
        schedule=schedule,
        duration=args.duration,
        audit=args.audit,
        jobs=args.jobs,
        scrape_interval=_resolve_scrape_interval(args),
        postmortem_dir=args.postmortem_dir,
    )
    print("Resilience: goodput under faults (FlexGen consumer, LLM producer)")
    for entry in result["fault_log"]:
        print(f"  t={entry['t']:7.2f}  {entry['event']}  {entry['target']}")
    rec = result["recovery_time_s"]
    print(
        report.format_table(
            ["metric", "value"],
            [
                ["pre-fault goodput (tok/s)", f"{result['pre_fault_goodput']:.2f}"],
                ["post-fault goodput (tok/s)", f"{result['post_fault_goodput']:.2f}"],
                [
                    "post-fault vs fault-free control",
                    f"{result['post_fault_goodput_ratio']:.2f}x"
                    if result["post_fault_goodput_ratio"] is not None
                    else "n/a",
                ],
                [
                    "recovery time after all-clear (s)",
                    f"{rec:.1f}" if rec is not None else "not recovered",
                ],
                ["transfer retries", result["retries"]],
                ["requests re-queued", result["requeues"]],
                ["tensors lost", result["lost_tensors"]],
                ["requests dropped", result["dropped_requests"]],
                ["tokens generated", result["tokens_total"]],
            ],
        )
    )
    if args.trace:
        result["tracer"].export_json(args.trace)
        print(f"trace written to {args.trace}")
    if result.get("observability") is not None:
        _print_observability(
            result["observability"], args.dashboard, result.get("dashboard_data")
        )
    if args.audit:
        return _print_audit_reports(result["audit"])
    return 0


def _print_audit_reports(reports: dict) -> int:
    """Print per-run audit outcomes; non-zero when any invariant broke."""
    failed = 0
    for run, report in reports.items():
        status = "clean" if report["ok"] else f"{len(report['violations'])} violation(s)"
        print(
            f"audit[{run}]: {status} "
            f"({report['checks']} checkpoints, "
            f"{report['transfers_observed']} transfers, "
            f"digest {report['digest'][:16]}…)"
        )
        for violation in report["violations"]:
            print(f"  {violation}")
        failed += 0 if report["ok"] else 1
    return 1 if failed else 0


def cmd_audit(args) -> int:
    """Conservation-audit smoke run.

    Runs the resilience scenario (faults included) twice under the
    invariant monitor: every checkpoint must come up clean, and the two
    identical runs must produce byte-identical event digests (the
    determinism law).
    """
    from repro.experiments.resilience import resilience_experiment

    print(f"audit smoke: 2 identical resilience runs, {args.duration:.0f}s each")
    first = resilience_experiment(duration=args.duration, audit=True)
    second = resilience_experiment(duration=args.duration, audit=True)
    rc = _print_audit_reports(first["audit"])

    digests_first = {run: r["digest"] for run, r in first["audit"].items()}
    digests_second = {run: r["digest"] for run, r in second["audit"].items()}
    if digests_first == digests_second:
        print("determinism: identical runs produced identical digests")
    else:
        print("determinism: DIGEST MISMATCH between identical runs")
        for run in digests_first:
            print(f"  {run}: {digests_first[run]} vs {digests_second[run]}")
        rc = 1
    return rc


def cmd_observe(args) -> int:
    """One telemetered run: trace + metrics + latency attribution."""
    from repro.experiments.observe import observe_experiment
    from repro.telemetry import COMPONENTS

    result = observe_experiment(
        duration=args.duration,
        faults=not args.no_faults,
        scrape_interval=_resolve_scrape_interval(args),
        postmortem_dir=args.postmortem_dir,
    )
    rep = result["report"]

    print(f"Observe: telemetered offloading run ({args.duration:.0f}s simulated)")
    for entry in result["fault_log"]:
        print(f"  t={entry['t']:7.2f}  {entry['event']}  {entry['target']}")
    rows = []
    for component in COMPONENTS:
        agg = rep["aggregates"][component]
        rows.append(
            [
                component,
                f"{agg['mean']:.3f}",
                f"{agg['p50']:.3f}",
                f"{agg['p99']:.3f}",
            ]
        )
    print(
        report.format_table(
            ["component", "mean_s", "p50_s", "p99_s"],
            rows,
            title=f"Latency attribution over {rep['count']} finished request(s)",
        )
    )

    telemetry = result["telemetry"]
    if args.trace:
        telemetry.tracer.export_json(args.trace)
        print(f"trace written to {args.trace}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(result["prometheus"])
        print(f"metrics written to {args.metrics}")
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(rep, fh, indent=2)
        print(f"attribution report written to {args.report}")
    if "observability" in result:
        _print_observability(
            result["observability"], args.dashboard, result.get("dashboard_data")
        )
    return 0


def cmd_tables(args) -> None:
    for title, rows in (
        ("Table 1: LLM jobs with memory deficit", figures.table1_deficit_jobs()),
        ("Table 2: LLM jobs with excess memory", figures.table2_excess_llm_jobs()),
        ("Table 3: image/audio producers", figures.table3_producer_jobs()),
    ):
        print(
            report.format_table(
                ["model", "workload", "engine"],
                [[r["model"], r["workload"], r["engine"]] for r in rows],
                title=title,
            )
        )
        print()


def cmd_e2e(args) -> None:
    _print(figures.e2e_cluster_placement())


def cmd_all(args) -> None:
    from repro.experiments.runall import run_all

    run_all(
        args.out,
        only=args.only or None,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
    )


def cmd_bench(args) -> int:
    from repro import benchmarks

    if args.list:
        for name in benchmarks.SCENARIOS:
            primary = benchmarks.PRIMARY_METRIC.get(name, "-")
            print(f"{name}  (primary metric: {primary})")
        return 0

    out_path = args.out or f"BENCH_{benchmarks.BENCH_INDEX}.json"
    doc = benchmarks.run_bench(
        args.scenarios or None,
        quick=args.quick,
        jobs=args.jobs,
        scheduler=args.scheduler,
        transfer_fastpath=args.transfer_fastpath,
    )
    rows = []
    for name, metrics in doc["scenarios"].items():
        primary = benchmarks.PRIMARY_METRIC.get(name)
        for key, value in metrics.items():
            if isinstance(value, float):
                shown = f"{value:,.0f}" if value >= 1000 else f"{value:.4g}"
            else:
                shown = value
            rows.append([name if key == next(iter(metrics)) else "", key, shown])
        if primary:
            rows.append(["", "", ""])
    print(
        report.format_table(
            ["scenario", "metric", "value"],
            rows,
            title=f"aqua-repro bench ({'quick' if args.quick else 'full'})",
        )
    )
    kernel = doc["scenarios"].get("kernel")
    if kernel:
        base = doc["baseline"]["kernel_events_per_s"]
        speedup = kernel["events_per_s"] / base
        print(
            f"kernel: {kernel['events_per_s']:,.0f} events/s vs recorded "
            f"pre-fast-path baseline {base:,.0f} ({speedup:.2f}x)"
        )
        if "token_steps_per_s" in kernel:
            print(
                f"kernel (coarsened x{kernel['coarsen']}): "
                f"{kernel['token_steps_per_s']:,.0f} modeled token-steps/s "
                f"({kernel['token_steps_per_s'] / base:,.2f}x baseline)"
            )
    print(f"peak RSS: {doc['peak_rss_bytes'] / 2**20:,.0f} MiB")

    benchmarks.write_bench(doc, out_path)
    print(f"bench results written to {out_path}")

    if args.baseline:
        baseline_doc = benchmarks.load_bench(args.baseline)
        regressions, lines = benchmarks.compare_bench(
            doc, baseline_doc, tolerance=args.tolerance
        )
        print(f"comparison against {args.baseline} (tolerance {args.tolerance:.0%}):")
        for line in lines:
            print(f"  {line}")
        if regressions:
            print(f"{len(regressions)} scenario(s) regressed")
            return 1
        print("no regressions")
    return 0


def cmd_replicate(args) -> int:
    """One-command verdict: does this repo still reproduce the paper?"""
    from repro import evals

    if args.list:
        for claim in evals.get_claims():
            print(f"{claim.id:32s} {claim.figure:18s} cells: {', '.join(claim.experiments)}")
        return 0

    doc = evals.replicate(
        only=args.only or None,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        progress=print,
    )
    print(evals.render_text(doc))
    out_path = evals.write_replication(doc, args.out)
    print(f"replication document written to {out_path}")
    if args.report:
        evals.write_markdown(doc, args.report)
        print(f"markdown report written to {args.report}")
    return 1 if doc["summary"]["verdict"] == "FAIL" else 0


def cmd_sweep(args) -> None:
    from repro.experiments.sweep import sweep_request_rate, sweep_rows

    points = sweep_request_rate(
        rates=tuple(args.rates), count=args.count, jobs=args.jobs
    )
    print(
        report.format_table(
            [
                "rate",
                "vllm_ttft_p95",
                "cfs_ttft_p95",
                "aqua_ttft_p95",
                "cfs_rct_penalty",
                "aqua_rct_penalty",
            ],
            sweep_rows(points),
            title="Scheduler trade-offs vs request rate",
        )
    )


def cmd_frontier(args) -> int:
    """Cluster serving frontier: offered load vs goodput/SLO/shed."""
    from repro.experiments.frontier import frontier_rows, frontier_sweep

    sweep = frontier_sweep(
        rates=tuple(args.rates),
        policies=tuple(args.policies),
        duration=args.duration,
        workload=args.workload,
        n_servers=args.servers,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        progress=print,
    )
    for policy, rows in frontier_rows(sweep).items():
        print(
            report.format_table(
                ["rate", "offered", "goodput/s", "attainment", "shed_rate", "q_full"],
                rows,
                title=(
                    f"Frontier: {policy} over {args.servers} servers "
                    f"({args.workload} workload, {args.duration:.0f}s)"
                ),
            )
        )
        print()
    bad = [
        cell
        for cells in sweep["grid"].values()
        for cell in cells
        if not cell["ledger_ok"]
    ]
    if bad:
        for cell in bad:
            print(f"LEDGER VIOLATIONS in {cell['policy']}@{cell['rate']:g}:")
            for violation in cell["violations"]:
                print(f"  {violation}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(sweep, fh, indent=1)
        print(f"frontier sweep written to {args.out}")
    return 1 if bad else 0


COMMANDS: dict[str, Callable] = {
    "fig01": cmd_fig01,
    "fig02": cmd_fig02,
    "fig03": cmd_fig03,
    "fig07": cmd_fig07,
    "fig08": cmd_fig08,
    "fig09": cmd_fig09,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "fig13": cmd_fig13,
    "fig14": cmd_fig14,
    "fig18": cmd_fig18,
    "resilience": cmd_resilience,
    "observe": cmd_observe,
    "audit": cmd_audit,
    "tables": cmd_tables,
    "e2e": cmd_e2e,
    "all": cmd_all,
    "sweep": cmd_sweep,
    "frontier": cmd_frontier,
    "bench": cmd_bench,
    "replicate": cmd_replicate,
}


def _add_jobs_argument(
    parser: argparse.ArgumentParser, default: Optional[int] = None
) -> argparse.ArgumentParser:
    """Uniform ``--jobs N`` fan-out flag (see ``docs/parallelism.md``).

    ``default=None`` resolves to one worker per CPU; ``--jobs 1``
    preserves the serial path exactly.  ``bench`` overrides the default
    to 1 because concurrent benchmark repeats contend for cores and
    contaminate the timings they exist to measure.
    """
    from repro.experiments.pool import default_jobs

    parser.add_argument(
        "--jobs",
        type=int,
        default=default if default is not None else default_jobs(),
        metavar="N",
        help="worker processes for independent simulations "
        "(default: %(default)s; 1 = serial)",
    )
    return parser


def _add_trace_argument(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Uniform ``--trace`` export, shared by every experiment command.

    Commands whose handlers export their own tracer (``resilience``,
    ``observe``) declare it themselves; everything else gets an ambient
    :func:`repro.telemetry.capture_trace` wrapped around the run by
    :func:`main`.
    """
    parser.add_argument(
        "--trace", metavar="trace.json", help="write a Chrome trace of the run"
    )
    return _add_observability_arguments(parser)


def _add_observability_arguments(
    parser: argparse.ArgumentParser,
) -> argparse.ArgumentParser:
    """Uniform ``--scrape-interval`` / ``--dashboard`` observability flags.

    ``resilience`` and ``observe`` handle the flags themselves (their
    experiments return observability exports directly); every other
    command gets an ambient :func:`repro.telemetry.capture_observability`
    wrapped around the run by :func:`main`.  Like ``--trace``, the
    ambient spec does not cross process boundaries — combine with
    ``--jobs 1`` on pooled commands to scrape the rigs in-process.
    """
    parser.add_argument(
        "--scrape-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="scrape metrics into time series every N simulated seconds "
        "(enables the SLO tracker and flight recorder)",
    )
    parser.add_argument(
        "--dashboard",
        metavar="out.html",
        help="write a self-contained HTML dashboard of the scraped run "
        "(implies --scrape-interval 1.0 unless set)",
    )
    return parser


def _resolve_scrape_interval(args) -> Optional[float]:
    """``--dashboard`` without ``--scrape-interval`` implies 1 s scrapes."""
    if args.scrape_interval is not None:
        return args.scrape_interval
    return 1.0 if args.dashboard else None


def _print_observability(obs: dict, dashboard_path: Optional[str],
                         dashboard_data: Optional[dict]) -> None:
    """Shared alert/bundle summary + dashboard export for CLI handlers."""
    slo = obs.get("slo")
    if slo is not None:
        alerts = slo.get("alerts", [])
        print(f"SLO burn-rate alerts: {len(alerts)}")
        for alert in alerts:
            print(
                f"  t={alert['t']:7.2f}  {alert['slo']} [{alert['severity']}] "
                f"burn {alert['burn_long']:.1f}x/{alert['burn_short']:.1f}x"
            )
    recorder = obs.get("recorder")
    if recorder is not None:
        for bundle in recorder.get("bundles", []):
            where = bundle.get("path", "(in memory)")
            print(
                f"  post-mortem #{bundle['seq']} at t={bundle['t']:.2f} "
                f"({bundle['reason']}): {where}"
            )
    if dashboard_path and dashboard_data is not None:
        from repro.telemetry import render_dashboard

        with open(dashboard_path, "w") as fh:
            fh.write(render_dashboard(dashboard_data))
        print(f"dashboard written to {dashboard_path}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aqua-repro",
        description="Reproduce the AQUA paper's figures on simulated hardware.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")

    p = _add_trace_argument(
        sub.add_parser("fig01", help="motivation: TTFT/RCT per scheduler")
    )
    p.add_argument("--rate", type=float, default=5.0)
    p.add_argument("--count", type=int, default=60)

    _add_trace_argument(
        sub.add_parser("fig02", help="resource contention vs batch size")
    )

    p = _add_trace_argument(
        sub.add_parser("fig03", help="interconnect bandwidth + sharing impact")
    )
    p.add_argument("--duration", type=float, default=60.0)

    p = _add_trace_argument(sub.add_parser("fig07", help="long-prompt throughput"))
    p.add_argument("--duration", type=float, default=120.0)
    _add_jobs_argument(p)

    p = _add_trace_argument(sub.add_parser("fig08", help="LoRA adapter RCTs"))
    p.add_argument("--rate", type=float, default=5.0)
    p.add_argument("--count", type=int, default=100)

    p = _add_trace_argument(sub.add_parser("fig09", help="CFS responsiveness"))
    p.add_argument("--rates", type=float, nargs="+", default=[2.0, 5.0])
    p.add_argument("--count", type=int, default=50)
    _add_jobs_argument(p)

    _add_trace_argument(
        sub.add_parser("fig10", help="elastic memory sharing timeline")
    )
    _add_trace_argument(sub.add_parser("fig11", help="producer overhead"))

    p = _add_trace_argument(sub.add_parser("fig12", help="benefit vs tensor size"))
    p.add_argument("--count", type=int, default=200)
    _add_jobs_argument(p)

    p = _add_trace_argument(
        sub.add_parser("fig13", help="chatbot long-term responsiveness")
    )
    p.add_argument("--users", type=int, default=25)
    p.add_argument("--turns", type=int, default=4)

    p = _add_trace_argument(sub.add_parser("fig14", help="placer convergence time"))
    p.add_argument("--gpus", type=int, nargs="+", default=[16, 32, 64, 128])

    p = _add_trace_argument(sub.add_parser("fig18", help="NVSwitch stress"))
    p.add_argument("--duration", type=float, default=60.0)

    p = sub.add_parser("resilience", help="goodput under injected faults")
    p.add_argument(
        "--faults",
        metavar="schedule.json",
        help="fault schedule JSON (default: the documented built-in scenario)",
    )
    p.add_argument("--duration", type=float, default=160.0)
    _add_trace_argument(p)
    _add_jobs_argument(p)
    p.add_argument(
        "--audit",
        action="store_true",
        help="run the conservation audit alongside; non-zero exit on violations",
    )
    p.add_argument(
        "--postmortem-dir",
        metavar="DIR",
        help="write flight-recorder post-mortem bundles here "
        "(requires --scrape-interval)",
    )

    p = sub.add_parser(
        "observe",
        help="telemetered run: causal trace + metrics + latency attribution",
    )
    p.add_argument("--duration", type=float, default=45.0)
    _add_trace_argument(p)
    p.add_argument(
        "--metrics",
        metavar="metrics.prom",
        help="write metrics in Prometheus text exposition format",
    )
    p.add_argument(
        "--report",
        metavar="report.json",
        help="write the latency-attribution report as JSON",
    )
    p.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the demo DMA-stall injection",
    )
    p.add_argument(
        "--postmortem-dir",
        metavar="DIR",
        help="write flight-recorder post-mortem bundles here "
        "(requires --scrape-interval)",
    )

    p = sub.add_parser(
        "audit", help="conservation-audit smoke run (invariants + determinism)"
    )
    p.add_argument("--duration", type=float, default=60.0)

    sub.add_parser("tables", help="workload inventory (Tables 1-3)")
    _add_trace_argument(
        sub.add_parser("e2e", help="cluster placement (balanced vs LLM-heavy)")
    )

    p = sub.add_parser("all", help="run every experiment, write JSON results")
    p.add_argument("--out", default="results")
    p.add_argument("--only", nargs="*", help="subset of experiment names")
    _add_jobs_argument(p)
    p.add_argument(
        "--cache-dir",
        default=".aqua-cache",
        metavar="DIR",
        help="content-addressed run cache location (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every experiment, bypassing the run cache",
    )

    p = sub.add_parser(
        "replicate",
        help="score every paper claim PASS/FAIL/SKIP (see docs/replication.md)",
    )
    p.add_argument(
        "--only",
        nargs="*",
        metavar="CLAIM",
        help="claim ids, id prefixes or experiment names (default: all claims)",
    )
    p.add_argument(
        "--out",
        default="REPLICATION.json",
        metavar="REPLICATION.json",
        help="where to write the scored document (default: %(default)s)",
    )
    p.add_argument(
        "--report",
        metavar="report.md",
        help="also write a human-readable markdown report",
    )
    p.add_argument(
        "--cache-dir",
        default=".aqua-cache",
        metavar="DIR",
        help="content-addressed run cache location (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every experiment cell, bypassing the run cache",
    )
    p.add_argument("--list", action="store_true", help="list claims and exit")
    _add_jobs_argument(p)

    p = _add_trace_argument(
        sub.add_parser("sweep", help="scheduler trade-offs across request rates")
    )
    p.add_argument("--rates", type=float, nargs="+", default=[1.0, 2.0, 4.0, 6.0])
    p.add_argument("--count", type=int, default=40)
    _add_jobs_argument(p)

    p = sub.add_parser(
        "frontier",
        help="cluster serving frontier: goodput/SLO/shed vs offered load "
        "per routing policy (see docs/frontier.md)",
    )
    p.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[8.0, 24.0, 48.0, 96.0],
        help="offered loads in req/s (default: %(default)s)",
    )
    p.add_argument(
        "--policies",
        nargs="+",
        default=["round-robin", "least-loaded", "session-affinity", "slo-aware"],
        choices=["round-robin", "least-loaded", "session-affinity", "slo-aware"],
        help="routing policies to sweep (default: all four)",
    )
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument(
        "--servers", type=int, default=4, help="cluster size (default: %(default)s)"
    )
    p.add_argument(
        "--workload",
        choices=["steady", "diurnal", "flash", "regions"],
        default="diurnal",
        help="arrival-rate shape / tenant mix (default: %(default)s)",
    )
    p.add_argument(
        "--out",
        metavar="frontier.json",
        help="also write the full sweep as JSON",
    )
    p.add_argument(
        "--cache-dir",
        default=".aqua-cache",
        metavar="DIR",
        help="content-addressed run cache location (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every frontier cell, bypassing the run cache",
    )
    _add_jobs_argument(p)

    p = sub.add_parser(
        "bench", help="simulator performance benchmarks (see docs/performance.md)"
    )
    p.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names to run (default: all; see --list)",
    )
    p.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke runs"
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="BENCH.json",
        help="where to write the results document (default: BENCH_<pr>.json)",
    )
    p.add_argument(
        "--baseline",
        metavar="BENCH.json",
        help="earlier results to gate against; non-zero exit on regression",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown before a scenario counts as regressed",
    )
    p.add_argument("--list", action="store_true", help="list scenarios and exit")
    p.add_argument(
        "--scheduler",
        choices=["heap", "calendar"],
        default="heap",
        help=(
            "kernel schedule backend: the default binary heap, or the "
            "calendar queue for high event density (docs/performance.md)"
        ),
    )
    p.add_argument(
        "--transfer-fastpath",
        action="store_true",
        help=(
            "run scenarios with the analytic channel-timeline DMA fast "
            "path (semantics-identical; see docs/performance.md) — "
            "recorded per scenario, and the regression gate never "
            "compares across the toggle"
        ),
    )
    _add_jobs_argument(p, default=1)
    return parser


def main(argv=None) -> int:
    from contextlib import ExitStack

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        for name in sorted(COMMANDS):
            print(name)
        return 0
    # resilience/observe thread the uniform flags through their
    # experiments themselves; every other command gets ambient captures
    # wrapped around the run (see capture_trace/capture_observability).
    ambient = args.command not in ("resilience", "observe")
    trace_path = getattr(args, "trace", None) if ambient else None
    scrape_interval = (
        _resolve_scrape_interval(args)
        if ambient and hasattr(args, "scrape_interval")
        else None
    )
    obs_spec = None
    with ExitStack() as stack:
        if trace_path:
            from repro.telemetry import capture_trace

            stack.enter_context(capture_trace(trace_path))
        if scrape_interval is not None:
            from repro.telemetry import capture_observability
            from repro.telemetry.slo import default_slo_policy

            obs_spec = stack.enter_context(
                capture_observability(
                    scrape_interval=scrape_interval,
                    slo_policy=default_slo_policy(),
                )
            )
        rc = COMMANDS[args.command](args)
    if trace_path:
        print(f"trace written to {trace_path}")
    if obs_spec is not None:
        hubs = obs_spec["hubs"]
        if not hubs:
            print(
                "observability: no rig ran in-process (pooled commands "
                "need --jobs 1 for --scrape-interval/--dashboard)"
            )
        else:
            # Several rigs may have adopted the spec (multi-system
            # figures); summarise and chart the busiest one.
            from repro.telemetry.dashboard import dashboard_data

            hub = max(hubs, key=lambda h: h.scraper.scrapes)
            _print_observability(
                hub.observability_report(),
                args.dashboard,
                dashboard_data(hub, title=f"aqua-repro {args.command}"),
            )
    return int(rc or 0)


if __name__ == "__main__":
    sys.exit(main())
