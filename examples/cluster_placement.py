"""Placing a mixed model fleet on a GPU cluster with AQUA-PLACER.

Takes the paper's §6.1 scenario — sixteen generative models of three
modalities to host on eight 2-GPU servers — and runs Algorithm 1: the
MILP assigns models to servers so memory supply meets demand, then
per-server stable matching pairs each memory-bound LLM with exactly one
memory-rich producer.

Run:  python examples/cluster_placement.py
"""

from repro.aqua import AquaPlacer, ModelInstance
from repro.experiments.report import format_table
from repro.hardware.specs import GiB

# The fleet: positive memory = producer (spare HBM it can donate),
# negative = consumer (deficit its workload needs covered).
FLEET = [
    ModelInstance("sd-0", "StableDiffusion-1.5", 50 * GiB),
    ModelInstance("sd-1", "StableDiffusion-XL", 45 * GiB),
    ModelInstance("kandinsky-0", "Kandinsky-2.2", 46 * GiB),
    ModelInstance("audiogen-0", "AudioGen", 40 * GiB),
    ModelInstance("audiogen-1", "AudioGen", 40 * GiB),
    ModelInstance("musicgen-0", "MusicGen", 38 * GiB),
    ModelInstance("llama-idle-0", "Llama-2-13B", 30 * GiB),
    ModelInstance("mistral-idle-0", "Mistral-7B", 35 * GiB),
    ModelInstance("opt-long-0", "OPT-30B", -12 * GiB),
    ModelInstance("opt-long-1", "OPT-30B", -12 * GiB),
    ModelInstance("codellama-0", "CodeLlama-34B", -10 * GiB),
    ModelInstance("codellama-1", "CodeLlama-34B", -10 * GiB),
    ModelInstance("mistral-lora-0", "Mistral-7B", -8 * GiB),
    ModelInstance("mistral-lora-1", "Mistral-7B", -8 * GiB),
    ModelInstance("llama-busy-0", "Llama-2-13B", -15 * GiB),
    ModelInstance("llama-busy-1", "Llama-2-13B", -15 * GiB),
]


def main() -> None:
    placer = AquaPlacer(n_servers=8, gpus_per_server=2)
    placement = placer.place(FLEET)

    rows = []
    for s in range(8):
        models = placement.models_on_server(s)
        rows.append([f"server{s}", ", ".join(sorted(models))])
    print(format_table(["server", "models"], rows, title="Model -> server map"))
    print()
    print(
        format_table(
            ["consumer", "producer"],
            placement.pairs,
            title="Consumer/producer pairings (one producer each, by design)",
        )
    )
    unmatched = placement.unmatched_consumers(FLEET)
    print(f"\nunmatched consumers: {unmatched or 'none'}")
    print(f"solve time: {placement.solve_seconds * 1000:.1f} ms "
          f"(objective {placement.objective:.1f})")


if __name__ == "__main__":
    main()
