"""Service classes on one GPU: weighted fair scheduling.

Two tenants share a CodeLlama-34B deployment: a *premium* class with
4x scheduling weight and a *standard* class.  Weighted CFS (the natural
extension of the paper's fair scheduler, mirroring Linux nice levels)
splits GPU time proportionally while AQUA keeps the context switching
cheap over NVLink.

Run:  python examples/weighted_tenants.py
"""

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.plotting import bar_chart
from repro.hardware import Server
from repro.models import CODELLAMA_34B, KANDINSKY
from repro.serving import BatchEngine, Request, WeightedCFSEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all

WINDOW = 60.0
CLASSES = {"standard": 1.0, "premium": 4.0}


def main() -> None:
    env = Environment()
    server = Server(env, n_gpus=2)
    coordinator = Coordinator()
    consumer_lib = AquaLib(server.gpus[0], server, coordinator)
    producer_lib = AquaLib(
        server.gpus[1], server, coordinator, informer=BatchInformer()
    )
    coordinator.pair(consumer_lib.name, producer_lib.name)
    producer = BatchEngine(server.gpus[1], server, KANDINSKY, aqua_lib=producer_lib)
    engine = WeightedCFSEngine(
        server.gpus[0],
        server,
        CODELLAMA_34B,
        use_aqua=True,
        aqua_lib=consumer_lib,
        slice_tokens=5,
    )
    producer.start()
    engine.start()
    env.run(until=1.0)

    tenants = {}
    for label, weight in CLASSES.items():
        reqs = [
            Request(
                arrival_time=1.0,
                prompt_tokens=3000,
                max_new_tokens=5000,
                weight=weight,
            )
            for _ in range(8)
        ]
        submit_all(env, engine, reqs)
        tenants[label] = reqs
    env.run(until=1.0 + WINDOW)

    tokens = {
        label: sum(r.generated_tokens for r in reqs)
        for label, reqs in tenants.items()
    }
    print(
        bar_chart(
            list(tokens),
            list(tokens.values()),
            title=f"Tokens generated per class in {WINDOW:.0f}s of contention",
            unit=" tok",
        )
    )
    ratio = tokens["premium"] / tokens["standard"]
    print(f"\npremium/standard service ratio: {ratio:.2f} "
          f"(weights {CLASSES['premium']:g}:{CLASSES['standard']:g})")


if __name__ == "__main__":
    main()
