"""Observability: trace an engine's schedule and export a Chrome trace.

Attaches a :class:`repro.trace.Tracer` to an AQUA CFS engine under a
bursty code-summary workload, then reports where the time went —
prefill, decode slices, context switches — and writes
``aqua_trace.json`` for chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/trace_inspection.py
"""

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.models import CODELLAMA_34B, KANDINSKY
from repro.serving import BatchEngine, CFSEngine
from repro.sim import Environment
from repro.trace import Tracer
from repro.workloads import code_summary_requests
from repro.workloads.arrivals import submit_all

DURATION = 120.0
OUT = "aqua_trace.json"


def main() -> None:
    env = Environment()
    server = Server(env, n_gpus=2)
    coordinator = Coordinator()
    tracer = Tracer(clock=lambda: env.now)

    consumer_lib = AquaLib(server.gpus[0], server, coordinator)
    producer_lib = AquaLib(server.gpus[1], server, coordinator, informer=BatchInformer())
    coordinator.pair(consumer_lib.name, producer_lib.name)

    producer = BatchEngine(server.gpus[1], server, KANDINSKY, aqua_lib=producer_lib)
    engine = CFSEngine(
        server.gpus[0],
        server,
        CODELLAMA_34B,
        use_aqua=True,
        aqua_lib=consumer_lib,
        slice_tokens=5,
        tracer=tracer,
        name="aqua-cfs",
    )
    producer.start()
    engine.start()
    env.run(until=1.0)

    requests = code_summary_requests(rate=4.0, count=60, seed=0, start=1.0)
    submit_all(env, engine, requests)
    env.run(until=DURATION)

    track = engine.name
    rows = []
    for activity in ("prefill", "slice", "context-switch"):
        spans = [s for s in tracer.spans_on(track) if s.name == activity]
        total = sum(s.duration for s in spans)
        rows.append(
            [activity, len(spans), total, f"{total / DURATION:.1%}"]
        )
    print(
        format_table(
            ["activity", "spans", "total_s", "of wall"],
            rows,
            title=f"Where {track} spent {DURATION:.0f}s (traced)",
        )
    )
    print(f"\nGPU-track utilization: {tracer.utilization(track, 0, DURATION):.1%}")

    tracer.export_json(OUT)
    print(f"Chrome trace written to {OUT} "
          f"({len(tracer)} events; open in chrome://tracing)")


if __name__ == "__main__":
    main()
