"""Serving many LoRA adapters: PCIe cache misses vs AQUA's NVLink store.

Mistral-7B serves prompts that each name one of 30 fine-tuned adapters
(320 MB each, like the paper's synthesized Zephyr copies) while the GPU
caches only 10.  Baseline misses load from pageable host memory over
PCIe with vLLM's many small per-module copies; with AQUA the adapter
store lives on the StableDiffusion producer GPU and whole adapters fly
over NVLink (Figure 8).

Run:  python examples/lora_serving.py
"""

from repro.experiments.harness import (
    DEFAULT_LORA_CACHE_BYTES,
    build_consumer_rig,
    drain,
)
from repro.experiments.report import format_table, summarize_requests
from repro.models import SD_15, synthesize_adapters
from repro.workloads import lora_requests
from repro.workloads.arrivals import submit_all

N_ADAPTERS = 30
ADAPTER_BYTES = 320 * 10**6
RATE = 8.0
COUNT = 100


def run(use_aqua: bool) -> dict:
    rig = build_consumer_rig(
        "vllm",
        "Mistral-7B",
        producer_model=SD_15 if use_aqua else None,
        use_aqua=use_aqua,
        lora_capacity_bytes=DEFAULT_LORA_CACHE_BYTES,
    ).start()
    adapters = synthesize_adapters(N_ADAPTERS, ADAPTER_BYTES)
    if use_aqua:
        rig.warm_up(1.0)
        for adapter in adapters:
            rig.lora_cache.register(adapter)  # pre-stage on the producer
    requests = lora_requests(adapters, rate=RATE, count=COUNT, seed=0, start=1.0)
    submit_all(rig.env, rig.consumer_engine, requests)
    drain(rig.env, requests, timeout=900)
    summary = summarize_requests(requests, "aqua" if use_aqua else "baseline")
    summary["cache_hits"] = rig.lora_cache.hits
    summary["cache_misses"] = rig.lora_cache.misses
    return summary


def main() -> None:
    baseline = run(use_aqua=False)
    aqua = run(use_aqua=True)
    rows = [
        [s["label"], s["rct_p50"], s["rct_mean"], s["rct_p95"],
         f"{s['cache_hits']}/{s['cache_hits'] + s['cache_misses']}"]
        for s in (baseline, aqua)
    ]
    print(
        format_table(
            ["system", "rct_p50_s", "rct_mean_s", "rct_p95_s", "cache_hits"],
            rows,
            title=f"Mistral-7B, {N_ADAPTERS} adapters x {ADAPTER_BYTES // 10**6} MB, "
            f"{RATE:.0f} req/s",
        )
    )
    print(f"\nAQUA improves mean RCT by "
          f"{baseline['rct_mean'] / aqua['rct_mean']:.2f}x (paper: up to 1.8x)")


if __name__ == "__main__":
    main()
