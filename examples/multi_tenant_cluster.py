"""Multi-tenanted inference cluster, end to end.

Hosts the paper's §6.1 *balanced* fleet — sixteen generative models of
three modalities on eight 2-GPU servers — places it with AQUA-PLACER,
and runs every engine concurrently in one simulation: long-prompt
OPT-30B jobs, CodeLlama code summaries under the fair scheduler,
Mistral LoRA serving, elastic ShareGPT LLMs, and the image/audio
producers that donate their spare HBM.

Run:  python examples/multi_tenant_cluster.py
"""

from repro.experiments.cluster_run import ClusterExperiment, balanced_tenants
from repro.experiments.report import format_table

DURATION = 60.0


def main() -> None:
    tenants = balanced_tenants()
    experiment = ClusterExperiment(n_servers=8, gpus_per_server=2)
    report = experiment.run(tenants, duration=DURATION)

    placement = report["placement"]
    rows = []
    for tenant in tenants:
        result = report["results"][tenant.name]
        server, gpu = placement.gpu_of[tenant.name]
        producer = placement.producer_for(tenant.name) or "-"
        rows.append(
            [
                tenant.name,
                f"s{server}/g{gpu}",
                result.role,
                producer,
                result.completed,
                result.tokens,
                f"{result.ttft_p50:.2f}" if result.ttft_p50 is not None else "-",
            ]
        )
    print(
        format_table(
            ["tenant", "gpu", "role", "paired producer", "done", "tokens", "ttft_p50_s"],
            rows,
            title=f"Balanced 16-model cluster, {DURATION:.0f}s concurrent run",
        )
    )
    consumers = [r for r in report["results"].values() if r.role == "consumer"]
    print(
        f"\n{len(placement.pairs)} consumer/producer pairs; "
        f"consumers generated {sum(r.tokens for r in consumers)} tokens total."
    )


if __name__ == "__main__":
    main()
