"""A responsive chatbot: fair scheduling with AQUA vs vLLM batching.

Simulates 25 chat users holding 4-turn conversations with a
CodeLlama-34B chatbot (the paper's §8 workload).  Conversation context
accumulates across turns, so later turns exhaust the KV cache; vLLM's
batch scheduler then queues some users for tens of seconds while AQUA's
completely fair scheduler keeps giving every prompt a time slice,
paging contexts over NVLink to the Kandinsky producer next door.

Run:  python examples/responsive_chatbot.py
"""

from repro.experiments.harness import build_consumer_rig
from repro.experiments.report import format_table, summarize_requests
from repro.models import KANDINSKY
from repro.workloads import ChatbotWorkload

N_USERS = 25
TURNS = 4


def run_chat(kind: str, use_aqua: bool) -> dict:
    rig = build_consumer_rig(
        kind,
        "CodeLlama-34B",
        producer_model=KANDINSKY if use_aqua else None,
        use_aqua=use_aqua,
        consumer_kwargs={"slice_tokens": 5} if kind == "cfs" else None,
    ).start()
    if use_aqua:
        rig.warm_up(1.0)
    workload = ChatbotWorkload(n_users=N_USERS, turns=TURNS, seed=0)
    users = workload.attach(rig.env, rig.consumer_engine)
    while not all(u.processed for u in users):
        rig.env.run(until=rig.env.now + 5.0)
    return summarize_requests(rig.consumer_engine.metrics.completed, kind)


def main() -> None:
    vllm = run_chat("vllm", use_aqua=False)
    cfs_dram = run_chat("cfs", use_aqua=False)
    aqua = run_chat("cfs", use_aqua=True)
    rows = [
        ["vLLM (batching)", vllm["ttft_mean"], vllm["ttft_max"], vllm["rct_mean"]],
        ["CFS over DRAM", cfs_dram["ttft_mean"], cfs_dram["ttft_max"], cfs_dram["rct_mean"]],
        ["AQUA (CFS over NVLink)", aqua["ttft_mean"], aqua["ttft_max"], aqua["rct_mean"]],
    ]
    print(
        format_table(
            ["system", "ttft_mean_s", "ttft_max_s", "rct_mean_s"],
            rows,
            title=f"{N_USERS} chat users x {TURNS} turns on CodeLlama-34B",
        )
    )
    print(
        "\nWith vLLM a few users repeatedly wait "
        f"{vllm['ttft_max']:.0f}s for the first token; AQUA keeps the worst "
        f"wait at {aqua['ttft_max']:.0f}s without giving up completion time."
    )


if __name__ == "__main__":
    main()
