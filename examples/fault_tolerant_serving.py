"""Fault-tolerant serving: AQUA degrades gracefully and recovers.

A FlexGen long-prompt consumer offloads its context to an idle
Llama-2-13B producer over NVLink (the Figure 7 rig), while a
deterministic fault schedule breaks things under it: a DMA stall at
t=20 (AQUA-LIB retries with capped exponential backoff), a severe
NVLink degradation at t=40 (the coordinator fails the consumer over to
the PCIe/DRAM path), and a producer GPU failure at t=90 (the in-flight
context is lost; the engine re-queues the request and recomputes).
No request is ever dropped, and once the faults clear goodput returns
to the fault-free control run's level.

Run:  python examples/fault_tolerant_serving.py
"""

from repro.experiments.report import format_table
from repro.experiments.resilience import default_fault_schedule, resilience_experiment

END = 160.0


def spark(value: float, lo: float, hi: float, width: int = 30) -> str:
    """A crude text bar for terminal timelines."""
    if hi <= lo:
        return ""
    filled = int(round((value - lo) / (hi - lo) * width))
    return "#" * max(0, min(width, filled))


def phase_at(t: float, schedule) -> str:
    """Which faults are active at time ``t`` (empty string if none)."""
    active = [f.kind for f in schedule if f.at <= t < f.at + f.duration]
    return "+".join(active) if active else "healthy"


def main() -> None:
    schedule = default_fault_schedule()
    result = resilience_experiment(schedule=schedule, duration=END)
    goodput = dict(result["goodput_tokens_per_s"])
    hi = max(goodput.values())
    rows = []
    for t in sorted(goodput):
        if int(t) % 5 != 0:
            continue
        rows.append(
            [f"{t:.0f}", phase_at(t, schedule), f"{goodput[t]:.1f}",
             spark(goodput[t], 0, hi)]
        )
    print(
        format_table(
            ["t_s", "active fault", "goodput_tok/s", ""],
            rows,
            title="Goodput under the default fault schedule",
        )
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["transfer retries (backoff)", str(result["retries"])],
                ["requests re-queued", str(result["requeues"])],
                ["tensors lost to GPU failure", str(result["lost_tensors"])],
                ["requests dropped", str(result["dropped_requests"])],
                ["recovery time after all-clear (s)",
                 f"{result['recovery_time_s']:.1f}"],
                ["post-fault goodput vs control",
                 f"{result['post_fault_goodput_ratio']:.2f}x"],
            ],
            title="Resilience summary",
        )
    )
    print("\nEvery fault is survived: stalls are retried, degraded links "
          "fail over to DRAM, and a failed GPU costs only a recompute.")


if __name__ == "__main__":
    main()
