"""SLO monitoring: burn-rate alerts and post-mortems under a link fault.

Two tenants share one 2-GPU server: a FlexGen long-prompt *consumer*
that promises a decode-goodput floor, and the Llama-2-13B memory
*producer* that promises interactive TTFT and per-token latency.  Both
promises are written down as a declarative :class:`SLOPolicy`; an SLO
tracker rides the simulated-clock metric scraper and judges them
continuously, firing multi-window burn-rate alerts (SRE-workbook
style: the error budget must burn fast over a long *and* a short
window before anyone is paged).

At t=40 a 25 s NVLink degradation to 2% of peak slows the consumer's
offloaded decode below its floor.  The tracker notices, a burn-rate
alert fires, and the flight recorder freezes its ring of recent
history into a post-mortem bundle on disk — the artefact an on-call
engineer would open first.

Run:  python examples/slo_monitoring.py
"""

import tempfile

from repro.experiments.report import format_table
from repro.experiments.resilience import (
    FaultSchedule,
    LinkDegradation,
    resilience_experiment,
)
from repro.telemetry import default_slo_policy

END = 120.0


def main() -> None:
    # The two-tenant policy: consumer goodput floor, producer TTFT and
    # TPOT deadlines.  The healthy rig streams ~16 tok/s, so a 4 tok/s
    # floor holds comfortably until the degraded link (2% of NVLink is
    # slower than PCIe, forcing the DRAM fallback) drags decode under it.
    policy = default_slo_policy(
        consumer="flexgen", producer="producer", goodput_floor=4.0
    )
    print(f"SLO policy {policy.name!r}:")
    for o in policy.objectives:
        print(f"  {o.name:<18} {o.description} (target {o.target:.0%})")

    schedule = FaultSchedule(
        [LinkDegradation(at=40.0, channel="nvlink", factor=0.02, duration=25.0)]
    )
    postmortem_dir = tempfile.mkdtemp(prefix="aqua-postmortems-")
    result = resilience_experiment(
        schedule=schedule,
        duration=END,
        scrape_interval=1.0,
        slo_policy=policy,
        postmortem_dir=postmortem_dir,
    )

    obs = result["observability"]
    alerts = obs["slo"]["alerts"]
    rows = [
        [
            f"{a['t']:.0f}",
            a["slo"],
            a["severity"],
            f"{a['burn_long']:.1f}x",
            f"{a['burn_short']:.1f}x",
        ]
        for a in alerts
    ]
    print()
    print(
        format_table(
            ["t_s", "objective", "severity", "burn(long)", "burn(short)"],
            rows or [["-", "(none)", "-", "-", "-"]],
            title="Burn-rate alerts (faulted run)",
        )
    )

    control_alerts = result["control_observability"]["slo"]["alerts"]
    print(f"\ncontrol run alerts: {len(control_alerts)} "
          "(healthy runs stay inside their error budgets)")

    print("\nPost-mortem bundles written by the flight recorder:")
    for bundle in obs["recorder"]["bundles"]:
        print(f"  t={bundle['t']:6.1f}  {bundle['reason']:<28} "
              f"-> {bundle.get('path', '(in memory)')}")

    print("\nEach bundle holds the trigger, a metrics snapshot and the "
          "ring of recent events leading up to it.")


if __name__ == "__main__":
    main()
