"""Re-calibrate the simulator to your own hardware measurements.

Takes bandwidth points as they would come from ``nccl-tests`` or
``p2pBandwidthLatencyTest`` on a real machine, fits the simulator's
latency+bandwidth link model to them, and re-runs the long-prompt
experiment on the fitted links — the workflow for porting this
reproduction's predictions to new hardware.

Run:  python examples/calibrate_and_run.py
"""

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.experiments.report import format_table
from repro.hardware import Server
from repro.hardware.calibration import fit_link_from_pairs, residuals, BandwidthPoint
from repro.models import OPT_30B, SD_15
from repro.serving import BatchEngine, FlexGenEngine
from repro.sim import Environment
from repro.workloads import long_prompt_requests
from repro.workloads.arrivals import submit_all

GB = 10**9
MB = 10**6

# Pretend these came from running nccl-tests on *your* server:
MEASURED_NVLINK = [(1 * MB, 55 * GB), (8 * MB, 150 * GB), (256 * MB, 220 * GB)]
MEASURED_PCIE = [(1 * MB, 9 * GB), (64 * MB, 20 * GB), (512 * MB, 21 * GB)]

DURATION = 60.0


def tokens_on(server_kwargs, use_aqua):
    env = Environment()
    server = Server(env, n_gpus=2, **server_kwargs)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    engine = FlexGenEngine(
        server.gpus[0], server, OPT_30B, aqua_lib=lib, workspace_tokens=8000
    )
    if use_aqua:
        producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        BatchEngine(server.gpus[1], server, SD_15, aqua_lib=producer_lib).start()
        coord.pair(lib.name, producer_lib.name)
    engine.start()
    env.run(until=1.0)
    submit_all(env, engine, long_prompt_requests(start=1.0))
    env.run(until=1.0 + DURATION)
    return engine.metrics.tokens_generated


def main() -> None:
    nvlink = fit_link_from_pairs(MEASURED_NVLINK, name="my-nvlink")
    pcie = fit_link_from_pairs(MEASURED_PCIE, name="my-pcie")
    print(f"fitted {nvlink.name}: peak {nvlink.peak_bandwidth / GB:.0f} GB/s, "
          f"latency {nvlink.latency * 1e6:.1f} us")
    print(f"fitted {pcie.name}:   peak {pcie.peak_bandwidth / GB:.0f} GB/s, "
          f"latency {pcie.latency * 1e6:.1f} us")
    errs = residuals(nvlink, [BandwidthPoint(n, bw) for n, bw in MEASURED_NVLINK])
    print(f"fit residuals (relative bandwidth error): "
          f"{', '.join(f'{e:+.1%}' for e in errs)}\n")

    fitted = {"gpu_link": nvlink, "pcie_link": pcie}
    rows = []
    for label, kwargs in (("paper A100 presets", {}), ("fitted hardware", fitted)):
        baseline = tokens_on(kwargs, use_aqua=False)
        aqua = tokens_on(kwargs, use_aqua=True)
        rows.append([label, baseline, aqua, aqua / baseline])
    print(
        format_table(
            ["link models", "dram_tokens", "aqua_tokens", "speedup"],
            rows,
            title=f"Long-prompt experiment on each calibration ({DURATION:.0f}s)",
        )
    )


if __name__ == "__main__":
    main()
