"""Elastic memory sharing: a producer donates, reclaims, re-donates.

The §6.2 scenario: a lightly loaded Llama-2-13B producer donates its
spare KV memory to a long-prompt OPT-30B consumer on the other GPU.
When a 5 req/s burst hits the producer, AQUA-LIB reclaims the donation
(the consumer's AQUA TENSORS transparently migrate to host DRAM and its
throughput dips); once the burst drains, the memory flows back and the
consumer speeds up again.

Run:  python examples/elastic_sharing.py
"""

from repro.experiments.figures import fig10_elastic
from repro.experiments.report import format_table

PHASE1 = 30.0  # consumer + light producer traffic start
PHASE2 = 90.0  # heavy burst to the producer
END = 200.0


def spark(value: float, lo: float, hi: float, width: int = 30) -> str:
    """A crude text bar for terminal timelines."""
    if hi <= lo:
        return ""
    filled = int(round((value - lo) / (hi - lo) * width))
    return "#" * max(0, min(width, filled))


def main() -> None:
    result = fig10_elastic(phase1_start=PHASE1, phase2_start=PHASE2, end=END)
    tokens = dict(result["consumer_tokens_per_s"])
    free = dict(result["free_memory_gib"])
    hi = max(tokens.values())
    rows = []
    for t in sorted(tokens):
        if int(t) % 10 != 0:
            continue
        phase = (
            "idle" if t < PHASE1 else "light" if t < PHASE2 else
            "burst" if t < PHASE2 + 55 else "drained"
        )
        rows.append(
            [f"{t:.0f}", phase, f"{free[t]:.0f}", f"{tokens[t]:.0f}",
             spark(tokens[t], 0, hi)]
        )
    print(
        format_table(
            ["t_s", "phase", "engine_free_GiB", "consumer_tok/s", ""],
            rows,
            title="Dynamic memory sharing (paper Figure 10)",
        )
    )
    print(f"\nconsumer tokens total: {result['consumer_tokens_total']}")
    print("The dip during the burst is the reclaim: the consumer's context "
          "moves to DRAM and back, with no involvement from the model code.")


if __name__ == "__main__":
    main()
