"""Tests for tensors, the block allocator and the paged KV cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import A100_80G, GPU, HostDRAM, MemoryPool, OutOfDeviceMemory
from repro.memory import AllocationError, BlockAllocator, PagedKVCache, SimTensor
from repro.models import LLAMA2_13B, MISTRAL_7B
from repro.sim import Environment


# ---------------------------------------------------------------------------
# SimTensor
# ---------------------------------------------------------------------------
def test_tensor_reserves_on_device():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)
    t = SimTensor(1024, device=gpu)
    assert gpu.hbm.used == 1024
    assert t.device is gpu


def test_tensor_relocate_moves_accounting():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)
    dram = HostDRAM(env, 10**12)
    t = SimTensor(2048, device=gpu)
    t.relocate(dram)
    assert gpu.hbm.used == 0
    assert dram.pool.used == 2048
    assert t.device is dram


def test_tensor_free_is_idempotent():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)
    t = SimTensor(1024, device=gpu)
    t.free()
    t.free()
    assert gpu.hbm.used == 0
    assert t.freed


def test_tensor_relocate_after_free_rejected():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)
    t = SimTensor(1024, device=gpu)
    t.free()
    with pytest.raises(RuntimeError):
        t.relocate(gpu)


def test_tensor_invalid_size():
    with pytest.raises(ValueError):
        SimTensor(0)


def test_tensor_relocate_fails_when_target_full():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)
    small = HostDRAM(env, 100)
    t = SimTensor(1024, device=gpu)
    with pytest.raises(OutOfDeviceMemory):
        t.relocate(small)
    # Reservation on the source must be intact after a failed move.
    assert gpu.hbm.used == 1024


def test_tensor_unmaterialized():
    t = SimTensor(64)
    assert t.device is None
    t.free()


# ---------------------------------------------------------------------------
# BlockAllocator
# ---------------------------------------------------------------------------
def test_allocator_basic_cycle():
    alloc = BlockAllocator(n_blocks=10, block_bytes=100)
    blocks = alloc.allocate(4)
    assert len(blocks) == 4
    assert alloc.free_blocks == 6
    alloc.free(blocks)
    assert alloc.free_blocks == 10


def test_allocator_exhaustion():
    alloc = BlockAllocator(n_blocks=2, block_bytes=100)
    alloc.allocate(2)
    assert not alloc.can_allocate(1)
    with pytest.raises(AllocationError):
        alloc.allocate(1)


def test_allocator_double_free_rejected():
    alloc = BlockAllocator(n_blocks=4, block_bytes=100)
    blocks = alloc.allocate(2)
    alloc.free(blocks)
    with pytest.raises(AllocationError):
        alloc.free(blocks)


def test_allocator_reserves_pool():
    pool = MemoryPool(capacity=1000)
    alloc = BlockAllocator(n_blocks=5, block_bytes=100, pool=pool)
    assert pool.used == 500
    alloc.destroy()
    assert pool.used == 0


def test_allocator_grow():
    pool = MemoryPool(capacity=1000)
    alloc = BlockAllocator(n_blocks=2, block_bytes=100, pool=pool)
    alloc.resize(8)
    assert alloc.free_blocks == 8
    assert pool.used == 800


def test_allocator_shrink_requires_free_blocks():
    alloc = BlockAllocator(n_blocks=4, block_bytes=100)
    held = alloc.allocate(4)
    with pytest.raises(AllocationError):
        alloc.resize(2)
    alloc.free(held)
    alloc.resize(2)
    assert alloc.n_blocks == 2
    assert alloc.free_blocks == 2


def test_allocator_shrink_releases_pool_bytes():
    pool = MemoryPool(capacity=1000)
    alloc = BlockAllocator(n_blocks=8, block_bytes=100, pool=pool)
    alloc.resize(3)
    assert pool.used == 300


def test_allocator_resize_noop():
    alloc = BlockAllocator(n_blocks=4, block_bytes=100)
    alloc.resize(4)
    assert alloc.n_blocks == 4


def test_allocator_validation():
    with pytest.raises(ValueError):
        BlockAllocator(n_blocks=-1, block_bytes=100)
    with pytest.raises(ValueError):
        BlockAllocator(n_blocks=1, block_bytes=0)
    alloc = BlockAllocator(n_blocks=1, block_bytes=1)
    with pytest.raises(ValueError):
        alloc.allocate(-1)
    with pytest.raises(ValueError):
        alloc.resize(-1)


@given(
    ops=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_allocator_never_hands_out_duplicate_blocks(ops):
    """Property: live blocks are always distinct, counts always consistent."""
    alloc = BlockAllocator(n_blocks=12, block_bytes=1)
    live: list[list[int]] = []
    for want in ops:
        if alloc.can_allocate(want):
            live.append(alloc.allocate(want))
        elif live:
            alloc.free(live.pop(0))
        flattened = [b for group in live for b in group]
        assert len(flattened) == len(set(flattened))
        assert alloc.used_blocks + alloc.free_blocks == alloc.n_blocks
        assert alloc.used_blocks == len(flattened)


# ---------------------------------------------------------------------------
# PagedKVCache
# ---------------------------------------------------------------------------
def make_cache(n_blocks=64, block_tokens=16, model=LLAMA2_13B):
    alloc = BlockAllocator(
        n_blocks=n_blocks, block_bytes=model.kv_bytes_per_token * block_tokens
    )
    return PagedKVCache(model, alloc, block_tokens=block_tokens)


def test_cache_block_size_must_match():
    alloc = BlockAllocator(n_blocks=4, block_bytes=123)
    with pytest.raises(ValueError):
        PagedKVCache(LLAMA2_13B, alloc, block_tokens=16)


def test_cache_admit_and_release():
    cache = make_cache()
    seq = cache.admit(1, tokens=40)
    assert len(seq.blocks) == 3  # ceil(40/16)
    cache.release(1)
    assert cache.allocator.free_blocks == 64


def test_cache_admit_duplicate_rejected():
    cache = make_cache()
    cache.admit(1, tokens=10)
    with pytest.raises(ValueError):
        cache.admit(1, tokens=10)


def test_cache_append_allocates_at_block_boundary():
    cache = make_cache()
    cache.admit(1, tokens=16)
    assert len(cache.sequences[1].blocks) == 1
    cache.append_token(1)  # 17th token needs a second block
    assert len(cache.sequences[1].blocks) == 2
    cache.append_token(1)  # 18th token does not
    assert len(cache.sequences[1].blocks) == 2


def test_cache_can_admit_respects_capacity():
    cache = make_cache(n_blocks=4)
    assert cache.can_admit(64)
    assert not cache.can_admit(65)


def test_cache_swap_out_frees_blocks():
    cache = make_cache(n_blocks=4)
    cache.admit(1, tokens=64)
    assert cache.allocator.free_blocks == 0
    nbytes = cache.swap_out(1)
    assert nbytes == LLAMA2_13B.kv_bytes(64)
    assert cache.allocator.free_blocks == 4
    assert cache.sequences[1].residency.value == "swapped"


def test_cache_swap_in_restores():
    cache = make_cache()
    cache.admit(1, tokens=32)
    cache.swap_out(1)
    nbytes = cache.swap_in(1)
    assert nbytes == LLAMA2_13B.kv_bytes(32)
    assert cache.sequences[1].is_resident
    assert len(cache.sequences[1].blocks) == 2


def test_cache_swapped_sequence_operations_rejected():
    cache = make_cache()
    cache.admit(1, tokens=16)
    cache.swap_out(1)
    with pytest.raises(AllocationError):
        cache.append_token(1)
    with pytest.raises(AllocationError):
        cache.swap_out(1)
    cache.swap_in(1)
    with pytest.raises(AllocationError):
        cache.swap_in(1)


def test_cache_release_swapped_sequence():
    cache = make_cache()
    cache.admit(1, tokens=16)
    cache.swap_out(1)
    cache.release(1)
    assert 1 not in cache.sequences
    assert cache.allocator.free_blocks == 64


def test_cache_resident_tokens():
    cache = make_cache()
    cache.admit(1, tokens=10)
    cache.admit(2, tokens=20)
    cache.swap_out(2)
    assert cache.resident_tokens == 10
    assert cache.swapped_sequences == [2]
    assert cache.resident_sequences == [1]


def test_scatter_pieces_counts_layers_and_blocks():
    cache = make_cache()
    cache.admit(1, tokens=32)  # 2 blocks
    assert cache.scatter_pieces(1) == 2 * LLAMA2_13B.n_layers * 2


def test_blocks_for_rounding():
    cache = make_cache()
    assert cache.blocks_for(0) == 0
    assert cache.blocks_for(1) == 1
    assert cache.blocks_for(16) == 1
    assert cache.blocks_for(17) == 2
    with pytest.raises(ValueError):
        cache.blocks_for(-1)


@given(
    seqs=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=20)
)
@settings(max_examples=50, deadline=None)
def test_cache_swap_roundtrip_preserves_tokens(seqs):
    """Property: swap out + swap in preserves every sequence's token count."""
    cache = make_cache(n_blocks=1000, model=MISTRAL_7B)
    for i, tokens in enumerate(seqs):
        cache.admit(i, tokens=tokens)
    for i in range(len(seqs)):
        cache.swap_out(i)
    for i, tokens in enumerate(seqs):
        cache.swap_in(i)
        assert cache.sequences[i].tokens == tokens
    assert cache.resident_tokens == sum(seqs)
