"""Self-consistency: engine-measured behaviour matches the rooflines.

These tests close the loop between the analytic performance models and
the discrete-event engines built on them: what an engine measures in
steady state must equal what the model predicts, or the simulation's
figures would not be trustworthy.
"""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.hardware import Server
from repro.models import LLAMA2_13B, OPT_30B, SD_15
from repro.serving import BatchEngine, FlexGenEngine, Request, VLLMEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def test_vllm_decode_rate_matches_roofline():
    """A fixed closed batch decodes at the model-predicted tokens/s."""
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, LLAMA2_13B)
    engine.start()
    batch, prompt, gen = 16, 500, 400
    requests = [
        Request(arrival_time=0.0, prompt_tokens=prompt, max_new_tokens=gen)
        for _ in range(batch)
    ]
    submit_all(env, engine, requests)
    env.run(until=600)
    assert all(r.done for r in requests)
    # Measure decode-only time: from the first generated token to the end.
    start = min(r.first_token_time for r in requests)
    end = max(r.finish_time for r in requests)
    measured = batch * (gen - 1) / (end - start)
    predicted = LLAMA2_13B.decode_throughput(
        server.gpus[0].spec, batch, prompt + gen / 2
    )
    assert measured == pytest.approx(predicted, rel=0.15)


def test_flexgen_token_time_matches_overlap_model():
    """FlexGen's decode rate equals max(io, compute) per token."""
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
    producer = BatchEngine(server.gpus[1], server, SD_15, aqua_lib=producer_lib)
    producer.start()
    coord.pair(lib.name, producer_lib.name)
    engine = FlexGenEngine(
        server.gpus[0], server, OPT_30B, aqua_lib=lib, workspace_tokens=8000
    )
    engine.start()
    env.run(until=1.0)
    req = Request(arrival_time=1.0, prompt_tokens=8000, max_new_tokens=200)
    submit_all(env, engine, [req])
    env.run(until=120)
    assert req.done
    decode_time = req.finish_time - req.first_token_time
    measured_per_token = decode_time / (req.max_new_tokens - 1)

    spec = server.gpus[0].spec
    context_bytes = OPT_30B.kv_bytes(8100)  # mid-generation context
    io = server.transfer_time(
        server.gpus[1], server.gpus[0], context_bytes, pieces=1
    ) + 2 * context_bytes / spec.effective_hbm_bandwidth  # gather staging
    compute = OPT_30B.decode_step_time(spec, 1, 0)
    predicted = max(io, compute)
    assert measured_per_token == pytest.approx(predicted, rel=0.2)


def test_batch_engine_rate_matches_model():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = BatchEngine(server.gpus[0], server, SD_15, batch_size=8)
    engine.start()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1)
        for _ in range(64)
    ]
    submit_all(env, engine, requests)
    env.run(until=600)
    assert all(r.done for r in requests)
    finish = max(r.finish_time for r in requests)
    predicted = 8 * SD_15.batch_time(server.gpus[0].spec, 8)
    assert finish == pytest.approx(predicted, rel=0.05)


def test_transfer_times_match_link_specs():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus
    for nbytes in (10**6, 10**8):
        expected = server.gpu_link.transfer_time(nbytes)
        assert server.transfer_time(g0, g1, nbytes) == pytest.approx(expected)
        expected_pcie = server.pcie_link.transfer_time(nbytes)
        assert server.transfer_time(g0, server.dram, nbytes) == pytest.approx(
            expected_pcie
        )
