"""Determinism lockdown for the simulation-kernel fast path.

The kernel's inner loop was rewritten for speed (PR 4); these tests pin
its *behaviour* to the pre-optimisation kernel, bit for bit.  The golden
value below is the conservation-audit SHA-256 digest of a fixed seeded
scenario, captured on the unoptimised kernel **before** the fast path
landed.  Any change to event ordering, tie-breaking, float arithmetic in
the roofline model, or transfer scheduling shows up here as a digest
mismatch — "tests pass" is not enough, the event stream itself must be
identical.

The scenario is the Figure 7/10 offloading rig: a FlexGen long-prompt
consumer backed by an idle LLM producer, driven by the deterministic
long-prompt trace.  It exercises every hot path the fast-path PR
touched: the event loop, DMA channel scheduling, engine iteration
loops, TimeSeries appends and the roofline math.
"""

import json

import pytest

from repro.experiments.harness import build_consumer_rig
from repro.experiments.runall import run_all
from repro.experiments.sweep import sweep_request_rate
from repro.models import LLAMA2_13B, OPT_30B
from repro.telemetry.slo import default_slo_policy
from repro.workloads.arrivals import submit_all
from repro.workloads.longprompt import long_prompt_requests
from repro.workloads.sharegpt import sharegpt_requests

#: SHA-256 conservation-audit digest of the scenario below, captured on
#: the pre-optimisation kernel (commit 43b88d4).  Do not update this
#: value to make a kernel change pass — a mismatch means the change
#: altered simulation behaviour, which is exactly what this test exists
#: to catch.  (If behaviour must change for a correctness fix, record
#: the old and new digests in the commit message.)
GOLDEN_DIGEST = "aea264f10e1ea0ab8fd45cebe675e0da3e5be2fa7d67274d8adc7f4d47530b9d"

#: Simulated horizon: long enough to cover prefill, offload transfers,
#: fetches and several completed requests; short enough for tier-1.
DURATION = 30.0


def _run_scenario(
    telemetry: bool,
    scheduler: str = "heap",
    decode_coarsen: int = 1,
    observability: bool = False,
    transfer_fastpath: bool = False,
):
    """One seeded audited run; returns (digest, final-metrics dict, rig).

    ``observability=True`` additionally attaches the full time-resolved
    layer (metric scraper + SLO tracker + flight recorder, PR 8) so the
    digest tests can prove it is observation-only.
    ``transfer_fastpath=True`` routes eligible DMA copies through the
    analytic channel-timeline path (PR 10), which claims bit-identical
    semantics — the digest tests below hold it to that.
    """
    rig = build_consumer_rig(
        "flexgen",
        OPT_30B,
        producer_model=LLAMA2_13B,
        use_aqua=True,
        audit=True,
        telemetry=telemetry,
        scheduler=scheduler,
        decode_coarsen=decode_coarsen,
        scrape_interval=0.5 if observability else None,
        slo_policy=default_slo_policy() if observability else None,
        transfer_fastpath=transfer_fastpath,
    )
    rig.start()
    submit_all(rig.env, rig.consumer_engine, long_prompt_requests(start=2.0))
    # The producer serves its own seeded trace while donating memory, so
    # the digest also covers the vLLM iteration loop and decode roofline.
    submit_all(
        rig.env, rig.producer_engine, sharegpt_requests(rate=3.0, count=40, seed=7)
    )
    rig.env.run(until=DURATION)
    rig.auditor.check(checkpoint="final")
    report = rig.auditor.report()
    assert report.ok, report.violations

    metrics = rig.consumer_engine.metrics
    final = {
        "tokens": metrics.tokens_generated,
        "completed": len(metrics.completed),
        "rct_mean": repr(metrics.mean_rct()),
        "ttft_mean": repr(metrics.mean_ttft()),
        "transfers_observed": report.transfers_observed,
        "checks": report.checks,
        "now": repr(rig.env.now),
        "producer_tokens": rig.producer_engine.metrics.tokens_generated,
    }
    return report.digest, final, rig


def test_digest_matches_pre_optimisation_golden():
    """Telemetry off: the audit digest equals the committed golden."""
    digest, final, _ = _run_scenario(telemetry=False)
    assert final["tokens"] > 0 and final["transfers_observed"] > 0
    assert digest == GOLDEN_DIGEST, (
        f"kernel behaviour diverged from the pre-optimisation golden\n"
        f"  got      {digest}\n  expected {GOLDEN_DIGEST}\n  final metrics: {final}"
    )


def test_digest_with_telemetry_matches_golden():
    """Telemetry on is observation-only: identical digest to the golden."""
    digest, _, _ = _run_scenario(telemetry=True)
    assert digest == GOLDEN_DIGEST


def test_digest_identical_under_calendar_scheduler():
    """The calendar-queue backend (PR 7) is a pure schedule swap: the
    audited event stream — and therefore the digest — must be bit-equal
    to the heap backend's, which is itself pinned to the golden.  This
    is the end-to-end companion of the per-entry ordering properties in
    ``tests/test_sim_ordering.py``."""
    digest, final, _ = _run_scenario(telemetry=False, scheduler="calendar")
    assert final["tokens"] > 0 and final["transfers_observed"] > 0
    assert digest == GOLDEN_DIGEST, (
        f"calendar scheduler diverged from the heap backend's event stream\n"
        f"  got      {digest}\n  expected {GOLDEN_DIGEST}\n  final metrics: {final}"
    )


def test_both_schedulers_agree_on_final_metrics():
    """Same digest is necessary; same observable outcome closes the loop."""
    _, final_heap, _ = _run_scenario(telemetry=False, scheduler="heap")
    _, final_cal, _ = _run_scenario(telemetry=False, scheduler="calendar")
    assert final_heap == final_cal


def test_identical_runs_bit_identical():
    """Two same-seed runs agree on digest *and* every final metric."""
    digest_a, final_a, _ = _run_scenario(telemetry=False)
    digest_b, final_b, _ = _run_scenario(telemetry=False)
    assert digest_a == digest_b
    assert final_a == final_b


def test_telemetry_does_not_change_final_metrics():
    digest_off, final_off, _ = _run_scenario(telemetry=False)
    digest_on, final_on, _ = _run_scenario(telemetry=True)
    assert digest_off == digest_on
    assert final_off == final_on


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
@pytest.mark.parametrize("decode_coarsen", [1, 4])
def test_observability_layer_is_observation_only(scheduler, decode_coarsen):
    """The full time-resolved layer (PR 8) — 0.5 s metric scraper, SLO
    tracker with the default two-tenant policy, flight recorder — leaves
    the audited event stream bit-identical, under both schedule backends
    and with decode coarsening on.  The scraper runs on the simulation
    clock but only *reads* state at each tick, so the only thing it may
    change is event ids — which the audit digest deliberately excludes.
    """
    digest_off, final_off, _ = _run_scenario(
        False, scheduler=scheduler, decode_coarsen=decode_coarsen
    )
    digest_on, final_on, rig = _run_scenario(
        True, scheduler=scheduler, decode_coarsen=decode_coarsen, observability=True
    )
    # Non-vacuous: the layer really was attached and really scraped.
    assert rig.telemetry is not None and rig.telemetry.scraper is not None
    assert rig.telemetry.scraper.scrapes >= DURATION / 0.5 - 1
    assert rig.telemetry.slo is not None and rig.telemetry.recorder is not None
    assert digest_on == digest_off, (
        f"observability layer perturbed the event stream "
        f"(scheduler={scheduler}, decode_coarsen={decode_coarsen})\n"
        f"  on  {digest_on}\n  off {digest_off}"
    )
    assert final_on == final_off
    if decode_coarsen == 1:
        # Coarsening intentionally time-warps decode, so only the exact
        # per-token configuration is pinned to the committed golden.
        assert digest_off == GOLDEN_DIGEST


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
@pytest.mark.parametrize("decode_coarsen", [1, 4])
def test_transfer_fastpath_digest_identical(scheduler, decode_coarsen):
    """The analytic transfer fast path (PR 10) is semantics-identical:
    the audited event stream — every transfer's route, size, duration,
    completion instant and channel list — is byte-identical with the
    toggle on or off, under both schedule backends and with decode
    coarsening on.  This is the acceptance gate for the fast path: the
    conservation digest folds in per-transfer ``env.now`` and per-hop
    channel names, so a single reordered grant or a one-ulp completion
    drift fails it."""
    digest_off, final_off, _ = _run_scenario(
        False, scheduler=scheduler, decode_coarsen=decode_coarsen
    )
    digest_on, final_on, rig = _run_scenario(
        False,
        scheduler=scheduler,
        decode_coarsen=decode_coarsen,
        transfer_fastpath=True,
    )
    # Non-vacuous: the fast path really modelled transfers (only
    # ``_run_fast`` ever advances a channel's ``busy_until`` cursor).
    assert rig.server.interconnect.transfer_fastpath
    assert any(
        ch.busy_until > 0 for ch in rig.server.interconnect.channels.values()
    )
    assert digest_on == digest_off, (
        f"transfer fast path diverged from the Resource path "
        f"(scheduler={scheduler}, decode_coarsen={decode_coarsen})\n"
        f"  on  {digest_on}\n  off {digest_off}\n  final metrics: {final_on}"
    )
    assert final_on == final_off
    if decode_coarsen == 1:
        assert digest_off == GOLDEN_DIGEST


# ---------------------------------------------------------------------------
# Parallel fan-out determinism (PR 5)
#
# The experiment pool's whole claim is that ``--jobs N`` is invisible in
# the outputs: each cell is a sealed simulation, so fanning cells out
# over worker processes — or replaying them from the run cache — must
# produce byte-identical files.  These tests enforce that on real
# experiment subsets.  The subset deliberately excludes ``fig14`` and
# ``e2e``, which embed wall-clock solve times and are not
# byte-deterministic even serially.
# ---------------------------------------------------------------------------
DETERMINISTIC_SUBSET = ["fig02", "fig03", "tables"]


def _manifest_digests(manifest: dict) -> dict:
    return {name: entry["digest"] for name, entry in manifest.items()}


def test_run_all_parallel_matches_serial_byte_for_byte(tmp_path):
    serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
    serial = run_all(
        serial_dir, only=DETERMINISTIC_SUBSET, progress=lambda _: None, jobs=1
    )
    parallel = run_all(
        parallel_dir, only=DETERMINISTIC_SUBSET, progress=lambda _: None, jobs=2
    )
    assert _manifest_digests(serial) == _manifest_digests(parallel)
    for name, entry in serial.items():
        serial_bytes = (serial_dir / f"{name}.json").read_bytes()
        parallel_bytes = (parallel_dir / f"{name}.json").read_bytes()
        assert serial_bytes == parallel_bytes, f"{name} diverged under --jobs 2"
        assert entry["digest"] == parallel[name]["digest"]


def test_run_all_cache_replay_matches_fresh_run(tmp_path):
    """A warm-cache replay reproduces the cold run's files exactly."""
    cache_dir = tmp_path / "cache"
    cold = run_all(
        tmp_path / "cold",
        only=DETERMINISTIC_SUBSET,
        progress=lambda _: None,
        jobs=1,
        cache_dir=cache_dir,
    )
    warm = run_all(
        tmp_path / "warm",
        only=DETERMINISTIC_SUBSET,
        progress=lambda _: None,
        jobs=1,
        cache_dir=cache_dir,
    )
    assert all(not entry["cached"] for entry in cold.values())
    assert all(entry["cached"] for entry in warm.values())
    assert _manifest_digests(cold) == _manifest_digests(warm)
    for name in DETERMINISTIC_SUBSET:
        assert (tmp_path / "cold" / f"{name}.json").read_bytes() == (
            tmp_path / "warm" / f"{name}.json"
        ).read_bytes()
    with open(tmp_path / "warm" / "manifest.json") as fh:
        on_disk = json.load(fh)
    assert on_disk["run"]["cache"]["hits"] == len(DETERMINISTIC_SUBSET)


def test_sweep_parallel_matches_serial():
    kwargs = dict(rates=(1.0, 2.0), count=8)
    serial = sweep_request_rate(jobs=1, **kwargs)
    parallel = sweep_request_rate(jobs=2, **kwargs)
    as_json = lambda pts: json.dumps(  # noqa: E731 - tiny local normaliser
        [(p.rate, p.summaries) for p in pts], sort_keys=True, default=str
    )
    assert as_json(serial) == as_json(parallel)


# ---------------------------------------------------------------------------
# Routing-layer inertness and frontier fan-out determinism (PR 9)
#
# Two lockdowns for the cluster routing layer.  First: merely importing
# ``repro.routing`` — and even *running* a frontier cell in-process,
# which exercises its global request-id and caching machinery — must
# leave the single-server figure rigs byte-identical to the committed
# golden, across both schedule backends and with decode coarsening on.
# Second: the frontier sweep itself is a pooled fan-out, so serial,
# ``--jobs 2`` and warm-cache replays must agree byte for byte.
# ---------------------------------------------------------------------------
def test_routing_layer_is_inert_for_single_server_rigs():
    import repro.routing  # noqa: F401 - the import is the point
    from repro.experiments.frontier import frontier_cell

    # Run a real routed cell first: it consumes request ids, seeds RNGs
    # and populates policy state.  None of that may leak into the
    # single-server scenario digest.
    cell = frontier_cell(
        rate=12.0, duration=4.0, n_servers=2, concurrency=4, drain=4.0
    )
    assert cell["completed"] > 0

    for scheduler in ("heap", "calendar"):
        for decode_coarsen in (1, 4):
            digest, final, _ = _run_scenario(
                telemetry=False,
                scheduler=scheduler,
                decode_coarsen=decode_coarsen,
            )
            assert final["tokens"] > 0
            if decode_coarsen == 1:
                assert digest == GOLDEN_DIGEST, (
                    f"routing layer perturbed the single-server event "
                    f"stream (scheduler={scheduler})\n"
                    f"  got      {digest}\n  expected {GOLDEN_DIGEST}"
                )


#: Small frontier grid for the fan-out tests: two policies, two rates,
#: short cells — a few seconds total, but the full pooled code path.
_FRONTIER_KWARGS = dict(
    rates=(8.0, 32.0),
    policies=("round-robin", "least-loaded"),
    duration=8.0,
    n_servers=2,
    concurrency=4,
    max_queue_depth=12,
    drain=8.0,
)


def _sweep_json(sweep: dict) -> str:
    return json.dumps(sweep, sort_keys=True, default=str)


def test_frontier_parallel_matches_serial_byte_for_byte():
    from repro.experiments.frontier import frontier_sweep

    serial = frontier_sweep(jobs=1, **_FRONTIER_KWARGS)
    parallel = frontier_sweep(jobs=2, **_FRONTIER_KWARGS)
    assert _sweep_json(serial) == _sweep_json(parallel)
    # The ledger digests are the per-cell fingerprints: pin them too.
    for policy, cells in serial["grid"].items():
        for cell, twin in zip(cells, parallel["grid"][policy]):
            assert cell["ledger_digest"] == twin["ledger_digest"]
            assert cell["ledger_ok"] and twin["ledger_ok"]


def test_frontier_cache_replay_matches_cold_run(tmp_path):
    from repro.experiments.frontier import frontier_sweep

    cache_dir = tmp_path / "cache"
    n_cells = len(_FRONTIER_KWARGS["rates"]) * len(_FRONTIER_KWARGS["policies"])

    cold_log: list[str] = []
    cold = frontier_sweep(
        jobs=1, cache_dir=cache_dir, progress=cold_log.append, **_FRONTIER_KWARGS
    )
    # The cold run populated the content-addressed cache on disk.
    cached_files = sorted(p for p in cache_dir.rglob("*") if p.is_file())
    assert len(cached_files) >= n_cells

    warm_log: list[str] = []
    warm = frontier_sweep(
        jobs=1, cache_dir=cache_dir, progress=warm_log.append, **_FRONTIER_KWARGS
    )
    assert _sweep_json(cold) == _sweep_json(warm)
    # The warm replay touched every cell without recomputing any: no
    # new cache entries were written.
    assert sorted(p for p in cache_dir.rglob("*") if p.is_file()) == cached_files
