"""Tests for terminal plotting and the run-everything driver."""

import json

import pytest

from repro.experiments.plotting import bar_chart, cdf_chart, line_chart
from repro.experiments.runall import EXPERIMENTS, run_all


# ---------------------------------------------------------------------------
# Plotting
# ---------------------------------------------------------------------------
def test_bar_chart_renders_each_row():
    out = bar_chart(["aqua", "flexgen"], [900, 120], title="tokens")
    lines = out.splitlines()
    assert lines[0] == "tokens"
    assert lines[1].startswith("aqua")
    assert lines[1].count("#") > lines[2].count("#")


def test_bar_chart_zero_values():
    out = bar_chart(["a", "b"], [0, 10])
    assert "a" in out
    assert out.splitlines()[0].count("#") == 0


def test_bar_chart_mismatched_lengths():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1, 2])


def test_bar_chart_empty():
    assert bar_chart([], [], title="t") == "t"


def test_line_chart_shape():
    xs = list(range(100))
    ys = [x % 20 for x in xs]
    out = line_chart(xs, ys, height=8, width=40, title="saw")
    lines = out.splitlines()
    assert lines[0] == "saw"
    assert len(lines) == 1 + 8 + 2  # title + rows + axis + x labels
    assert any("*" in line for line in lines)


def test_line_chart_constant_series():
    out = line_chart([0, 1, 2], [5, 5, 5])
    assert "*" in out


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart([1], [1, 2])
    with pytest.raises(ValueError):
        line_chart([1, 2], [1, 2], height=1)


def test_cdf_chart_orders_quantiles():
    out = cdf_chart({"base": [5, 1, 3, 2, 4], "aqua": [1, 1, 1, 1, 1]}, points=5)
    lines = out.splitlines()
    assert lines[0].startswith("rank")
    base_row = next(l for l in lines if l.startswith("base"))
    values = [float(v) for v in base_row.split()[1:]]
    assert values == sorted(values)


def test_cdf_chart_empty():
    assert cdf_chart({}, title="t") == "t"


# ---------------------------------------------------------------------------
# run_all
# ---------------------------------------------------------------------------
def test_run_all_writes_json(tmp_path):
    messages = []
    manifest = run_all(
        str(tmp_path), only=["tables", "fig02"], progress=messages.append
    )
    assert set(manifest) == {"tables", "fig02"}
    for entry in manifest.values():
        data = json.loads(open(entry["path"]).read())
        assert data
    assert (tmp_path / "manifest.json").exists()
    assert any("running tables" in m for m in messages)


def test_run_all_unknown_experiment(tmp_path):
    with pytest.raises(KeyError):
        run_all(str(tmp_path), only=["fig99"])


def test_experiment_registry_covers_paper():
    for name in ("fig01", "fig07", "fig09", "fig13", "fig14", "tables", "e2e"):
        assert name in EXPERIMENTS
