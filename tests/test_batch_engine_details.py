"""Focused tests for the compute-bound batch engine (producers)."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.hardware import Server
from repro.models import AUDIOGEN, SD_15
from repro.serving import BatchEngine, Request
from repro.sim import Environment
from repro.workloads import producer_requests
from repro.workloads.arrivals import submit_all


def make_engine(model=SD_15, **kwargs):
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = BatchEngine(server.gpus[0], server, model, **kwargs)
    engine.start()
    return env, server, engine


def test_reserves_weights_and_activations():
    env, server, engine = make_engine(batch_size=8)
    gpu = server.gpus[0]
    assert gpu.hbm.held(f"{engine.name}:weights") == SD_15.weight_bytes
    assert (
        gpu.hbm.held(f"{engine.name}:activations")
        == 8 * SD_15.activation_bytes_per_image
    )


def test_audio_engine_activation_sizing():
    env, server, engine = make_engine(model=AUDIOGEN, batch_size=4)
    gpu = server.gpus[0]
    assert (
        gpu.hbm.held(f"{engine.name}:activations")
        == 4 * AUDIOGEN.activation_bytes_per_sample
    )


def test_partial_batches_run_without_waiting():
    """Requests are served as they arrive (min latency), not held for a
    full batch — matching the paper's description of these engines."""
    env, server, engine = make_engine(batch_size=16)
    req = Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1)
    engine.submit(req)
    env.run(until=60)
    assert req.done
    assert engine.batches_run == 1


def test_backlog_batches_fully():
    env, server, engine = make_engine(batch_size=4)
    requests = [
        Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1)
        for _ in range(12)
    ]
    submit_all(env, engine, requests)
    env.run(until=120)
    assert all(r.done for r in requests)
    assert engine.batches_run == 3


def test_rct_includes_queue_wait():
    env, server, engine = make_engine(batch_size=2)
    requests = [
        Request(arrival_time=0.0, prompt_tokens=1, max_new_tokens=1)
        for _ in range(4)
    ]
    submit_all(env, engine, requests)
    env.run(until=120)
    first_wave = sorted(r.rct for r in requests)[:2]
    second_wave = sorted(r.rct for r in requests)[2:]
    assert min(second_wave) > max(first_wave)


def test_idle_engine_keeps_donating():
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord, informer=BatchInformer())
    engine = BatchEngine(server.gpus[0], server, SD_15, aqua_lib=lib)
    engine.start()
    env.run(until=1)
    donated_idle = lib.donated_bytes
    assert donated_idle > 0
    # Serving traffic does not claw the donation back.
    submit_all(env, engine, producer_requests(rate=1.0, count=20, seed=0, start=1.0))
    env.run(until=40)
    assert lib.donated_bytes == donated_idle


def test_throughput_so_far():
    env, server, engine = make_engine(batch_size=4)
    assert engine.throughput_so_far == 0.0
    submit_all(env, engine, producer_requests(rate=5.0, count=20, seed=0))
    env.run(until=60)
    assert engine.throughput_so_far > 0


def test_double_start_rejected():
    env, server, engine = make_engine()
    with pytest.raises(RuntimeError):
        engine.start()
