"""Focused tests for VLLMEngine scheduling internals."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator, LlmInformer
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.models import CODELLAMA_34B, MISTRAL_7B, SD_15, synthesize_adapters
from repro.serving import LoRACache, Request, VLLMEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def make_vllm(model=MISTRAL_7B, **kwargs):
    env = Environment()
    server = Server(env, n_gpus=2)
    engine = VLLMEngine(server.gpus[0], server, model, **kwargs)
    engine.start()
    return env, server, engine


def test_ttft_includes_queue_and_prefill():
    env, server, engine = make_vllm()
    req = Request(arrival_time=0.0, prompt_tokens=1000, max_new_tokens=5)
    engine.submit(req)
    env.run(until=30)
    prefill = MISTRAL_7B.prefill_time(server.gpus[0].spec, 1000)
    assert req.ttft == pytest.approx(prefill, rel=0.2)


def test_completed_request_releases_kv():
    env, server, engine = make_vllm()
    req = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=10)
    engine.submit(req)
    env.run(until=30)
    assert req.done
    assert engine.allocator.used_blocks == 0
    assert engine.kv.sequences == {}


def test_one_token_request_finishes_at_prefill():
    env, server, engine = make_vllm()
    req = Request(arrival_time=0.0, prompt_tokens=64, max_new_tokens=1)
    engine.submit(req)
    env.run(until=10)
    assert req.done
    assert req.ttft == req.rct
    assert req not in engine.running


def test_preempted_request_recomputes_and_finishes():
    env, server, engine = make_vllm(model=CODELLAMA_34B)
    hogs = [
        Request(arrival_time=0.0, prompt_tokens=2000, max_new_tokens=6000)
        for _ in range(8)
    ]
    submit_all(env, engine, hogs)
    env.run(until=2500)
    assert engine.preemptions > 0
    assert all(r.done for r in hogs)
    assert engine.allocator.used_blocks == 0


def test_max_batch_limits_concurrency():
    env, server, engine = make_vllm(max_batch=2)
    requests = [
        Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=50)
        for _ in range(6)
    ]
    submit_all(env, engine, requests)
    peak = [0]

    def watch(env):
        while True:
            peak[0] = max(peak[0], len(engine.running))
            yield env.timeout(0.05)

    env.process(watch(env))
    env.run(until=120)
    assert all(r.done for r in requests)
    assert peak[0] <= 2


def test_decode_order_is_fifo_completion_for_equal_lengths():
    env, server, engine = make_vllm()
    first = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=20)
    second = Request(arrival_time=0.1, prompt_tokens=100, max_new_tokens=20)
    engine.submit(first)
    submit_all(env, engine, [second])
    env.run(until=60)
    assert first.finish_time <= second.finish_time


def test_engine_idles_cleanly_between_bursts():
    env, server, engine = make_vllm()
    a = Request(arrival_time=0.0, prompt_tokens=50, max_new_tokens=5)
    b = Request(arrival_time=20.0, prompt_tokens=50, max_new_tokens=5)
    submit_all(env, engine, [a, b])
    env.run(until=60)
    assert a.done and b.done
    assert b.ttft < 1.0  # the idle engine wakes promptly


def test_producer_keeps_retention_under_light_load():
    env, server, _ = make_vllm()  # occupies gpu0
    coord = Coordinator()
    lib = AquaLib(server.gpus[1], server, coord, informer=LlmInformer())
    producer = VLLMEngine(
        server.gpus[1], server, MISTRAL_7B, aqua_lib=lib, inform_every=1,
        name="producer",
    )
    producer.start()
    env.run(until=5)
    assert lib.donated_bytes > 0
    # The engine retains ~5 GiB of context memory after donating.
    assert producer.kv_capacity_bytes >= 4 * GiB
    # Light traffic is absorbed without reclaiming.
    reqs = [Request(arrival_time=5.0 + i, prompt_tokens=100, max_new_tokens=20) for i in range(5)]
    submit_all(env, producer, reqs)
    env.run(until=30)
    assert all(r.done for r in reqs)
    assert lib.donated_bytes > 0  # still donated


def test_lora_cache_shared_across_requests():
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    consumer_lib = AquaLib(server.gpus[0], server, coord)
    producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
    coord.pair(consumer_lib.name, producer_lib.name)
    producer_lib.complete_offer(20 * GiB)
    cache = LoRACache(
        server.gpus[0], server, capacity_bytes=2 * GiB, aqua_lib=consumer_lib
    )
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B, lora_cache=cache)
    engine.start()
    (adapter,) = synthesize_adapters(1, 320 * 10**6)
    reqs = [
        Request(arrival_time=float(i), prompt_tokens=50, max_new_tokens=5, adapter=adapter)
        for i in range(4)
    ]
    submit_all(env, engine, reqs)
    env.run(until=60)
    assert all(r.done for r in reqs)
    assert cache.misses == 1  # loaded once, shared by all
    assert cache.hits == 3


def test_rejected_prompt_does_not_block_later_ones():
    env, server, engine = make_vllm(model=CODELLAMA_34B)
    huge = Request(arrival_time=0.0, prompt_tokens=200_000, max_new_tokens=5)
    ok = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=5)
    engine.submit(huge)
    engine.submit(ok)
    env.run(until=30)
    assert huge in engine.rejected
    assert ok.done
