"""Unit tests for the simulated-clock scraper and ring-buffered series.

Covers the PR 8 observability substrate: :class:`RingSeries` bounds and
monotonicity, canonical sample keys, the :class:`MetricScraper` tick
loop (including its drain-run self-termination), and the derived
rate/interval-mean views the dashboard plots.
"""

import pytest

from repro.sim import Environment
from repro.telemetry.registry import Registry
from repro.telemetry.timeseries import (
    MetricScraper,
    RingSeries,
    interval_mean_series,
    rate_series,
    sample_key,
)


# ---------------------------------------------------------------------------
# RingSeries
# ---------------------------------------------------------------------------
def test_ring_series_appends_and_views():
    s = RingSeries("x")
    s.append(0.0, 1.0)
    s.append(1.0, 3.0)
    s.append(1.0, 4.0)  # equal timestamps are legal
    assert len(s) == 3
    assert s.times == [0.0, 1.0, 1.0]
    assert s.values == [1.0, 3.0, 4.0]
    assert s.last() == (1.0, 4.0)
    assert s.to_dict() == {"times": [0.0, 1.0, 1.0], "values": [1.0, 3.0, 4.0]}


def test_ring_series_rejects_non_monotonic_append():
    s = RingSeries("clock")
    s.append(5.0, 1.0)
    with pytest.raises(ValueError, match=r"non-monotonic .* 'clock'.*t=4\.0"):
        s.append(4.0, 2.0)
    # The bad sample was not retained.
    assert s.times == [5.0]


def test_ring_series_capacity_drops_oldest():
    s = RingSeries("bounded", capacity=3)
    for i in range(10):
        s.append(float(i), float(i * i))
    assert len(s) == 3
    assert s.capacity == 3
    assert s.times == [7.0, 8.0, 9.0]


def test_ring_series_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        RingSeries("bad", capacity=0)


def test_ring_series_window_is_half_open():
    """Same ``start <= t < end`` contract as ``TimeSeries.window_sum``."""
    s = RingSeries("w")
    for t in (0.0, 1.0, 2.0, 3.0):
        s.append(t, t)
    assert s.window(1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0)]
    assert s.window(0.0, 0.0) == []


# ---------------------------------------------------------------------------
# sample_key
# ---------------------------------------------------------------------------
def test_sample_key_matches_prometheus_notation():
    assert sample_key("aqua_up", ()) == "aqua_up"
    key = sample_key(
        "aqua_engine_tokens_generated_total", (("engine", "flexgen-OPT-30B"),)
    )
    assert key == 'aqua_engine_tokens_generated_total{engine="flexgen-OPT-30B"}'


# ---------------------------------------------------------------------------
# MetricScraper
# ---------------------------------------------------------------------------
def _counter_rig():
    """An environment plus a counter that grows 2/s via a sim process."""
    env = Environment()
    registry = Registry()
    tokens = registry.counter("toy_tokens_total", "tokens", ["engine"])

    def ticker():
        while True:
            yield env.timeout(1.0)
            tokens.labels(engine="a").inc(2.0)

    env.process(ticker())
    return env, registry, tokens


def test_scraper_snapshots_on_interval():
    env, registry, tokens = _counter_rig()
    tokens.labels(engine="a").inc(0.0)  # materialise the child
    scraper = MetricScraper(env, registry, interval=1.0).start()
    env.run(until=10.0)
    series = scraper.series['toy_tokens_total{engine="a"}']
    # First scrape at t=0, then every second while events remain.
    assert series.times[:3] == [0.0, 1.0, 2.0]
    assert series.values[:3] == [0.0, 2.0, 4.0]
    assert scraper.scrapes == len(series)


def test_scraper_self_terminates_on_drain():
    """With no horizon, the scraper must not keep the run alive forever:
    when it wakes to an otherwise-empty schedule it takes a final scrape
    and stops rescheduling."""
    env = Environment()
    registry = Registry()
    gauge = registry.gauge("toy_depth", "depth")
    gauge.set(1.0)

    def workload():
        yield env.timeout(3.5)
        gauge.set(7.0)

    env.process(workload())
    scraper = MetricScraper(env, registry, interval=1.0).start()
    env.run()  # drain style: would hang if the scraper rescheduled forever
    assert env.now == 4.0  # final scrape tick after the workload ended
    assert scraper.series["toy_depth"].last() == (4.0, 7.0)


def test_scraper_skips_histogram_buckets():
    env = Environment()
    registry = Registry()
    hist = registry.histogram("toy_latency_seconds", "latency", buckets=(0.1, 1.0))
    hist.observe(0.5)
    scraper = MetricScraper(env, registry, interval=1.0)
    scraper.scrape()
    keys = set(scraper.series)
    assert "toy_latency_seconds_sum" in keys
    assert "toy_latency_seconds_count" in keys
    assert not any("_bucket" in k for k in keys)


def test_scraper_observers_and_matching():
    env, registry, tokens = _counter_rig()
    tokens.labels(engine="a").inc(0.0)
    scraper = MetricScraper(env, registry, interval=1.0)
    seen = []
    scraper.observers.append(seen.append)
    scraper.start()
    env.run(until=3.0)
    # Events scheduled exactly at the horizon are processed, so the
    # t=3.0 scrape is included.
    assert seen == [0.0, 1.0, 2.0, 3.0]
    assert set(scraper.matching("toy_tokens_total")) == {
        'toy_tokens_total{engine="a"}'
    }
    assert scraper.matching("nope") == {}


def test_scraper_validates_interval():
    env = Environment()
    with pytest.raises(ValueError, match="interval"):
        MetricScraper(env, Registry(), interval=0.0)


def test_scraper_to_dict_round_trips_series():
    env, registry, tokens = _counter_rig()
    tokens.labels(engine="a").inc(0.0)
    scraper = MetricScraper(env, registry, interval=1.0).start()
    env.run(until=4.0)
    out = scraper.to_dict()
    assert out["interval"] == 1.0
    assert out["scrapes"] == scraper.scrapes
    key = 'toy_tokens_total{engine="a"}'
    assert out["series"][key] == scraper.series[key].to_dict()


# ---------------------------------------------------------------------------
# Derived views
# ---------------------------------------------------------------------------
def test_rate_series_differentiates_cumulative_counter():
    t, v = rate_series([0.0, 1.0, 3.0], [0.0, 4.0, 8.0])
    assert t == [1.0, 3.0]
    assert v == [4.0, 2.0]


def test_rate_series_skips_zero_width_intervals():
    t, v = rate_series([0.0, 1.0, 1.0, 2.0], [0.0, 2.0, 2.0, 5.0])
    assert t == [1.0, 2.0]
    assert v == [2.0, 3.0]


def test_interval_mean_series_gaps_on_empty_intervals():
    # _count flat over [1,2]: that interval is a gap, not a fake zero.
    t, v = interval_mean_series(
        [0.0, 1.0, 2.0, 3.0],
        [0.0, 2.0, 2.0, 8.0],
        [0.0, 1.0, 1.0, 3.0],
    )
    assert t == [1.0, 3.0]
    assert v == [2.0, 3.0]
