"""Property-based lockdown of kernel event ordering.

The fast-path rewrite packed the heap entry's priority and FIFO counter
into one integer and added bare-delay yields; these properties pin the
ordering contract those tricks must preserve:

* events scheduled for the same timestamp fire in creation (FIFO) order;
* URGENT events beat NORMAL events at the same timestamp, FIFO within
  each class;
* a program replayed on two fresh :class:`Environment`\\ s produces a
  bit-identical event log (same wake times via ``repr``, same event
  count);
* ``yield <float>`` (the bare-delay fast path) is observationally
  identical to ``yield env.timeout(<float>)``.

The golden audit digest (``tests/test_determinism_golden.py``) checks
the same laws end to end; these properties localise a violation to the
kernel when that digest breaks.
"""

from heapq import heappop, heappush

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, Environment, Interrupt
from repro.sim.core import NORMAL, URGENT, _SEQ_STRIDE

#: Few distinct delays on purpose: maximal timestamp collisions is the
#: hard case for tie-breaking.
DELAYS = st.sampled_from([0.0, 0.001, 0.002, 0.25])


@given(st.lists(DELAYS, min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_same_timestamp_fifo(delays):
    """Timeouts created in index order wake in index order on ties."""
    env = Environment()
    log = []

    def proc(i, d):
        yield env.timeout(d)
        log.append((d, i))

    for i, d in enumerate(delays):
        env.process(proc(i, d))
    env.run()
    # All processes start at t=0 in creation order, so equal delays must
    # wake in creation order: the log is sorted by (delay, index).
    assert log == sorted(log)


@given(st.lists(st.booleans(), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_urgent_before_normal_fifo_within_class(flags):
    """At one timestamp: every URGENT event fires before any NORMAL one,
    and creation order is preserved inside each priority class."""
    env = Environment()
    log = []
    for i, urgent in enumerate(flags):
        event = env.event()
        event.callbacks.append(lambda _e, i=i, u=urgent: log.append((u, i)))
        # Trigger by hand so we control the priority class (succeed()
        # always schedules NORMAL; Initialize/Interruption go URGENT).
        event._ok = True
        event._value = None
        env._schedule(event, URGENT if urgent else NORMAL)
    env.run()
    expected = sorted(
        ((u, i) for i, u in enumerate(flags)),
        key=lambda pair: (0 if pair[0] else 1, pair[1]),
    )
    assert log == expected


# A program is a list of per-process specs: (delays, interrupts_child).
PROGRAMS = st.lists(
    st.tuples(st.lists(DELAYS, max_size=5), st.booleans()),
    min_size=1,
    max_size=8,
)


def _run_program(program, bare_delays=False, scheduler="heap"):
    """Run an interleaved process/timeout/interrupt program; return a
    replayable transcript (repr() so float identity is bit-exact)."""
    env = Environment(scheduler=scheduler)
    log = []

    def child(i):
        try:
            yield env.timeout(100.0)
            log.append(("child-done", i, repr(env.now)))
        except Interrupt as exc:
            log.append(("interrupted", i, repr(env.now), repr(exc.cause)))

    def parent(i, delays, interrupts):
        victim = env.process(child(i)) if interrupts else None
        for d in delays:
            if bare_delays:
                yield d
            else:
                yield env.timeout(d)
            log.append(("tick", i, repr(env.now)))
        if victim is not None and victim.is_alive:
            victim.interrupt(cause=i)

    for i, (delays, interrupts) in enumerate(program):
        env.process(parent(i, delays, interrupts))
    env.run()
    return log, repr(env.now), env.events_processed


@given(PROGRAMS)
@settings(max_examples=50, deadline=None)
def test_replay_identical_across_environments(program):
    """The same program on two fresh kernels yields identical transcripts."""
    assert _run_program(program) == _run_program(program)


@given(PROGRAMS)
@settings(max_examples=50, deadline=None)
def test_bare_delay_yield_matches_timeout(program):
    """``yield d`` schedules exactly like ``yield env.timeout(d)``:
    same wake order, same timestamps, same event count."""
    assert _run_program(program, bare_delays=False) == _run_program(
        program, bare_delays=True
    )


# ---------------------------------------------------------------------------
# Calendar-queue backend (PR 7): pops must be *identical* to the heap's.
#
# The adversarial cases are maximal timestamp collisions (many entries
# in one bucket), same-time URGENT/NORMAL mixes (seq tie-breaking
# happens inside a single bucket sort), and pushes racing the bucket
# currently being drained (zero-delay wakeups).
# ---------------------------------------------------------------------------

#: Operations against both backends: push a (delay, urgent) entry at the
#: current drain time, or pop one entry.  Delays cluster far below,
#: exactly at, and above the calendar's 1 ms bucket width so entries
#: collide inside buckets and straddle bucket boundaries.
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.sampled_from([0.0, 0.0003, 0.0005, 0.001, 0.0015, 0.002, 0.25]),
            st.booleans(),
        ),
        st.just(("pop",)),
    ),
    min_size=1,
    max_size=60,
)


@given(_OPS)
@settings(max_examples=100, deadline=None)
def test_calendar_pops_identical_to_heap(ops):
    """Interleaved pushes and pops on both backends yield the exact same
    entry sequence.  Pushes are anchored at the last popped time (the
    kernel's monotone-clock invariant), which is precisely the regime
    where a push can land in the bucket being drained."""
    heap: list = []
    cal = CalendarQueue()
    now = 0.0
    seq = 0
    popped_heap, popped_cal = [], []
    for op in ops:
        if op[0] == "push":
            _, delay, urgent = op
            seq += 1
            prio = URGENT if urgent else NORMAL
            entry = (now + delay, prio * _SEQ_STRIDE + seq, seq)
            heappush(heap, entry)
            cal.push(entry)
        else:
            if not heap:
                continue
            a, b = heappop(heap), cal.pop()
            popped_heap.append(a)
            popped_cal.append(b)
            now = a[0]
    # Drain whatever remains.
    while heap:
        popped_heap.append(heappop(heap))
        popped_cal.append(cal.pop())
    assert popped_cal == popped_heap
    assert len(cal) == 0


@given(_OPS)
@settings(max_examples=50, deadline=None)
def test_calendar_head_peek_matches_heap(ops):
    """``queue[0]`` (the run-until stop check) agrees between backends at
    every step."""
    heap: list = []
    cal = CalendarQueue()
    now = 0.0
    seq = 0
    for op in ops:
        if op[0] == "push":
            _, delay, urgent = op
            seq += 1
            prio = URGENT if urgent else NORMAL
            entry = (now + delay, prio * _SEQ_STRIDE + seq, seq)
            heappush(heap, entry)
            cal.push(entry)
        elif heap:
            now = heappop(heap)[0]
            cal.pop()
        if heap:
            assert cal[0] == heap[0]
        assert bool(cal) == bool(heap)


@given(PROGRAMS)
@settings(max_examples=50, deadline=None)
def test_calendar_scheduler_transcript_identical_to_heap(program):
    """A full kernel program (processes, timeouts, interrupts) replays
    bit-identically under ``Environment(scheduler="calendar")``: same
    transcript, same final clock, same retirement count."""
    assert _run_program(program, scheduler="heap") == _run_program(
        program, scheduler="calendar"
    )


@given(PROGRAMS)
@settings(max_examples=25, deadline=None)
def test_calendar_bare_delays_transcript_identical_to_heap(program):
    """The bare-delay fast path composes with the calendar backend."""
    assert _run_program(program, bare_delays=True, scheduler="heap") == _run_program(
        program, bare_delays=True, scheduler="calendar"
    )
