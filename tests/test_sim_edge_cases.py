"""Edge-case tests for the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, SimulationError


def test_anyof_with_failure_propagates():
    env = Environment()
    gate = env.event()
    caught = []

    def proc(env):
        try:
            yield AnyOf(env, [gate, env.timeout(100)])
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(proc(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_allof_failure_short_circuits():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1)
        raise ValueError("child died")

    def proc(env):
        try:
            yield AllOf(env, [env.process(bad(env)), env.timeout(100)])
        except ValueError as exc:
            caught.append((str(exc), env.now))

    env.process(proc(env))
    env.run()
    # The failure propagated at t=1 without waiting for the timeout.
    assert caught == [("child died", 1)]


def test_nested_conditions():
    env = Environment()

    def proc(env):
        inner = env.timeout(2) & env.timeout(3)
        outer = inner | env.timeout(10)
        yield outer
        return env.now

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == 3


def test_interrupt_while_waiting_on_condition():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(50) & env.timeout(60)
        except Interrupt:
            log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [5]


def test_double_interrupt_delivers_both():
    env = Environment()
    log = []

    def sleeper(env):
        for _ in range(2):
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                log.append(intr.cause)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt("first")
        yield env.timeout(1)
        victim.interrupt("second")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == ["first", "second"]


def test_event_trigger_copies_state():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.callbacks.append(dst.trigger)
    src.succeed("payload")
    env.run()
    assert dst.value == "payload"


def test_event_trigger_copies_failure():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.callbacks.append(dst.trigger)
    dst_caught = []

    def waiter(env):
        try:
            yield dst
        except RuntimeError as exc:
            dst_caught.append(str(exc))

    env.process(waiter(env))
    src.fail(RuntimeError("relayed"))
    src._defused = True
    env.run()
    assert dst_caught == ["relayed"]


def test_wait_on_already_processed_event():
    env = Environment()
    done = env.event()
    done.succeed("early")
    env.run()

    def late(env):
        value = yield done
        return value

    p = env.process(late(env))
    env.run()
    assert p.value == "early"


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_returning_generator_value():
    env = Environment()

    def inner(env):
        yield env.timeout(1)
        return {"complex": [1, 2, 3]}

    def outer(env):
        result = yield env.process(inner(env))
        return result["complex"]

    p = env.process(outer(env))
    env.run()
    assert p.value == [1, 2, 3]


def test_simulation_determinism():
    """Two identical simulations produce identical event timings."""

    def build_and_run():
        env = Environment()
        log = []

        def worker(env, i):
            for step in range(5):
                yield env.timeout(0.1 * ((i + step) % 3 + 1))
                log.append((round(env.now, 6), i, step))

        for i in range(10):
            env.process(worker(env, i))
        env.run()
        return log

    assert build_and_run() == build_and_run()
