"""Stateful property testing of the AQUA coordinator.

Hypothesis drives random sequences of lease / allocate / free / moved /
reclaim operations against the coordinator and checks its bookkeeping
invariants after every step — the kind of interleavings a live
multi-GPU deployment produces.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.aqua import Coordinator
from repro.aqua.coordinator import DRAM

PRODUCERS = ["p0", "p1"]
CONSUMERS = ["c0", "c1"]


class CoordinatorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.coord = Coordinator()
        for consumer, producer in zip(CONSUMERS, PRODUCERS):
            self.coord.pair(consumer, producer)
        self.next_tensor = 0
        self.live_tensors: set[int] = set()

    # ------------------------------------------------------------------
    @rule(producer=st.sampled_from(PRODUCERS), nbytes=st.integers(1, 1000))
    def lease(self, producer, nbytes):
        self.coord.request("POST", "/lease", {"producer": producer, "nbytes": nbytes})

    @rule(consumer=st.sampled_from(CONSUMERS), nbytes=st.integers(1, 500))
    def allocate(self, consumer, nbytes):
        tensor_id = self.next_tensor
        self.next_tensor += 1
        resp = self.coord.request(
            "POST",
            "/allocate",
            {"consumer": consumer, "tensor_id": tensor_id, "nbytes": nbytes},
        )
        assert resp.ok
        assert resp.body["location"] in (DRAM, *PRODUCERS)
        self.live_tensors.add(tensor_id)

    @rule(data=st.data())
    def free(self, data):
        if not self.live_tensors:
            return
        tensor_id = data.draw(st.sampled_from(sorted(self.live_tensors)))
        resp = self.coord.request("POST", "/free", {"tensor_id": tensor_id})
        assert resp.ok
        self.live_tensors.discard(tensor_id)

    @rule(data=st.data(), target_dram=st.booleans())
    def moved(self, data, target_dram):
        if not self.live_tensors:
            return
        tensor_id = data.draw(st.sampled_from(sorted(self.live_tensors)))
        alloc = self.coord.allocations[tensor_id]
        target = DRAM if target_dram else self.coord.pairings[alloc.consumer]
        self.coord.request(
            "POST", "/moved", {"tensor_id": tensor_id, "location": target}
        )
        # 409 (no capacity) is acceptable; state must stay consistent.

    @rule(producer=st.sampled_from(PRODUCERS))
    def reclaim(self, producer):
        self.coord.request("POST", "/reclaim_request", {"producer": producer})

    @rule(consumer=st.sampled_from(CONSUMERS))
    def respond_and_move_all(self, consumer):
        body = self.coord.request("GET", "/respond", {"consumer": consumer}).body
        for tensor_id, target in body["migrations"].items():
            self.coord.request(
                "POST", "/moved", {"tensor_id": tensor_id, "location": target}
            )

    @rule(producer=st.sampled_from(PRODUCERS))
    def poll_reclaim(self, producer):
        resp = self.coord.request("GET", "/reclaim_status", {"producer": producer})
        assert resp.ok

    # ------------------------------------------------------------------
    @invariant()
    def lease_usage_matches_allocations(self):
        for producer, lease in self.coord.leases.items():
            parked = sum(
                a.nbytes
                for a in self.coord.allocations.values()
                if a.location == producer
            )
            assert lease.used == parked, (producer, lease.used, parked)

    @invariant()
    def lease_never_oversubscribed(self):
        for lease in self.coord.leases.values():
            assert 0 <= lease.used <= lease.offered

    @invariant()
    def tensors_parked_only_on_leased_producers(self):
        for alloc in self.coord.allocations.values():
            if alloc.location != DRAM:
                assert alloc.location in self.coord.leases

    @invariant()
    def allocations_match_live_set(self):
        assert set(self.coord.allocations) == self.live_tensors

    @invariant()
    def reclaim_pending_tensors_exist(self):
        for reclaim in self.coord.reclaims.values():
            for tensor_id in reclaim.pending_tensors:
                assert tensor_id in self.coord.allocations


CoordinatorMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestCoordinatorStateMachine = CoordinatorMachine.TestCase
