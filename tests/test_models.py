"""Tests for the model performance models, including Figure 2 behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import A100_80G
from repro.hardware.specs import GiB
from repro.models import (
    AUDIOGEN,
    CODELLAMA_34B,
    KANDINSKY,
    LLAMA2_13B,
    MISTRAL_7B,
    OPT_30B,
    SD_15,
    LoRAAdapter,
    MTEB_ADAPTER,
    ZEPHYR_ADAPTER,
    get_model,
    is_compute_bound,
    is_memory_bound,
    synthesize_adapters,
)
from repro.models.llm import LLMSpec
from repro.models.registry import ALL_MODELS, BoundKind, classify


# ---------------------------------------------------------------------------
# LLM footprints
# ---------------------------------------------------------------------------
def test_weight_bytes_fp16():
    assert LLAMA2_13B.weight_bytes == pytest.approx(26e9, rel=0.01)
    assert OPT_30B.weight_bytes == pytest.approx(60e9, rel=0.01)


def test_kv_bytes_per_token_full_attention():
    # Llama-2-13B: 2 (K+V) * 40 layers * 40 heads * 128 dim * 2 bytes.
    assert LLAMA2_13B.kv_bytes_per_token == 2 * 40 * 40 * 128 * 2


def test_kv_bytes_per_token_gqa_smaller():
    """GQA models (Mistral, CodeLlama) have much smaller KV caches."""
    assert MISTRAL_7B.kv_bytes_per_token == 2 * 32 * 8 * 128 * 2
    assert MISTRAL_7B.kv_bytes_per_token < LLAMA2_13B.kv_bytes_per_token


def test_opt30b_long_prompt_kv_exceeds_free_memory():
    """The paper's premise: an 8000-token prompt on OPT-30B cannot fit.

    60 GB of weights + activation workspace leave less free HBM on an
    A100-80G than the ~11 GB KV cache of an 8000-token sequence.
    """
    kv = OPT_30B.kv_bytes(8000)
    free = OPT_30B.free_kv_bytes(A100_80G, workspace_tokens=8000)
    assert kv > free


def test_kv_bytes_negative_rejected():
    with pytest.raises(ValueError):
        LLAMA2_13B.kv_bytes(-1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        LLMSpec("x", 1e9, n_layers=4, n_heads=4, n_kv_heads=8, head_dim=64)
    with pytest.raises(ValueError):
        LLMSpec("x", 1e9, n_layers=0, n_heads=4, n_kv_heads=4, head_dim=64)


# ---------------------------------------------------------------------------
# LLM timing rooflines
# ---------------------------------------------------------------------------
def test_decode_single_stream_rate_realistic():
    """One Llama-2-13B stream decodes at tens of tokens/second on an A100."""
    step = LLAMA2_13B.decode_step_time(A100_80G, batch_size=1, context_tokens=500)
    rate = 1 / step
    assert 20 < rate < 120


def test_decode_batch_scales_throughput():
    """Batching decodes more tokens/s: the memory roofline is shared."""
    t1 = LLAMA2_13B.decode_throughput(A100_80G, batch_size=1, avg_context_tokens=500)
    t16 = LLAMA2_13B.decode_throughput(A100_80G, batch_size=16, avg_context_tokens=500)
    assert t16 > 5 * t1


def test_decode_memory_bound_at_moderate_batch():
    """Decode time is set by HBM streaming, not FLOPs, at batch 16."""
    spec = LLAMA2_13B
    memory = (
        spec.weight_bytes + spec.kv_bytes(16 * 500)
    ) / A100_80G.effective_hbm_bandwidth
    compute = 2 * spec.n_params * 16 / A100_80G.effective_flops
    assert memory > compute


def test_prefill_time_compute_bound_scales_with_tokens():
    short = LLAMA2_13B.prefill_time(A100_80G, 100)
    long = LLAMA2_13B.prefill_time(A100_80G, 2000)
    assert long > 5 * short


def test_prefill_zero_tokens():
    assert LLAMA2_13B.prefill_time(A100_80G, 0) == 0.0


def test_decode_zero_batch():
    assert LLAMA2_13B.decode_step_time(A100_80G, 0, 0) == 0.0


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        LLAMA2_13B.prefill_time(A100_80G, -1)
    with pytest.raises(ValueError):
        LLAMA2_13B.decode_step_time(A100_80G, -1, 0)


def test_max_batch_by_memory():
    batch = LLAMA2_13B.max_batch_by_memory(A100_80G, avg_tokens_per_seq=500)
    assert batch > 10
    # OPT-30B has far less KV room: weights are 60 of 80 GB.
    assert OPT_30B.max_batch_by_memory(A100_80G, 8000) <= 2


@given(tokens=st.integers(min_value=1, max_value=16000))
@settings(max_examples=50, deadline=None)
def test_prefill_monotone_in_tokens(tokens):
    """Property: longer prompts never prefill faster."""
    t_a = LLAMA2_13B.prefill_time(A100_80G, tokens)
    t_b = LLAMA2_13B.prefill_time(A100_80G, tokens + 1)
    assert t_b >= t_a


@given(batch=st.integers(min_value=1, max_value=256))
@settings(max_examples=50, deadline=None)
def test_decode_step_monotone_in_batch(batch):
    """Property: larger batches never take less time per step."""
    t_a = LLAMA2_13B.decode_step_time(A100_80G, batch, batch * 100)
    t_b = LLAMA2_13B.decode_step_time(A100_80G, batch + 1, (batch + 1) * 100)
    assert t_b >= t_a


# ---------------------------------------------------------------------------
# Figure 2 behaviour: compute- vs memory-bound classification
# ---------------------------------------------------------------------------
def test_fig2_diffusion_plateau_leaves_free_memory():
    """Figure 2b: SD peaks in throughput with tens of GB of HBM free."""
    batch = SD_15.peak_throughput_batch(A100_80G)
    free = SD_15.free_memory(A100_80G, batch)
    assert free > 20 * GiB


def test_fig2_audio_plateau_leaves_free_memory():
    """Figure 2a: AudioGen peaks with tens of GB of HBM free."""
    batch = AUDIOGEN.peak_throughput_batch(A100_80G)
    assert AUDIOGEN.free_memory(A100_80G, batch) > 20 * GiB


def test_fig2_diffusion_throughput_plateaus():
    t8 = SD_15.throughput(A100_80G, 8)
    t32 = SD_15.throughput(A100_80G, 32)
    t64 = SD_15.throughput(A100_80G, 64)
    assert t32 > t8  # still scaling at small batch
    assert t64 < 1.1 * t32  # plateau: diminishing returns


def test_fig2_llm_exhausts_memory_at_peak():
    """Figure 2c: the LLM's peak batch nearly exhausts HBM."""
    batch = LLAMA2_13B.max_batch_by_memory(A100_80G, avg_tokens_per_seq=800)
    kv = LLAMA2_13B.kv_bytes(batch * 800)
    free = A100_80G.hbm_bytes - LLAMA2_13B.weight_bytes - kv
    assert free < 5 * GiB


def test_classification_by_modality():
    assert is_memory_bound(LLAMA2_13B)
    assert is_memory_bound(CODELLAMA_34B)
    assert is_compute_bound(SD_15)
    assert is_compute_bound(AUDIOGEN)
    assert classify(KANDINSKY) is BoundKind.COMPUTE


def test_audio_batch_time_scales():
    assert AUDIOGEN.batch_time(A100_80G, 8) > AUDIOGEN.batch_time(A100_80G, 1)
    assert AUDIOGEN.batch_time(A100_80G, 0) == 0.0
    with pytest.raises(ValueError):
        AUDIOGEN.batch_time(A100_80G, -1)


def test_diffusion_invalid_batch_rejected():
    with pytest.raises(ValueError):
        SD_15.batch_time(A100_80G, -1)
    with pytest.raises(ValueError):
        SD_15.memory_used(-1)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_has_all_paper_models():
    for name in (
        "OPT-30B",
        "Llama-2-13B",
        "Mistral-7B",
        "CodeLlama-34B",
        "StableDiffusion-1.5",
        "StableDiffusion-XL",
        "Kandinsky-2.2",
        "AudioGen",
        "MusicGen",
    ):
        assert name in ALL_MODELS
        assert get_model(name).name == name


def test_registry_unknown_model():
    with pytest.raises(KeyError, match="unknown model"):
        get_model("GPT-5")


# ---------------------------------------------------------------------------
# LoRA adapters
# ---------------------------------------------------------------------------
def test_paper_adapter_sizes():
    assert ZEPHYR_ADAPTER.nbytes == 320 * 10**6
    assert MTEB_ADAPTER.nbytes == 160 * 10**6


def test_adapter_for_model_scales_with_rank():
    small = LoRAAdapter.for_model("r8", MISTRAL_7B, rank=8)
    large = LoRAAdapter.for_model("r64", MISTRAL_7B, rank=64)
    assert large.nbytes == 8 * small.nbytes


def test_synthesize_adapters():
    adapters = synthesize_adapters(30, 320 * 10**6)
    assert len(adapters) == 30
    assert len({a.name for a in adapters}) == 30
    assert all(a.nbytes == 320 * 10**6 for a in adapters)


def test_adapter_validation():
    with pytest.raises(ValueError):
        LoRAAdapter(name="bad", nbytes=0)
    with pytest.raises(ValueError):
        LoRAAdapter(name="bad", nbytes=100, rank=0)
    with pytest.raises(ValueError):
        synthesize_adapters(-1, 100)
