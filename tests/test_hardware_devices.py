"""Tests for GPU/DRAM devices, servers, clusters and DMA transfers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    A100_80G,
    Cluster,
    GPU,
    MemoryPool,
    OutOfDeviceMemory,
    Server,
)
from repro.hardware.interconnect import RoutingError
from repro.hardware.specs import GB, MB, GiB
from repro.sim import Environment


# ---------------------------------------------------------------------------
# MemoryPool
# ---------------------------------------------------------------------------
def test_pool_reserve_release_roundtrip():
    pool = MemoryPool(capacity=100)
    pool.reserve("weights", 60)
    assert pool.used == 60
    assert pool.free == 40
    pool.release("weights")
    assert pool.free == 100


def test_pool_over_reserve_raises():
    pool = MemoryPool(capacity=100)
    pool.reserve("a", 80)
    with pytest.raises(OutOfDeviceMemory):
        pool.reserve("b", 30)


def test_pool_partial_release():
    pool = MemoryPool(capacity=100)
    pool.reserve("kv", 50)
    released = pool.release("kv", 20)
    assert released == 20
    assert pool.held("kv") == 30


def test_pool_release_more_than_held_raises():
    pool = MemoryPool(capacity=100)
    pool.reserve("kv", 10)
    with pytest.raises(ValueError):
        pool.release("kv", 20)


def test_pool_tags_accumulate():
    pool = MemoryPool(capacity=100)
    pool.reserve("kv", 10)
    pool.reserve("kv", 15)
    assert pool.held("kv") == 25


def test_pool_invalid_capacity():
    with pytest.raises(ValueError):
        MemoryPool(capacity=0)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["reserve", "release"]), st.integers(0, 50)),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_pool_accounting_invariant(ops):
    """Property: 0 <= used <= capacity under any reserve/release sequence."""
    pool = MemoryPool(capacity=100)
    for op, amount in ops:
        try:
            if op == "reserve":
                pool.reserve("t", amount)
            else:
                pool.release("t", min(amount, pool.held("t")))
        except OutOfDeviceMemory:
            pass
        assert 0 <= pool.used <= pool.capacity
        assert pool.free == pool.capacity - pool.used


# ---------------------------------------------------------------------------
# GPU
# ---------------------------------------------------------------------------
def test_gpu_compute_op_takes_time():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)

    def work(env):
        yield from gpu.compute_op(0.5)

    env.process(work(env))
    env.run()
    assert env.now == pytest.approx(0.5)
    assert gpu.busy_time == pytest.approx(0.5)


def test_gpu_compute_serializes():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)

    def work(env):
        yield from gpu.compute_op(1.0)

    env.process(work(env))
    env.process(work(env))
    env.run()
    assert env.now == pytest.approx(2.0)


def test_gpu_compute_dilated_by_copies():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)
    gpu.active_copies = 1

    def work(env):
        yield from gpu.compute_op(1.0)

    env.process(work(env))
    env.run()
    assert env.now == pytest.approx(1.0 * (1 + A100_80G.copy_interference))


def test_gpu_negative_duration_rejected():
    env = Environment()
    gpu = GPU(env, 0, A100_80G)
    with pytest.raises(ValueError):
        list(gpu.compute_op(-1))


# ---------------------------------------------------------------------------
# Server topologies and transfers
# ---------------------------------------------------------------------------
def test_p2p_server_routes():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    g0, g1 = server.gpus
    assert server.interconnect.connected(g0, g1)
    assert server.interconnect.connected(g1, g0)
    assert server.interconnect.connected(g0, server.dram)
    assert server.interconnect.connected(server.dram, g0)


def test_nvswitch_server_all_pairs_connected():
    env = Environment()
    server = Server(env, n_gpus=8, topology="nvswitch")
    for a in server.gpus:
        for b in server.gpus:
            if a is not b:
                assert server.interconnect.connected(a, b)


def test_route_to_self_rejected():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0 = server.gpus[0]
    with pytest.raises(RoutingError):
        server.interconnect.route(g0, g0)


def test_unknown_topology_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Server(env, n_gpus=2, topology="torus")


def test_nvlink_transfer_faster_than_pcie():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    g0, g1 = server.gpus
    nbytes = 256 * MB
    nvlink_t = server.transfer_time(g0, g1, nbytes)
    pcie_t = server.transfer_time(g0, server.dram, nbytes)
    assert pcie_t / nvlink_t > 5


def test_transfer_advances_clock_by_wire_time():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    g0, g1 = server.gpus
    nbytes = 64 * MB
    expected = server.transfer_time(g0, g1, nbytes)

    def move(env):
        yield from server.transfer(g0, g1, nbytes)

    env.process(move(env))
    env.run()
    assert env.now == pytest.approx(expected)


def test_transfers_on_same_channel_serialize():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    g0, g1 = server.gpus
    nbytes = 64 * MB
    one = server.transfer_time(g0, g1, nbytes)

    def move(env):
        yield from server.transfer(g0, g1, nbytes)

    env.process(move(env))
    env.process(move(env))
    env.run()
    assert env.now == pytest.approx(2 * one)


def test_transfers_on_distinct_channels_overlap():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    g0, g1 = server.gpus
    nbytes = 64 * MB
    one = server.transfer_time(g0, g1, nbytes)

    def fwd(env):
        yield from server.transfer(g0, g1, nbytes)

    def bwd(env):
        yield from server.transfer(g1, g0, nbytes)

    env.process(fwd(env))
    env.process(bwd(env))
    env.run()
    assert env.now == pytest.approx(one)


def test_scattered_pieces_pay_latency_per_piece():
    env = Environment()
    server = Server(env, n_gpus=2, topology="p2p")
    g0, g1 = server.gpus
    nbytes = 16 * MB
    gathered = server.transfer_time(g0, g1, nbytes, pieces=1)
    scattered = server.transfer_time(g0, g1, nbytes, pieces=256)
    assert scattered > gathered
    # 256 extra link latencies:
    assert scattered - gathered == pytest.approx(255 * server.gpu_link.latency)


def test_zero_byte_transfer_is_instant():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus

    def move(env):
        yield from server.transfer(g0, g1, 0)

    env.process(move(env))
    env.run()
    assert env.now == 0.0


def test_transfer_stats_recorded():
    env = Environment()
    server = Server(env, n_gpus=2)
    g0, g1 = server.gpus

    def move(env):
        yield from server.transfer(g0, g1, 10 * MB)

    env.process(move(env))
    env.run()
    assert server.transfer_stats.count == 1
    assert server.transfer_stats.bytes_total == 10 * MB


def test_nvswitch_distinct_pairs_do_not_contend():
    """Transfers g0->g1 and g2->g3 use disjoint switch ports."""
    env = Environment()
    server = Server(env, n_gpus=4, topology="nvswitch")
    g0, g1, g2, g3 = server.gpus
    nbytes = 128 * MB
    one = server.transfer_time(g0, g1, nbytes)

    def move(env, a, b):
        yield from server.transfer(a, b, nbytes)

    env.process(move(env, g0, g1))
    env.process(move(env, g2, g3))
    env.run()
    assert env.now == pytest.approx(one)


def test_nvswitch_shared_egress_contends():
    """Transfers g0->g1 and g0->g2 share g0's egress port."""
    env = Environment()
    server = Server(env, n_gpus=4, topology="nvswitch")
    g0, g1, g2, _ = server.gpus
    nbytes = 128 * MB
    one = server.transfer_time(g0, g1, nbytes)

    def move(env, a, b):
        yield from server.transfer(a, b, nbytes)

    env.process(move(env, g0, g1))
    env.process(move(env, g0, g2))
    env.run()
    assert env.now == pytest.approx(2 * one)


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------
def test_cluster_enumerates_gpus():
    env = Environment()
    cluster = Cluster(env, n_servers=8, gpus_per_server=2)
    assert cluster.n_gpus == 16
    assert len(cluster) == 8


def test_cluster_server_of():
    env = Environment()
    cluster = Cluster(env, n_servers=2, gpus_per_server=2)
    gpu = cluster.servers[1].gpus[0]
    assert cluster.server_of(gpu) is cluster.servers[1]


def test_cluster_server_of_foreign_gpu_raises():
    env = Environment()
    cluster = Cluster(env, n_servers=2)
    stranger = GPU(env, 0, A100_80G)
    with pytest.raises(LookupError):
        cluster.server_of(stranger)


def test_cluster_invalid_size():
    env = Environment()
    with pytest.raises(ValueError):
        Cluster(env, n_servers=0)


def test_gpu_free_hbm_matches_pool():
    env = Environment()
    server = Server(env, n_gpus=2)
    gpu = server.gpus[0]
    gpu.hbm.reserve("weights", 26 * GiB)
    assert gpu.free_hbm == 80 * GiB - 26 * GiB
