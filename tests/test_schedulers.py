"""Unit tests for the pluggable schedule backends.

The ordering *contract* (calendar pops identical to the heap on
adversarial entry mixes) is property-tested in
``tests/test_sim_ordering.py``; this file covers the backend API
itself: selection, the CalendarQueue container semantics, and the
duck-typed custom-backend path.
"""

import pytest

from repro.sim import CalendarQueue, Environment, SCHEDULER_NAMES
from repro.sim.schedulers import resolve_scheduler


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------
def test_default_environment_uses_heap():
    assert Environment().scheduler == "heap"
    assert isinstance(Environment()._queue, list)


def test_environment_scheduler_selection():
    env = Environment(scheduler="calendar")
    assert env.scheduler == "calendar"
    assert isinstance(env._queue, CalendarQueue)


def test_unknown_scheduler_name_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        Environment(scheduler="fibonacci")


def test_scheduler_names_cover_both_backends():
    assert SCHEDULER_NAMES == ("heap", "calendar")
    for name in SCHEDULER_NAMES:
        assert Environment(scheduler=name).scheduler == name


def test_resolve_none_is_heap():
    queue, push, pop, name = resolve_scheduler(None)
    assert queue == [] and name == "heap"


def test_custom_backend_instance_accepted():
    """Any object with push/pop/len/head-index works as a backend."""

    class ListBackend:
        name = "sorted-list"

        def __init__(self):
            self.entries = []

        def push(self, entry):
            self.entries.append(entry)
            self.entries.sort()

        def pop(self):
            return self.entries.pop(0)

        def __len__(self):
            return len(self.entries)

        def __getitem__(self, index):
            return self.entries[index]

    env = Environment(scheduler=ListBackend())
    assert env.scheduler == "sorted-list"
    log = []

    def proc(env, d):
        yield env.timeout(d)
        log.append(env.now)

    env.process(proc(env, 2.0))
    env.process(proc(env, 1.0))
    env.run()
    assert log == [1.0, 2.0]


def test_backend_without_push_pop_rejected():
    with pytest.raises(TypeError, match="push"):
        Environment(scheduler=object())


# ---------------------------------------------------------------------------
# CalendarQueue container semantics
# ---------------------------------------------------------------------------
def entry(t, seq):
    return (t, seq, f"ev-{seq}")


def test_calendar_queue_pops_in_time_then_seq_order():
    q = CalendarQueue()
    for e in [entry(5.0, 1), entry(0.5, 3), entry(0.5, 2), entry(2.0, 4)]:
        q.push(e)
    popped = [q.pop() for _ in range(4)]
    assert popped == [entry(0.5, 2), entry(0.5, 3), entry(2.0, 4), entry(5.0, 1)]


def test_calendar_queue_len_bool_and_peek():
    q = CalendarQueue()
    assert len(q) == 0 and not q
    q.push(entry(1.0, 1))
    q.push(entry(0.25, 2))
    assert len(q) == 2 and q
    assert q[0] == entry(0.25, 2)  # peek promotes but does not remove
    assert len(q) == 2
    assert q.pop() == entry(0.25, 2)
    assert len(q) == 1


def test_calendar_queue_only_head_is_indexable():
    q = CalendarQueue()
    q.push(entry(1.0, 1))
    with pytest.raises(IndexError):
        q[1]


def test_calendar_queue_pop_empty_raises_indexerror():
    q = CalendarQueue()
    with pytest.raises(IndexError):
        q.pop()
    q.push(entry(1.0, 1))
    q.pop()
    with pytest.raises(IndexError):
        q.pop()


def test_calendar_queue_push_into_draining_bucket_keeps_order():
    """A push racing the bucket currently being drained (the zero-delay
    wakeup case) must slot into the pending region in (time, seq) order."""
    q = CalendarQueue(bucket_width=1.0)
    for seq in (1, 2, 4):
        q.push(entry(0.5, seq))
    assert q.pop() == entry(0.5, 1)
    # Same bucket, later seq than the already-popped head: must come out
    # between seq 2 and seq 4.
    q.push(entry(0.5, 3))
    assert [q.pop() for _ in range(3)] == [
        entry(0.5, 2), entry(0.5, 3), entry(0.5, 4)
    ]


def test_calendar_queue_invalid_bucket_width():
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=0.0)


def test_calendar_queue_many_buckets_interleaved():
    """Entries spread across many buckets pushed in shuffled order drain
    globally sorted."""
    q = CalendarQueue(bucket_width=0.001)
    entries = [entry(0.001 * ((i * 7919) % 97), i) for i in range(300)]
    for e in entries:
        q.push(e)
    drained = [q.pop() for _ in range(len(entries))]
    assert drained == sorted(entries)
    assert not q
