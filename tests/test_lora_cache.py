"""Tests for the LoRA adapter cache and its load paths (Figures 8, 12)."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.hardware import Server
from repro.hardware.specs import GiB, MB
from repro.models import LoRAAdapter, synthesize_adapters
from repro.serving import LoRACache
from repro.sim import Environment


def make_cache(aqua=False, capacity=10 * GiB, whole_copy=True, offer=40 * GiB):
    env = Environment()
    server = Server(env, n_gpus=2)
    lib = None
    if aqua:
        coord = Coordinator()
        lib = AquaLib(server.gpus[0], server, coord)
        producer = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        coord.pair(lib.name, producer.name)
        producer.complete_offer(offer)
    cache = LoRACache(
        server.gpus[0],
        server,
        capacity_bytes=capacity,
        aqua_lib=lib,
        whole_copy=whole_copy,
    )
    return env, server, cache


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)


def test_cache_hit_costs_nothing():
    env, server, cache = make_cache()
    adapter = LoRAAdapter("a", nbytes=320 * MB)
    run(env, cache.ensure(adapter))
    t_first = env.now
    run(env, cache.ensure(adapter))
    assert env.now == t_first
    assert cache.hits == 1
    assert cache.misses == 1


def test_cache_lru_eviction():
    env, server, cache = make_cache(capacity=700 * MB)
    a = LoRAAdapter("a", nbytes=320 * MB)
    b = LoRAAdapter("b", nbytes=320 * MB)
    c = LoRAAdapter("c", nbytes=320 * MB)
    run(env, cache.ensure(a))
    run(env, cache.ensure(b))
    run(env, cache.ensure(c))  # evicts a (LRU)
    assert not cache.is_resident(a)
    assert cache.is_resident(b)
    assert cache.is_resident(c)


def test_cache_lru_order_updated_by_hits():
    env, server, cache = make_cache(capacity=700 * MB)
    a = LoRAAdapter("a", nbytes=320 * MB)
    b = LoRAAdapter("b", nbytes=320 * MB)
    c = LoRAAdapter("c", nbytes=320 * MB)
    run(env, cache.ensure(a))
    run(env, cache.ensure(b))
    run(env, cache.ensure(a))  # refresh a
    run(env, cache.ensure(c))  # evicts b, not a
    assert cache.is_resident(a)
    assert not cache.is_resident(b)


def test_cache_capacity_validation():
    env = Environment()
    server = Server(env, n_gpus=1)
    with pytest.raises(ValueError):
        LoRACache(server.gpus[0], server, capacity_bytes=0)


def test_adapter_bigger_than_cache_rejected():
    env, server, cache = make_cache(capacity=100 * MB)
    adapter = LoRAAdapter("big", nbytes=320 * MB)
    with pytest.raises(ValueError):
        run(env, cache.ensure(adapter))


def test_aqua_loads_faster_than_pcie_baseline():
    """Figure 8: whole-adapter NVLink copies beat per-layer PCIe loads."""
    adapter = LoRAAdapter("zephyr", nbytes=320 * MB)

    env_base, _, base = make_cache(aqua=False, whole_copy=False)
    run(env_base, base.ensure(adapter))
    baseline_time = env_base.now

    env_aqua, _, aqua = make_cache(aqua=True, whole_copy=True)
    run(env_aqua, aqua.ensure(adapter))
    aqua_time = env_aqua.now

    assert baseline_time / aqua_time > 4


def test_larger_adapters_benefit_more():
    """Figure 12: AQUA's advantage grows with adapter size."""

    def ratio(nbytes):
        adapter = LoRAAdapter("x", nbytes=nbytes)
        env_b, _, base = make_cache(aqua=False, whole_copy=False)
        run(env_b, base.ensure(adapter))
        env_a, _, aqua = make_cache(aqua=True, whole_copy=True)
        run(env_a, aqua.ensure(adapter))
        return env_b.now - env_a.now  # absolute time saved per load

    assert ratio(320 * MB) > ratio(160 * MB)


def test_register_pre_stages_on_producer():
    env, server, cache = make_cache(aqua=True)
    adapters = synthesize_adapters(5, 160 * MB)
    for adapter in adapters:
        cache.register(adapter)
    fast = cache.aqua_lib.offloaded_fast_bytes
    assert fast == 5 * 160 * MB


def test_store_overflow_falls_back_to_dram():
    env, server, cache = make_cache(aqua=True, offer=1 * GiB)
    adapters = synthesize_adapters(10, 320 * MB)  # 3.2 GB total > 1 GiB lease
    for adapter in adapters:
        cache.register(adapter)
    lib = cache.aqua_lib
    assert lib.offloaded_fast_bytes <= 1 * GiB
    assert lib.offloaded_dram_bytes > 0


def test_bytes_loaded_counter():
    env, server, cache = make_cache()
    adapter = LoRAAdapter("a", nbytes=320 * MB)
    run(env, cache.ensure(adapter))
    run(env, cache.ensure(adapter))
    assert cache.bytes_loaded == 320 * MB
