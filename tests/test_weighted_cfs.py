"""Tests for weighted fair scheduling and the §B paper-API aliases."""

import pytest

from repro.aqua import AquaLib, Coordinator
from repro.aqua.coordinator import DRAM
from repro.aqua.tensor import AquaTensor
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.models import CODELLAMA_34B
from repro.serving import Request, WeightedCFSEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


# ---------------------------------------------------------------------------
# WeightedCFSEngine
# ---------------------------------------------------------------------------
def run_weighted(weights, n_per_class=8, until=400.0):
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = WeightedCFSEngine(
        server.gpus[0], server, CODELLAMA_34B, slice_tokens=5
    )
    engine.start()
    classes = {}
    for weight in weights:
        reqs = [
            Request(
                arrival_time=0.0,
                prompt_tokens=3000,
                max_new_tokens=500,
                weight=weight,
            )
            for _ in range(n_per_class)
        ]
        submit_all(env, engine, reqs)
        classes[weight] = reqs
    env.run(until=until)
    return classes


def test_weight_validation():
    with pytest.raises(ValueError):
        Request(arrival_time=0, prompt_tokens=1, max_new_tokens=1, weight=0)


def test_heavier_class_gets_more_service():
    # Sample mid-contention, before either class can finish.
    classes = run_weighted([1.0, 4.0], until=40.0)
    light = sum(r.generated_tokens for r in classes[1.0])
    heavy = sum(r.generated_tokens for r in classes[4.0])
    assert not all(r.done for r in classes[4.0])
    # Not exactly 4x (slice quantization), but clearly differentiated.
    assert heavy > 2 * light


def test_equal_weights_equal_service():
    classes = run_weighted([1.0, 1.0 + 1e-12], until=40.0)
    a, b = (sum(r.generated_tokens for r in reqs) for reqs in classes.values())
    assert abs(a - b) / max(a, b) < 0.3


def test_weighted_engine_completes_everything_eventually():
    classes = run_weighted([1.0, 4.0], n_per_class=4, until=1200.0)
    for reqs in classes.values():
        assert all(r.done for r in reqs)


# ---------------------------------------------------------------------------
# Paper-API aliases (§B.1)
# ---------------------------------------------------------------------------
def make_libs(offer=8 * GiB):
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    consumer = AquaLib(server.gpus[0], server, coord)
    producer = AquaLib(server.gpus[1], server, coord)
    coord.pair(consumer.name, producer.name)
    if offer:
        producer.complete_offer(offer)
    return env, server, consumer, producer


def test_allocate_aqua_tensor_places_and_registers():
    env, server, consumer, producer = make_libs()
    tensor = AquaTensor(consumer, 1 * GiB)
    location = consumer.allocate_aqua_tensor(tensor)
    assert location == producer.name
    assert tensor.id in consumer.tensors


def test_get_tensors_to_move_reports_reclaim():
    env, server, consumer, producer = make_libs()
    tensor = consumer.to_responsive_tensor(1 * GiB)
    coord = consumer.coordinator
    coord.request("POST", "/reclaim_request", {"producer": producer.name})
    moves = consumer.get_tensors_to_move()
    assert moves == {tensor.id: DRAM}


def test_done_moving_tensors_publishes():
    env, server, consumer, producer = make_libs()
    tensor = consumer.to_responsive_tensor(1 * GiB)
    coord = consumer.coordinator
    coord.request("POST", "/reclaim_request", {"producer": producer.name})
    moves = consumer.get_tensors_to_move()
    consumer.done_moving_tensors(moves)
    status = coord.request("GET", "/reclaim_status", {"producer": producer.name}).body
    assert status["done"]


def test_to_torch_tensor_pointer_staleness():
    env, server, consumer, producer = make_libs(offer=0)
    tensor = consumer.to_responsive_tensor(1 * GiB)
    pointer = tensor.to_torch_tensor()
    assert pointer.device is server.dram
    assert not pointer.stale
    # A migration (upgrade to the producer) invalidates old pointers.
    producer.complete_offer(4 * GiB)
    proc = env.process(consumer.respond())
    env.run(until=proc)
    assert pointer.stale
    fresh = tensor.to_torch_tensor()
    assert fresh.device is producer.gpu
    assert not fresh.stale


def test_to_torch_tensor_on_freed_rejected():
    env, server, consumer, producer = make_libs()
    tensor = consumer.to_responsive_tensor(1 * GiB)
    tensor.free()
    with pytest.raises(RuntimeError):
        tensor.to_torch_tensor()
