"""Property suite for the global router, admission control and NHPP
workloads (docs/frontier.md).

The four headline invariants from the frontier design, each pinned with
Hypothesis:

* **request conservation** — ``offered == routed + shed`` (total and
  per tenant), cross-checked against an independent shadow ledger fed
  by the event listener hook, with violations reported through the same
  :class:`repro.audit.AuditViolation` machinery the byte audits use;
* **deterministic tie-breaking** — equal load resolves to the lowest
  frontend index, and identical runs produce identical ledger digests;
* **session-affinity stability** — a user's home mapping survives
  queue-full reroutes (overflow goes elsewhere, the pin does not move);
* **shed-rate monotonicity** — offering more load never sheds a
  smaller fraction, made structural by the nested-by-construction NHPP
  traces (lower-rate arrival sets are strict subsets of higher-rate
  ones drawn from the same seed and cap).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.frontier import frontier_cell
from repro.hardware.cluster import Cluster
from repro.models.llm import MISTRAL_7B
from repro.routing import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    AdmissionController,
    GlobalRouter,
    LeastLoadedPolicy,
    ServerFrontend,
    SessionAffinityPolicy,
    TenantClass,
    TokenBucket,
    make_policy,
    stable_home,
)
from repro.sim import Environment
from repro.workloads.arrivals import (
    diurnal_shape,
    flash_crowd_shape,
    multi_region_tenants,
    nhpp_trace,
    steady_shape,
)

#: Small-but-real cell dimensions: seconds of wall time for the whole
#: suite, while still driving queueing, shedding and reroutes.
SMALL = dict(n_servers=2, concurrency=4, max_queue_depth=12, drain=8.0)


def _build(env, policy, tenants=None, max_queue_depth=12, concurrency=4):
    cluster = Cluster(env, n_servers=2)
    frontends = [
        ServerFrontend(env, server, MISTRAL_7B, concurrency=concurrency)
        for server in cluster
    ]
    admission = AdmissionController(
        tenants=tenants, max_queue_depth=max_queue_depth
    )
    return GlobalRouter(env, frontends, policy, admission)


def _drive(env, router, trace):
    def proc(env):
        for tenant, request in trace:
            delay = request.arrival_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            router.submit(request, tenant)

    env.process(proc(env))


# ---------------------------------------------------------------------------
# Request conservation: routed + shed == offered, shadow-checked
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    rate=st.floats(4.0, 48.0),
    policy_name=st.sampled_from(
        ["round-robin", "least-loaded", "session-affinity"]
    ),
    rate_limit=st.one_of(st.none(), st.floats(2.0, 10.0)),
)
def test_conservation_with_shadow_ledger(seed, rate, policy_name, rate_limit):
    env = Environment()
    tenants = [
        TenantClass(name="region0", priority=0, rate_limit=rate_limit),
        TenantClass(name="region1", priority=1),
        TenantClass(name="region2", priority=2),
    ]
    router = _build(env, make_policy(policy_name), tenants=tenants)
    # Independent shadow books, fed only by the listener event stream —
    # the cross-check that the ledger's own counters cannot drift from
    # the events they claim to describe.
    shadow = {"offered": 0, "routed": 0, "shed": 0, "completed": 0}
    router.ledger.listeners.append(
        lambda kind, tenant, detail: shadow.__setitem__(
            kind if kind != "shed" else "shed", shadow[kind] + 1
        )
    )
    trace = nhpp_trace(
        rate,
        10.0,
        seed=seed,
        tenants=multi_region_tenants(n=3, period=10.0),
    )
    _drive(env, router, trace)
    env.run(until=20.0)

    ledger = router.ledger
    assert ledger.offered == len(trace)
    assert ledger.offered == ledger.routed + ledger.shed_total
    assert ledger.completed <= ledger.routed
    # Shadow agrees event-for-event with the ledger's counters.
    assert shadow == {
        "offered": ledger.offered,
        "routed": ledger.routed,
        "shed": ledger.shed_total,
        "completed": ledger.completed,
    }
    # Per-tenant books balance too, and the audit-style check is clean.
    for books in ledger.per_tenant.values():
        assert books["offered"] == books["routed"] + sum(books["shed"].values())
    assert router.check() == []
    report = router.report()
    assert report["ok"] and report["violations"] == []


def test_ledger_check_reports_audit_violations_when_cooked():
    """Non-vacuity: a corrupted ledger yields AuditViolation entries."""
    env = Environment()
    router = _build(env, LeastLoadedPolicy())
    trace = nhpp_trace(10.0, 5.0, seed=1)
    _drive(env, router, trace)
    env.run(until=10.0)
    router.ledger.routed += 1  # cook the books
    violations = router.check()
    assert violations, "cooked books must be detected"
    assert all(v.law == "request-conservation" for v in violations)
    assert not router.report()["ok"]


# ---------------------------------------------------------------------------
# Deterministic tie-breaking and bit-identical reruns
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(depths=st.lists(st.integers(0, 8), min_size=1, max_size=8))
def test_least_loaded_breaks_ties_to_lowest_index(depths):
    class Stub:
        def __init__(self, depth):
            self.depth = depth

    frontends = [Stub(d) for d in depths]
    chosen = LeastLoadedPolicy().choose(None, "default", frontends)
    best = min(depths)
    assert depths[chosen] == best
    assert chosen == depths.index(best)  # lowest index among ties


def test_round_robin_cycles_deterministically():
    class Stub:
        depth = 0

    frontends = [Stub(), Stub(), Stub()]
    policy = make_policy("round-robin")
    picks = [policy.choose(None, "default", frontends) for _ in range(7)]
    assert picks == [0, 1, 2, 0, 1, 2, 0]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), rate=st.floats(8.0, 40.0))
def test_identical_cells_are_bit_identical(seed, rate):
    kwargs = dict(
        policy="least-loaded", rate=rate, rate_cap=72.0, duration=8.0,
        seed=seed, **SMALL
    )
    first = frontier_cell(**kwargs)
    second = frontier_cell(**kwargs)
    assert first == second
    assert first["ledger_digest"] == second["ledger_digest"]


def test_stable_home_is_processwide_deterministic():
    # SHA-256 placement, not hash(): pin concrete values so a silent
    # switch to randomised string hashing cannot pass.
    assert stable_home(0, 4) == stable_home(0, 4)
    assert [stable_home(u, 7) for u in range(5)] == [
        stable_home(u, 7) for u in range(5)
    ]
    assert stable_home("user-42", 8) == stable_home("user-42", 8)


# ---------------------------------------------------------------------------
# Session-affinity stability across reroutes
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_session_affinity_survives_reroutes(seed):
    env = Environment()
    policy = SessionAffinityPolicy()
    router = _build(env, policy)
    n = len(router.frontends)
    trace = nhpp_trace(40.0, 10.0, seed=seed)  # overload: forces overflow

    routed_to = []  # (user, index, home-at-submit)

    def proc(env):
        for tenant, request in trace:
            delay = request.arrival_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            idx = router.submit(request, tenant)
            if idx is not None:
                routed_to.append((request.user, idx, policy.home_of(request.user)))

    env.process(proc(env))
    env.run(until=20.0)

    # Stability: every user's home equals its stable placement and was
    # never rewritten, no matter how many overflow reroutes happened.
    for user, home in policy._home.items():
        assert home == stable_home(user, n)
    for user, idx, home_at_submit in routed_to:
        assert home_at_submit == stable_home(user, n)
    # Non-vacuity: the overload really did reroute someone off home.
    rerouted = [1 for user, idx, home in routed_to if idx != home]
    assert rerouted, "overloaded run should exercise the fallback path"
    assert router.check() == []


def test_session_affinity_prefers_home_when_uncongested():
    env = Environment()
    policy = SessionAffinityPolicy()
    router = _build(env, policy)
    trace = nhpp_trace(3.0, 10.0, seed=5)  # light load: no overflow
    routed = {}

    def proc(env):
        for tenant, request in trace:
            delay = request.arrival_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            idx = router.submit(request, tenant)
            routed.setdefault(request.user, set()).add(idx)

    env.process(proc(env))
    env.run(until=20.0)
    for user, indices in routed.items():
        assert indices == {stable_home(user, len(router.frontends))}


# ---------------------------------------------------------------------------
# Shed-rate monotonicity in offered load (structural via nesting)
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(["round-robin", "least-loaded"]),
)
def test_shed_rate_monotone_in_offered_load(seed, policy_name):
    previous = -1.0
    for rate in (6.0, 12.0, 24.0, 48.0):
        cell = frontier_cell(
            policy=policy_name, rate=rate, rate_cap=72.0, duration=8.0,
            seed=seed, **SMALL
        )
        assert cell["ledger_ok"], cell["violations"]
        assert cell["shed_rate"] >= previous - 1e-12, (
            f"shed rate fell from {previous} to {cell['shed_rate']} "
            f"when offered load rose to {rate} (policy {policy_name})"
        )
        previous = cell["shed_rate"]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    low=st.floats(2.0, 20.0),
    factor=st.floats(1.2, 3.0),
)
def test_nhpp_traces_nest_across_rates(seed, low, factor):
    """The structural half: the low-rate trace is a strict subset of the
    high-rate one, request for request (same id, time, tokens, user)."""
    high = low * factor
    cap = high * 1.5
    shape = diurnal_shape(period=10.0)
    trace_low = nhpp_trace(low, 10.0, seed=seed, rate_cap=cap, shape=shape)
    trace_high = nhpp_trace(high, 10.0, seed=seed, rate_cap=cap, shape=shape)
    by_id = {r.req_id: (t, r) for t, r in trace_high}
    assert len(trace_low) <= len(trace_high)
    for tenant, request in trace_low:
        assert request.req_id in by_id, "low-rate arrival missing at high rate"
        high_tenant, twin = by_id[request.req_id]
        assert high_tenant == tenant
        assert twin.arrival_time == request.arrival_time
        assert twin.prompt_tokens == request.prompt_tokens
        assert twin.max_new_tokens == request.max_new_tokens
        assert twin.user == request.user


# ---------------------------------------------------------------------------
# Admission control mechanics
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    rate=st.floats(0.5, 20.0),
    burst=st.floats(1.0, 16.0),
    gaps=st.lists(st.floats(0.0, 2.0), min_size=1, max_size=40),
)
def test_token_bucket_never_over_admits(rate, burst, gaps):
    bucket = TokenBucket(rate, burst)
    now, admitted = 0.0, 0
    for gap in gaps:
        now += gap
        if bucket.allow(now):
            admitted += 1
        assert 0.0 <= bucket.tokens <= burst
    # Can never admit more than the initial burst plus the refill.
    assert admitted <= burst + rate * now + 1


def test_token_bucket_admits_everything_under_the_rate():
    bucket = TokenBucket(rate=2.0, burst=1.0)
    assert all(bucket.allow(t * 0.5 + 0.5) for t in range(20))


@settings(max_examples=30, deadline=None)
@given(priority=st.integers(0, 8), depth=st.integers(1, 64))
def test_depth_limit_halves_per_priority_level(priority, depth):
    controller = AdmissionController(
        tenants=[TenantClass(name="t", priority=priority)],
        max_queue_depth=depth,
    )
    limit = controller.depth_limit("t")
    assert limit == max(1, depth >> priority)
    assert controller.check_depth("t", limit) == SHED_QUEUE_FULL
    assert controller.check_depth("t", limit - 1) is None


def test_rate_limited_tenant_sheds_with_reason():
    env = Environment()
    router = _build(
        env,
        LeastLoadedPolicy(),
        tenants=[TenantClass(name="default", rate_limit=1.0, burst=1.0)],
    )
    trace = nhpp_trace(30.0, 4.0, seed=9)
    _drive(env, router, trace)
    env.run(until=10.0)
    ledger = router.ledger
    assert ledger.shed[SHED_RATE_LIMIT] > 0
    assert ledger.offered == ledger.routed + ledger.shed_total


# ---------------------------------------------------------------------------
# NHPP shape and validation edge cases
# ---------------------------------------------------------------------------
def test_shapes_respect_declared_peaks():
    for shape in (
        steady_shape(),
        diurnal_shape(period=30.0, amplitude=0.7),
        flash_crowd_shape(at=10.0, magnitude=3.0),
    ):
        for i in range(301):
            t = i * 0.1
            assert 0.0 <= shape(t) <= shape.peak + 1e-12


def test_diurnal_mean_is_about_one_over_a_full_period():
    shape = diurnal_shape(period=20.0, amplitude=0.5)
    samples = [shape(i * 0.01) for i in range(2000)]
    assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.01)


def test_nhpp_rejects_insufficient_rate_cap():
    with pytest.raises(ValueError, match="rate_cap"):
        nhpp_trace(
            10.0, 5.0, seed=0, rate_cap=12.0, shape=flash_crowd_shape(at=2.0)
        )


def test_multi_region_mix_phases_are_staggered():
    regions = multi_region_tenants(n=3, period=30.0)
    assert [r.name for r in regions] == ["region0", "region1", "region2"]
    # At region0's trough the later regions are already past theirs.
    values = [r.shape(0.0) for r in regions]
    assert values[0] == min(values)
    assert len(set(round(v, 9) for v in values)) > 1
