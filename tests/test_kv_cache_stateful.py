"""Stateful property testing of the paged KV cache.

Hypothesis drives random admit/append/swap/release sequences and checks
the block-accounting invariants that the serving engines rely on.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.memory import BlockAllocator, PagedKVCache
from repro.models import MISTRAL_7B

N_BLOCKS = 64
BLOCK_TOKENS = 16


class KVCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        allocator = BlockAllocator(
            n_blocks=N_BLOCKS,
            block_bytes=MISTRAL_7B.kv_bytes_per_token * BLOCK_TOKENS,
        )
        self.cache = PagedKVCache(MISTRAL_7B, allocator, block_tokens=BLOCK_TOKENS)
        self.next_id = 0
        self.model_tokens: dict[int, int] = {}  # oracle: seq -> tokens
        self.swapped: set[int] = set()

    # ------------------------------------------------------------------
    @rule(tokens=st.integers(min_value=1, max_value=200))
    def admit(self, tokens):
        seq_id = self.next_id
        self.next_id += 1
        if self.cache.can_admit(tokens):
            self.cache.admit(seq_id, tokens)
            self.model_tokens[seq_id] = tokens

    @rule(data=st.data())
    def append(self, data):
        resident = [s for s in self.model_tokens if s not in self.swapped]
        if not resident:
            return
        seq_id = data.draw(st.sampled_from(sorted(resident)))
        if self.cache.can_append(seq_id):
            self.cache.append_token(seq_id)
            self.model_tokens[seq_id] += 1

    @rule(data=st.data())
    def swap_out(self, data):
        resident = [s for s in self.model_tokens if s not in self.swapped]
        if not resident:
            return
        seq_id = data.draw(st.sampled_from(sorted(resident)))
        nbytes = self.cache.swap_out(seq_id)
        assert nbytes == MISTRAL_7B.kv_bytes(self.model_tokens[seq_id])
        self.swapped.add(seq_id)

    @rule(data=st.data())
    def swap_in(self, data):
        if not self.swapped:
            return
        seq_id = data.draw(st.sampled_from(sorted(self.swapped)))
        if self.cache.can_swap_in(seq_id):
            self.cache.swap_in(seq_id)
            self.swapped.discard(seq_id)

    @rule(data=st.data())
    def release(self, data):
        if not self.model_tokens:
            return
        seq_id = data.draw(st.sampled_from(sorted(self.model_tokens)))
        self.cache.release(seq_id)
        del self.model_tokens[seq_id]
        self.swapped.discard(seq_id)

    # ------------------------------------------------------------------
    @invariant()
    def token_counts_match_oracle(self):
        for seq_id, tokens in self.model_tokens.items():
            assert self.cache.sequences[seq_id].tokens == tokens

    @invariant()
    def resident_blocks_match_token_counts(self):
        for seq_id, tokens in self.model_tokens.items():
            seq = self.cache.sequences[seq_id]
            if seq.is_resident:
                assert len(seq.blocks) == self.cache.blocks_for(tokens)
            else:
                assert seq.blocks == []

    @invariant()
    def allocator_accounting_consistent(self):
        allocator = self.cache.allocator
        held = sum(
            len(s.blocks) for s in self.cache.sequences.values() if s.is_resident
        )
        assert allocator.used_blocks == held
        assert allocator.used_blocks + allocator.free_blocks == N_BLOCKS

    @invariant()
    def no_block_shared_between_sequences(self):
        seen = set()
        for seq in self.cache.sequences.values():
            for block in seq.blocks:
                assert block not in seen
                seen.add(block)

    @invariant()
    def swapped_set_matches_cache(self):
        assert set(self.cache.swapped_sequences) == self.swapped


KVCacheMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=50, deadline=None
)
TestKVCacheStateMachine = KVCacheMachine.TestCase
