"""Focused tests for the FlexGen-style streaming engine."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.hardware import Server
from repro.models import OPT_30B, SD_15
from repro.serving import BatchEngine, FlexGenEngine, Request
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def make_flexgen(paired=False, **kwargs):
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    engine = FlexGenEngine(
        server.gpus[0], server, OPT_30B, aqua_lib=lib, workspace_tokens=8000, **kwargs
    )
    if paired:
        producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
        producer = BatchEngine(server.gpus[1], server, SD_15, aqua_lib=producer_lib)
        producer.start()
        coord.pair(lib.name, producer_lib.name)
    engine.start()
    return env, engine


def test_flexgen_prefill_before_first_token():
    env, engine = make_flexgen()
    req = Request(arrival_time=0.0, prompt_tokens=8000, max_new_tokens=5)
    engine.submit(req)
    env.run(until=120)
    assert req.done
    # TTFT includes a multi-second 8000-token prefill.
    assert req.ttft > 1.0


def test_flexgen_serves_requests_sequentially():
    env, engine = make_flexgen()
    a = Request(arrival_time=0.0, prompt_tokens=4000, max_new_tokens=3)
    b = Request(arrival_time=0.0, prompt_tokens=4000, max_new_tokens=3)
    engine.submit(a)
    engine.submit(b)
    env.run(until=600)
    assert a.done and b.done
    assert b.first_token_time > a.finish_time


def test_flexgen_horizon_truncates_unbounded_generation():
    env, engine = make_flexgen(alloc_horizon_tokens=32)
    req = Request(arrival_time=0.0, prompt_tokens=1000, max_new_tokens=10_000)
    engine.submit(req)
    env.run(until=600)
    assert req.generated_tokens <= 33  # horizon + the prefill token


def test_flexgen_context_tensor_freed_after_request():
    env, engine = make_flexgen()
    req = Request(arrival_time=0.0, prompt_tokens=2000, max_new_tokens=4)
    engine.submit(req)
    env.run(until=300)
    assert req.done
    assert engine.aqua_lib.tensors == {}
    assert engine.server.dram.pool.used == 0


def test_flexgen_token_time_grows_with_context():
    """Later tokens re-read a longer KV cache, so they take longer."""
    env, engine = make_flexgen()
    req = Request(arrival_time=0.0, prompt_tokens=8000, max_new_tokens=40)
    engine.submit(req)
    times = []

    def watcher(env):
        last = 0
        while not req.done:
            if req.generated_tokens > last:
                times.append((req.generated_tokens, env.now))
                last = req.generated_tokens
            yield env.timeout(0.05)

    env.process(watcher(env))
    env.run(until=600)
    assert req.done
    # Compare early vs late inter-token gaps.
    gaps = [t2 - t1 for (_, t1), (_, t2) in zip(times, times[1:])]
    assert sum(gaps[-5:]) >= sum(gaps[1:6])


def test_flexgen_migration_to_producer_mid_request():
    """A producer appearing mid-request upgrades the context via respond()."""
    env, engine = make_flexgen(paired=False)
    # Pair with a producer that only donates after the request started.
    coord = engine.aqua_lib.coordinator
    server = engine.server
    producer_lib = AquaLib(server.gpus[1], server, coord)
    coord.pair(engine.aqua_lib.name, producer_lib.name)

    req = Request(arrival_time=0.0, prompt_tokens=8000, max_new_tokens=400)
    engine.submit(req)
    env.run(until=20)
    slow_tokens = req.generated_tokens
    producer_lib.complete_offer(40 * 1024**3)  # donation appears now
    env.run(until=40)
    fast_tokens = req.generated_tokens - slow_tokens
    # The second window, on NVLink, generates far more tokens.
    assert fast_tokens > 2 * slow_tokens
    assert engine.aqua_lib.offloaded_fast_bytes > 0
