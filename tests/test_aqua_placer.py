"""Tests for AQUA-PLACER: the MILP, stable matching and greedy fallback."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqua import AquaPlacer, ModelInstance, PlacementError, stable_match
from repro.hardware.specs import GiB


def producer(name, gib):
    return ModelInstance(name=name, model=name, memory_bytes=int(gib * GiB))


def consumer(name, gib):
    return ModelInstance(name=name, model=name, memory_bytes=-int(gib * GiB))


# ---------------------------------------------------------------------------
# The motivating example (Figure 4)
# ---------------------------------------------------------------------------
def test_fig4_colocation():
    """Two LLMs + two vision models on two 2-GPU servers must be split
    one consumer + one producer per server, never two LLMs together."""
    instances = [
        consumer("llm-0", 20),
        consumer("llm-1", 20),
        producer("vision-0", 30),
        producer("vision-1", 30),
    ]
    placer = AquaPlacer(n_servers=2, gpus_per_server=2)
    placement = placer.place(instances)
    for s in (0, 1):
        here = placement.models_on_server(s)
        assert len(here) == 2
        kinds = {name.split("-")[0] for name in here}
        assert kinds == {"llm", "vision"}
    assert len(placement.pairs) == 2
    assert not placement.unmatched_consumers(instances)


def test_every_consumer_matched_when_enough_producers():
    instances = [
        consumer("c0", 15),
        consumer("c1", 25),
        consumer("c2", 10),
        producer("p0", 30),
        producer("p1", 40),
        producer("p2", 20),
    ]
    placer = AquaPlacer(n_servers=3, gpus_per_server=2)
    placement = placer.place(instances)
    assert not placement.unmatched_consumers(instances)
    # One producer is paired with at most one consumer by design (§4).
    producers_used = [p for _, p in placement.pairs]
    assert len(producers_used) == len(set(producers_used))


def test_gpu_slots_unique():
    instances = [consumer(f"c{i}", 10) for i in range(4)] + [
        producer(f"p{i}", 20) for i in range(4)
    ]
    placer = AquaPlacer(n_servers=4, gpus_per_server=2)
    placement = placer.place(instances)
    slots = list(placement.gpu_of.values())
    assert len(slots) == len(set(slots))
    for server, gpu in slots:
        assert 0 <= server < 4
        assert 0 <= gpu < 2


def test_memory_balance_objective():
    """The MILP balances memory: big producers spread across servers."""
    instances = [
        producer("p-big", 60),
        producer("p-small", 20),
        consumer("c-big", 50),
        consumer("c-small", 15),
    ]
    placer = AquaPlacer(n_servers=2, gpus_per_server=2)
    placement = placer.place(instances)
    # The big consumer should sit with the big producer.
    assert placement.server_of["c-big"] == placement.server_of["p-big"]
    assert placement.server_of["c-small"] == placement.server_of["p-small"]


def test_too_many_models_rejected():
    placer = AquaPlacer(n_servers=1, gpus_per_server=2)
    with pytest.raises(PlacementError):
        placer.place([consumer(f"c{i}", 10) for i in range(3)])


def test_duplicate_names_rejected():
    placer = AquaPlacer(n_servers=2, gpus_per_server=2)
    with pytest.raises(PlacementError):
        placer.place([consumer("x", 10), producer("x", 10)])


def test_empty_input():
    placer = AquaPlacer(n_servers=2, gpus_per_server=2)
    placement = placer.place([])
    assert placement.server_of == {}
    assert placement.pairs == []


def test_invalid_cluster_dimensions():
    with pytest.raises(ValueError):
        AquaPlacer(n_servers=0, gpus_per_server=2)
    with pytest.raises(ValueError):
        AquaPlacer(n_servers=1, gpus_per_server=2, solver="quantum")


def test_solve_time_recorded():
    placer = AquaPlacer(n_servers=2, gpus_per_server=2)
    placement = placer.place([consumer("c0", 10), producer("p0", 20)])
    assert placement.solve_seconds > 0


# ---------------------------------------------------------------------------
# Greedy solver
# ---------------------------------------------------------------------------
def test_greedy_matches_milp_on_easy_case():
    instances = [
        consumer("llm-0", 20),
        consumer("llm-1", 20),
        producer("vision-0", 30),
        producer("vision-1", 30),
    ]
    greedy = AquaPlacer(n_servers=2, gpus_per_server=2, solver="greedy").place(instances)
    for s in (0, 1):
        kinds = {name.split("-")[0] for name in greedy.models_on_server(s)}
        assert kinds == {"llm", "vision"}
    assert len(greedy.pairs) == 2


def test_greedy_capacity_respected():
    instances = [consumer(f"c{i}", 10) for i in range(3)] + [
        producer(f"p{i}", 20) for i in range(3)
    ]
    placement = AquaPlacer(n_servers=3, gpus_per_server=2, solver="greedy").place(
        instances
    )
    for s in range(3):
        assert len(placement.models_on_server(s)) <= 2


# ---------------------------------------------------------------------------
# Stable matching
# ---------------------------------------------------------------------------
def test_stable_match_best_fit():
    consumers = [consumer("c0", 10)]
    producers = [producer("p-big", 50), producer("p-fit", 12)]
    pairs = stable_match(consumers, producers)
    assert pairs == [("c0", "p-fit")]


def test_stable_match_prefers_largest_deficit():
    consumers = [consumer("c-small", 5), consumer("c-big", 40)]
    producers = [producer("p0", 45)]
    pairs = stable_match(consumers, producers)
    assert ("c-big", "p0") in pairs
    assert len(pairs) == 1


def test_stable_match_insufficient_producer_still_matched():
    """A producer short of the full deficit still beats DRAM-only."""
    consumers = [consumer("c0", 40)]
    producers = [producer("p0", 10)]
    assert stable_match(consumers, producers) == [("c0", "p0")]


def test_stable_match_empty_inputs():
    assert stable_match([], [producer("p0", 10)]) == []
    assert stable_match([consumer("c0", 10)], []) == []


def test_stable_match_no_producer_reuse():
    consumers = [consumer(f"c{i}", 10 + i) for i in range(4)]
    producers = [producer(f"p{i}", 20) for i in range(2)]
    pairs = stable_match(consumers, producers)
    assert len(pairs) == 2
    used = [p for _, p in pairs]
    assert len(used) == len(set(used))


@given(
    n_consumers=st.integers(min_value=0, max_value=6),
    n_producers=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=60, deadline=None)
def test_stable_match_is_stable(n_consumers, n_producers, seed):
    """Property: no blocking pair exists in the produced matching."""
    import random

    rng = random.Random(seed)
    consumers = [consumer(f"c{i}", rng.randint(1, 60)) for i in range(n_consumers)]
    producers = [producer(f"p{i}", rng.randint(1, 60)) for i in range(n_producers)]
    pairs = stable_match(consumers, producers)
    matched_c = {c for c, _ in pairs}
    matched_p = {p for _, p in pairs}
    # Everyone who can be matched is matched (the market clears):
    assert len(pairs) == min(n_consumers, n_producers)
    # All names valid and unique:
    assert matched_c <= {c.name for c in consumers}
    assert matched_p <= {p.name for p in producers}
    assert len(matched_c) == len(pairs)
    assert len(matched_p) == len(pairs)


@given(
    n_pairs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_milp_placement_constraints_hold(n_pairs, seed):
    """Property: MILP output satisfies Algorithm 1's hard constraints."""
    import random

    rng = random.Random(seed)
    instances = []
    for i in range(n_pairs):
        instances.append(consumer(f"c{i}", rng.randint(5, 40)))
        instances.append(producer(f"p{i}", rng.randint(5, 40)))
    placer = AquaPlacer(n_servers=n_pairs, gpus_per_server=2)
    placement = placer.place(instances)
    # (1) every model placed exactly once
    assert set(placement.server_of) == {m.name for m in instances}
    # (2) at most G models per server
    for s in range(n_pairs):
        assert len(placement.models_on_server(s)) <= 2
    # pairs are intra-server
    for c, p in placement.pairs:
        assert placement.server_of[c] == placement.server_of[p]
