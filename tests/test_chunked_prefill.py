"""Tests for chunked prefill (DeepSpeed-FastGen-style prompt ingestion)."""

import pytest

from repro.hardware import Server
from repro.models import CODELLAMA_34B, MISTRAL_7B
from repro.serving import Request, VLLMEngine
from repro.sim import Environment
from repro.workloads.arrivals import submit_all


def make_engine(chunk=512, model=MISTRAL_7B):
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(
        server.gpus[0], server, model, chunked_prefill_tokens=chunk
    )
    engine.start()
    return env, server, engine


def test_chunk_validation():
    env = Environment()
    server = Server(env, n_gpus=1)
    with pytest.raises(ValueError):
        VLLMEngine(server.gpus[0], server, MISTRAL_7B, chunked_prefill_tokens=0)


def test_chunked_prefill_completes_requests():
    env, server, engine = make_engine()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=1500, max_new_tokens=20)
        for _ in range(4)
    ]
    submit_all(env, engine, requests)
    env.run(until=120)
    assert all(r.done for r in requests)
    assert engine.prefilling == []
    assert engine.allocator.used_blocks == 0


def test_chunked_prefill_ttft_close_to_whole_prompt():
    """Chunking adds little to the prompt's own TTFT."""

    def ttft(chunk):
        env, server, engine = (
            make_engine(chunk) if chunk else (None, None, None)
        )
        if chunk is None:
            env = Environment()
            server = Server(env, n_gpus=1)
            engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
            engine.start()
        req = Request(arrival_time=0.0, prompt_tokens=2000, max_new_tokens=5)
        engine.submit(req)
        env.run(until=60)
        return req.ttft

    assert ttft(512) < 1.5 * ttft(None)


def test_chunked_prefill_smooths_decode_latency():
    """While a long prompt ingests, already-running requests keep
    generating — the whole point of chunked prefill."""

    def tokens_during_ingest(chunk):
        env = Environment()
        server = Server(env, n_gpus=1)
        engine = VLLMEngine(
            server.gpus[0],
            server,
            CODELLAMA_34B,
            chunked_prefill_tokens=chunk,
        )
        engine.start()
        # A chatty request starts first...
        chatty = Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=4000)
        engine.submit(chatty)
        env.run(until=2.0)
        tokens_before = chatty.generated_tokens
        # ...then a massive prompt arrives and starts prefilling.
        big = Request(arrival_time=2.0, prompt_tokens=12000, max_new_tokens=5)
        submit_all(env, engine, [big])
        env.run(until=8.0)
        return chatty.generated_tokens - tokens_before

    chunked = tokens_during_ingest(512)
    whole = tokens_during_ingest(None)
    assert chunked > 1.5 * whole


def test_chunked_prefill_respects_max_batch():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(
        server.gpus[0],
        server,
        MISTRAL_7B,
        chunked_prefill_tokens=256,
        max_batch=2,
    )
    engine.start()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=400, max_new_tokens=40)
        for _ in range(5)
    ]
    submit_all(env, engine, requests)
    peak = [0]

    def watch(env):
        while True:
            peak[0] = max(peak[0], len(engine.running) + len(engine.prefilling))
            yield env.timeout(0.02)

    env.process(watch(env))
    env.run(until=120)
    assert all(r.done for r in requests)
    assert peak[0] <= 2


def test_chunked_prefill_with_oversized_prompt_rejects():
    env, server, engine = make_engine(chunk=512, model=CODELLAMA_34B)
    huge = Request(arrival_time=0.0, prompt_tokens=200_000, max_new_tokens=5)
    engine.submit(huge)
    env.run(until=10)
    assert huge in engine.rejected
