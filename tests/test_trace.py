"""Tests for the tracing module and its engine integration."""

import json

import pytest

from repro.hardware import Server
from repro.models import CODELLAMA_34B, MISTRAL_7B
from repro.serving import CFSEngine, Request, VLLMEngine
from repro.sim import Environment
from repro.trace import Tracer
from repro.workloads.arrivals import submit_all


# ---------------------------------------------------------------------------
# Tracer primitives
# ---------------------------------------------------------------------------
def test_add_span_and_queries():
    tracer = Tracer()
    tracer.add_span("work", "t0", 1.0, 3.0, batch=4)
    tracer.add_span("work", "t0", 5.0, 6.0)
    tracer.add_span("other", "t1", 0.0, 1.0)
    assert tracer.total_time("t0") == 3.0
    assert tracer.total_time("t0", name="work") == 3.0
    assert len(tracer.spans_on("t1")) == 1
    assert len(tracer) == 3


def test_span_end_before_start_rejected():
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.add_span("bad", "t", 2.0, 1.0)


def test_span_context_manager_uses_clock():
    now = [0.0]
    tracer = Tracer(clock=lambda: now[0])
    with tracer.span("step", "engine"):
        now[0] = 2.5
    (span,) = tracer.spans
    assert span.start == 0.0
    assert span.end == 2.5


def test_instant_requires_clock_or_time():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        tracer.add_instant("x", "t")
    tracer.add_instant("x", "t", time=1.0)
    assert tracer.instants[0].time == 1.0


def test_utilization_merges_overlaps():
    tracer = Tracer()
    tracer.add_span("a", "t", 0.0, 4.0)
    tracer.add_span("b", "t", 2.0, 6.0)  # overlaps a
    assert tracer.utilization("t", 0.0, 10.0) == pytest.approx(0.6)
    assert tracer.utilization("t", 0.0, 6.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        tracer.utilization("t", 5.0, 5.0)


def test_utilization_clips_to_window():
    tracer = Tracer()
    tracer.add_span("a", "t", -5.0, 100.0)
    assert tracer.utilization("t", 0.0, 10.0) == pytest.approx(1.0)


def test_utilization_nested_and_partially_clipped_spans():
    tracer = Tracer()
    tracer.add_span("outer", "t", 1.0, 9.0)
    tracer.add_span("inner", "t", 2.0, 4.0)   # fully nested: no extra coverage
    tracer.add_span("tail", "t", 8.0, 15.0)   # straddles the window edge
    tracer.add_span("elsewhere", "u", 0.0, 100.0)  # other track: ignored
    # Covered within [0, 10): [1, 9] ∪ [8, 10) = 9 of 10 seconds.
    assert tracer.utilization("t", 0.0, 10.0) == pytest.approx(0.9)
    # A window entirely inside one span is fully utilized.
    assert tracer.utilization("t", 2.0, 3.0) == pytest.approx(1.0)
    # A window beyond every span is idle.
    assert tracer.utilization("t", 20.0, 30.0) == 0.0


def test_span_context_manager_annotates_errors():
    """A body that raises still gets its span, tagged with the error type."""
    now = [0.0]
    tracer = Tracer(clock=lambda: now[0])
    with pytest.raises(KeyError):
        with tracer.span("step", "engine", batch=2):
            now[0] = 1.5
            raise KeyError("boom")
    (span,) = tracer.spans
    assert span.start == 0.0 and span.end == 1.5
    assert span.args == {"error": "KeyError", "batch": 2}
    # The non-raising path stays unannotated.
    with tracer.span("ok", "engine"):
        now[0] = 2.0
    assert "error" not in tracer.spans[-1].args


def test_chrome_export_roundtrip(tmp_path):
    tracer = Tracer()
    tracer.add_span("work", "engine", 1.0, 2.0, batch=3)
    tracer.add_instant("reclaim", "aqua", time=1.5)
    path = tmp_path / "trace.json"
    tracer.export_json(str(path))
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    kinds = {e["ph"] for e in events}
    assert kinds == {"M", "X", "i"}
    x = next(e for e in events if e["ph"] == "X")
    assert x["ts"] == 1.0e6 and x["dur"] == 1.0e6
    assert x["args"] == {"batch": 3}


def test_chrome_export_full_roundtrip(tmp_path):
    """Every span and instant survives the trip through the JSON file,
    with times in microseconds, args intact, and one thread-name
    metadata record per track mapping tids back to track names."""
    tracer = Tracer()
    tracer.add_span("prefill", "engine", 0.0, 0.5, tokens=100)
    tracer.add_span("decode", "engine", 0.5, 0.75)
    tracer.add_instant("dma-stall:apply", "faults", time=20.0,
                       targets=["nvlink:gpu1->gpu0"])
    tracer.add_instant("aqua-retry", "faults", time=20.05, attempt=1)
    path = tmp_path / "trace.json"
    tracer.export_json(str(path))
    events = json.loads(path.read_text())["traceEvents"]

    tid_to_track = {
        e["tid"]: e["args"]["name"] for e in events if e["ph"] == "M"
    }
    assert sorted(tid_to_track.values()) == ["engine", "faults"]

    spans = [e for e in events if e["ph"] == "X"]
    assert [(s["name"], s["ts"], s["dur"]) for s in spans] == [
        ("prefill", 0.0, 0.5e6), ("decode", 0.5e6, 0.25e6)
    ]
    assert all(tid_to_track[s["tid"]] == "engine" for s in spans)

    instants = [e for e in events if e["ph"] == "i"]
    assert [(i["name"], i["ts"]) for i in instants] == [
        ("dma-stall:apply", 20.0e6), ("aqua-retry", 20.05e6)
    ]
    assert instants[0]["args"] == {"targets": ["nvlink:gpu1->gpu0"]}
    assert all(i["s"] == "t" for i in instants)  # thread-scoped instants
    assert all(tid_to_track[i["tid"]] == "faults" for i in instants)


def test_chrome_export_empty_tracer(tmp_path):
    path = tmp_path / "empty.json"
    Tracer().export_json(str(path))
    assert json.loads(path.read_text()) == {"traceEvents": []}


def test_track_ids_stable_across_repeated_exports():
    """Exporting twice (or adding events between exports) must never
    re-number existing tracks — tids are how Perfetto correlates."""
    tracer = Tracer()
    tracer.add_span("a", "engine", 0.0, 1.0)
    tracer.add_span("b", "link", 0.0, 1.0)
    first = {
        e["args"]["name"]: e["tid"]
        for e in tracer.to_chrome_events()
        if e["ph"] == "M"
    }
    tracer.add_span("c", "aqua", 1.0, 2.0)  # new track appears later
    second = {
        e["args"]["name"]: e["tid"]
        for e in tracer.to_chrome_events()
        if e["ph"] == "M"
    }
    assert second["engine"] == first["engine"]
    assert second["link"] == first["link"]
    assert second["aqua"] not in (first["engine"], first["link"])
    # And a third export is byte-identical to the second.
    assert tracer.to_chrome_events() == tracer.to_chrome_events()


# ---------------------------------------------------------------------------
# Flow events and the critical path
# ---------------------------------------------------------------------------
def test_add_flow_validates_phase():
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.add_flow("request", "engine", 1, "x", time=0.0)


def test_flow_export_format(tmp_path):
    tracer = Tracer()
    tracer.add_flow("request", "engine", 7, "s", time=1.0)
    tracer.add_flow("request", "link", 7, "t", time=2.0, nbytes=10)
    tracer.add_flow("request", "engine", 7, "f", time=3.0)
    path = tmp_path / "flows.json"
    tracer.export_json(str(path))
    events = json.loads(path.read_text())["traceEvents"]
    flows = [e for e in events if e["ph"] in ("s", "t", "f")]
    assert [f["ph"] for f in flows] == ["s", "t", "f"]
    assert all(f["cat"] == "flow" and f["id"] == 7 for f in flows)
    assert flows[1]["ts"] == 2.0e6 and flows[1]["args"] == {"nbytes": 10}
    # Only the finish event carries the enclosing-slice binding point.
    assert flows[2]["bp"] == "e"
    assert "bp" not in flows[0] and "bp" not in flows[1]
    assert len(tracer) == 3  # flows count toward the tracer's length


def test_critical_path_chains_innermost_spans():
    tracer = Tracer()
    tracer.add_span("iteration", "engine", 0.0, 10.0)   # outer envelope
    tracer.add_span("prefill", "engine", 1.0, 3.0)      # innermost at t=2
    tracer.add_span("dma", "link", 4.0, 6.0)
    tracer.add_span("decode", "engine", 7.0, 9.0)
    tracer.add_flow("request", "engine", 42, "s", time=2.0)
    tracer.add_flow("request", "link", 42, "t", time=5.0)
    tracer.add_flow("request", "engine", 42, "f", time=8.0)
    # An unrelated flow must not leak into the path.
    tracer.add_flow("request", "engine", 99, "s", time=2.5)

    path = tracer.critical_path(42)
    assert [(s.name, s.track) for s in path] == [
        ("prefill", "engine"), ("dma", "link"), ("decode", "engine")
    ]
    assert tracer.critical_path(12345) == []


def test_critical_path_orders_same_time_events_by_phase():
    tracer = Tracer()
    tracer.add_span("handoff", "a", 0.0, 2.0)
    tracer.add_span("pickup", "b", 2.0, 4.0)
    # Both events at t=2.0: the start (s) must come before the step (t).
    tracer.add_flow("request", "b", 1, "t", time=2.0)
    tracer.add_flow("request", "a", 1, "s", time=2.0)
    path = tracer.critical_path(1)
    assert [s.name for s in path] == ["handoff", "pickup"]


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------
def test_vllm_records_prefill_and_decode_spans():
    env = Environment()
    server = Server(env, n_gpus=1)
    tracer = Tracer(clock=lambda: env.now)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B, tracer=tracer)
    engine.start()
    engine.submit(Request(arrival_time=0.0, prompt_tokens=100, max_new_tokens=20))
    env.run(until=30)
    names = {s.name for s in tracer.spans}
    assert names == {"prefill", "decode"}
    assert len([s for s in tracer.spans if s.name == "decode"]) == 19


def test_cfs_records_slices_and_switches():
    env = Environment()
    server = Server(env, n_gpus=1)
    tracer = Tracer(clock=lambda: env.now)
    engine = CFSEngine(
        server.gpus[0], server, CODELLAMA_34B, slice_tokens=5, tracer=tracer
    )
    engine.start()
    requests = [
        Request(arrival_time=0.0, prompt_tokens=3000, max_new_tokens=30)
        for _ in range(16)
    ]
    submit_all(env, engine, requests)
    env.run(until=900)
    names = {s.name for s in tracer.spans}
    assert "slice" in names
    assert "context-switch" in names
    # Trace accounting agrees with the engine's own counter.
    assert tracer.total_time(engine.name, "context-switch") == pytest.approx(
        engine.context_switch_time
    )


def test_engine_without_tracer_records_nothing():
    env = Environment()
    server = Server(env, n_gpus=1)
    engine = VLLMEngine(server.gpus[0], server, MISTRAL_7B)
    engine.start()
    engine.submit(Request(arrival_time=0.0, prompt_tokens=50, max_new_tokens=5))
    env.run(until=10)
    assert engine.tracer is None  # and nothing crashed
