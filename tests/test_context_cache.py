"""Tests for chat context caching in offloaded memory."""

import pytest

from repro.aqua import AquaLib, BatchInformer, Coordinator
from repro.hardware import Server
from repro.hardware.specs import GiB
from repro.models import CODELLAMA_34B, KANDINSKY
from repro.serving import BatchEngine, CFSEngine, ChatContextCache, Request
from repro.sim import Environment
from repro.workloads import ChatbotWorkload


def make_rig(with_cache=True, cache_bytes=20 * GiB):
    env = Environment()
    server = Server(env, n_gpus=2)
    coord = Coordinator()
    lib = AquaLib(server.gpus[0], server, coord)
    producer_lib = AquaLib(server.gpus[1], server, coord, informer=BatchInformer())
    producer = BatchEngine(server.gpus[1], server, KANDINSKY, aqua_lib=producer_lib)
    producer.start()
    coord.pair(lib.name, producer_lib.name)
    cache = (
        ChatContextCache(lib, CODELLAMA_34B, max_bytes=cache_bytes)
        if with_cache
        else None
    )
    engine = CFSEngine(
        server.gpus[0],
        server,
        CODELLAMA_34B,
        use_aqua=True,
        aqua_lib=lib,
        slice_tokens=5,
        context_cache=cache,
    )
    engine.start()
    env.run(until=1.0)
    return env, engine, cache


def run_process(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


# ---------------------------------------------------------------------------
# ChatContextCache unit behaviour
# ---------------------------------------------------------------------------
def test_cache_validation():
    env, engine, cache = make_rig()
    with pytest.raises(ValueError):
        ChatContextCache(engine.aqua_lib, CODELLAMA_34B, max_bytes=0)


def test_save_restore_roundtrip():
    env, engine, cache = make_rig()
    run_process(env, cache.save(user=7, tokens=1000))
    assert len(cache) == 1
    assert cache.cached_tokens(7, prompt_tokens=1500) == 1000
    restored = run_process(env, cache.restore(7))
    assert restored == 1000
    assert len(cache) == 0
    assert cache.hits == 1
    assert cache.tokens_restored == 1000


def test_cached_prefix_must_fit_prompt():
    env, engine, cache = make_rig()
    run_process(env, cache.save(user=7, tokens=2000))
    # A shorter prompt cannot reuse a longer context.
    assert cache.cached_tokens(7, prompt_tokens=1500) == 0
    assert cache.cached_tokens(None, prompt_tokens=9999) == 0


def test_restore_unknown_user_is_miss():
    env, engine, cache = make_rig()
    assert run_process(env, cache.restore(99)) == 0
    assert cache.misses == 1


def test_new_turn_supersedes_old_entry():
    env, engine, cache = make_rig()
    run_process(env, cache.save(user=7, tokens=500))
    run_process(env, cache.save(user=7, tokens=900))
    assert len(cache) == 1
    assert cache.cached_tokens(7, 1000) == 900


def test_lru_eviction_under_budget():
    kv_per_1000 = CODELLAMA_34B.kv_bytes(1000)
    env, engine, cache = make_rig(cache_bytes=int(2.5 * kv_per_1000))
    for user in (1, 2, 3):
        run_process(env, cache.save(user=user, tokens=1000))
    assert len(cache) == 2
    assert cache.cached_tokens(1, 2000) == 0  # evicted (LRU)
    assert cache.evictions == 1


def test_oversized_conversation_not_cached():
    env, engine, cache = make_rig(cache_bytes=CODELLAMA_34B.kv_bytes(100))
    run_process(env, cache.save(user=1, tokens=10_000))
    assert len(cache) == 0


def test_clear_frees_tensors():
    env, engine, cache = make_rig()
    run_process(env, cache.save(user=1, tokens=500))
    lib = cache.aqua_lib
    assert lib.tensors
    cache.clear()
    assert not lib.tensors


# ---------------------------------------------------------------------------
# End-to-end: multi-turn chat with and without the cache
# ---------------------------------------------------------------------------
def run_chat(with_cache: bool):
    env, engine, cache = make_rig(with_cache=with_cache)
    workload = ChatbotWorkload(n_users=10, turns=3, seed=0)
    users = workload.attach(env, engine)
    while not all(u.processed for u in users):
        env.run(until=env.now + 5.0)
    return env.now, engine, cache


def test_chat_with_cache_finishes_and_hits():
    finish, engine, cache = run_chat(with_cache=True)
    assert len(engine.metrics.completed) == 30
    # Turns 2 and 3 of every user restore from the cache.
    assert cache.hits >= 15
    assert cache.tokens_restored > 0


def test_cache_cuts_chat_completion_time():
    """Restoring context over NVLink beats re-prefilling it every turn."""
    with_cache, engine_c, _ = run_chat(with_cache=True)
    without, engine_n, _ = run_chat(with_cache=False)
    rct_cached = engine_c.metrics.mean_rct()
    rct_plain = engine_n.metrics.mean_rct()
    assert rct_cached < rct_plain
